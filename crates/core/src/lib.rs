//! # opthash
//!
//! The learned optimal hashing scheme for streaming frequency estimation of
//! Bertsimas & Digalakis (ICDE 2022 / IEEE TKDE), the `opt-hash` estimator of
//! the paper.
//!
//! Instead of hashing elements to buckets at random (as the Count-Min Sketch
//! does), `opt-hash` exploits an observed stream prefix:
//!
//! 1. the elements seen in the prefix are assigned to buckets by an
//!    optimization solver so that co-bucketed elements have similar observed
//!    frequencies and similar features (`opthash-solver`),
//! 2. a multi-class classifier is trained on `(features, bucket)` pairs so
//!    unseen elements can be routed to a bucket of look-alikes
//!    (`opthash-ml`),
//! 3. during stream processing each arrival increments its bucket's counter,
//!    and a point query answers with the bucket's *average* frequency.
//!
//! Two estimators are provided:
//!
//! * [`OptHash`] — the static scheme of Sections 3–5.2: only elements seen in
//!    the prefix are tracked exactly; unseen elements are estimated from the
//!    bucket the classifier routes them to.
//! * [`AdaptiveOptHash`] — the adaptive counting extension of Section 5.3: a
//!    Bloom filter tracks which elements have been seen so the per-bucket
//!    element counts (and therefore the averages) follow the stream beyond
//!    the prefix.
//!
//! ## Quick start
//!
//! ```
//! use opthash::{OptHashBuilder, SolverKind};
//! use opthash_stream::{FrequencyEstimator, Stream, StreamElement};
//!
//! // An observed prefix: element 1 is hot, elements 2 and 3 are cold.
//! let prefix = Stream::from_arrivals(vec![
//!     StreamElement::new(1u64, vec![1.0]),
//!     StreamElement::new(1u64, vec![1.0]),
//!     StreamElement::new(1u64, vec![1.0]),
//!     StreamElement::new(2u64, vec![5.0]),
//!     StreamElement::new(3u64, vec![5.2]),
//! ]);
//!
//! let mut estimator = OptHashBuilder::new(2)
//!     .lambda(1.0)
//!     .solver(SolverKind::Dp)
//!     .train_on_stream(&prefix);
//!
//! // Process more arrivals and answer point queries at any time.
//! estimator.update(&StreamElement::new(1u64, vec![1.0]));
//! let hot = estimator.estimate(&StreamElement::new(1u64, vec![1.0]));
//! let cold = estimator.estimate(&StreamElement::new(2u64, vec![5.0]));
//! assert!(hot > cold);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod config;
pub mod estimator;
pub mod stats;

pub use adaptive::AdaptiveOptHash;
pub use config::{OptHashBuilder, OptHashConfig, SolverKind};
pub use estimator::OptHash;
pub use stats::{EstimatorStats, MassLedger};

// Re-export the workspace crates whose types appear in this crate's public
// API, so downstream users need only depend on `opthash`.
pub use opthash_ml as ml;
pub use opthash_sketch as sketch;
pub use opthash_solver as solver;
pub use opthash_stream as stream;
