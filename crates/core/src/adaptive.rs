//! The adaptive counting extension (Section 5.3).
//!
//! The static [`crate::OptHash`] estimator only tracks the frequencies of
//! elements that appeared in the prefix. The adaptive extension also follows
//! elements that show up later: a Bloom filter records which elements have
//! been seen, and each bucket keeps a *count of distinct elements* `c_j` next
//! to its aggregate frequency `φ_j`. When a never-seen element arrives it is
//! routed by the classifier, the bucket's distinct count and frequency both
//! grow, and the Bloom filter marks it as seen; subsequent arrivals only grow
//! the frequency. Point queries return `φ_j / c_j`, multiplied by the Bloom
//! membership bit so elements that never appeared estimate to zero.
//!
//! Bloom false positives make the extension slightly over-estimate (a "new"
//! element mistaken for seen does not grow `c_j`), exactly the behaviour the
//! paper describes.

use crate::config::OptHashConfig;
use crate::estimator::OptHash;
use crate::stats::EstimatorStats;
use opthash_sketch::BloomFilter;
use opthash_stream::{ElementId, FrequencyEstimator, SpaceReport, StreamElement, StreamPrefix};
use serde::{Deserialize, Serialize};

/// `opt-hash` with the Bloom-filter adaptive counting extension.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveOptHash {
    /// The underlying learned scheme (hash table + classifier + counters for
    /// prefix elements).
    base: OptHash,
    /// Distinct-element count per bucket, *including* unseen elements added
    /// after the prefix.
    bucket_distinct: Vec<usize>,
    /// Aggregate frequency per bucket contributed by unseen elements.
    bucket_unseen_counts: Vec<f64>,
    /// Membership filter over every element seen so far.
    bloom: BloomFilter,
}

impl AdaptiveOptHash {
    /// Trains the adaptive estimator: learns the hashing scheme and the
    /// classifier exactly like [`OptHash::train`], then initializes the Bloom
    /// filter with the prefix elements and the per-bucket distinct counts
    /// with the prefix assignment.
    pub fn train(config: OptHashConfig, prefix: &StreamPrefix, bloom_bits: usize) -> Self {
        let base = OptHash::train(config, prefix);
        let buckets = base.buckets();
        let mut bloom = BloomFilter::new(bloom_bits.max(64), 4, config.seed.wrapping_add(101));
        let mut bucket_distinct = vec![0usize; buckets];
        for element in prefix.elements() {
            if let Some(bucket) = base.is_stored(element.id).then(|| {
                // bucket_of never consults the classifier for stored elements
                base.bucket_of(&StreamElement::new(element.id, element.features.clone()))
            }) {
                bucket_distinct[bucket] += 1;
                bloom.insert(element.id);
            }
        }
        AdaptiveOptHash {
            base,
            bucket_distinct,
            bucket_unseen_counts: vec![0.0; buckets],
            bloom,
        }
    }

    /// The underlying static estimator (hash table, classifier, stats).
    pub fn base(&self) -> &OptHash {
        &self.base
    }

    /// Training statistics (same as the base estimator's).
    pub fn stats(&self) -> &EstimatorStats {
        self.base.stats()
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.base.buckets()
    }

    /// Returns `true` if the element has (apparently) been seen, according to
    /// the Bloom filter.
    pub fn seen(&self, id: ElementId) -> bool {
        self.bloom.contains(id)
    }

    /// Distinct-element count `c_j` of a bucket (prefix elements plus unseen
    /// elements first observed after the prefix).
    pub fn bucket_distinct(&self, bucket: usize) -> usize {
        self.bucket_distinct[bucket]
    }

    /// Current average frequency `φ_j / c_j` of a bucket.
    pub fn bucket_average(&self, bucket: usize) -> f64 {
        let distinct = self.bucket_distinct[bucket];
        if distinct == 0 {
            return 0.0;
        }
        let total = self.base.bucket_count(bucket) + self.bucket_unseen_counts[bucket];
        total / distinct as f64
    }

    /// Adds `count` occurrences of an element, tracking unseen elements via
    /// the Bloom filter.
    pub fn add(&mut self, element: &StreamElement, count: u64) {
        if count == 0 {
            return;
        }
        if self.base.is_stored(element.id) {
            self.base.add(element, count);
            return;
        }
        let bucket = self.base.predict_bucket(&element.features);
        let is_new = self.bloom.insert_and_check_new(element.id);
        if is_new {
            self.bucket_distinct[bucket] += 1;
        }
        self.bucket_unseen_counts[bucket] += count as f64;
    }

    /// Creates an estimator sharing this one's learned structure but with
    /// zeroed bucket counters and zeroed distinct counts: a *delta*
    /// accumulator for one shard of a partitioned stream. The fork's Bloom
    /// filter starts with the parent's bits (so elements seen before the
    /// fork are still recognized) but contributes only its own insertions
    /// when unioned back.
    ///
    /// Exactness note: merging forks back via
    /// [`AdaptiveOptHash::merge_counts`] reproduces sequential processing
    /// when the stream is partitioned *by element ID* (each distinct ID
    /// confined to one fork — precisely the sharding discipline of the
    /// ingest engine), up to Bloom false positives: a fork cannot see bits
    /// set concurrently by its siblings, so an element that would have been
    /// a false positive sequentially may be counted as new in its shard (or
    /// vice versa). The probability is bounded by the filter's
    /// false-positive rate; size the filter accordingly.
    pub fn fork_empty(&self) -> Self {
        AdaptiveOptHash {
            base: self.base.fork_empty(),
            bucket_distinct: vec![0; self.bucket_distinct.len()],
            bucket_unseen_counts: vec![0.0; self.bucket_unseen_counts.len()],
            bloom: self.bloom.clone_delta(),
        }
    }

    /// Adds another estimator's deltas into this one: aggregate bucket
    /// counters, unseen-element counters and distinct counts are summed and
    /// the Bloom filters are unioned. `O(buckets + bloom bits / 64)`.
    ///
    /// # Panics
    ///
    /// Panics if the two estimators come from different training runs
    /// (different bucket counts or Bloom configurations).
    pub fn merge_counts(&mut self, other: &AdaptiveOptHash) {
        self.base.merge_counts(&other.base);
        assert_eq!(
            self.bucket_distinct.len(),
            other.bucket_distinct.len(),
            "can only merge adaptive estimators from the same training run"
        );
        for (d, &o) in self.bucket_distinct.iter_mut().zip(&other.bucket_distinct) {
            *d += o;
        }
        for (c, &o) in self
            .bucket_unseen_counts
            .iter_mut()
            .zip(&other.bucket_unseen_counts)
        {
            *c += o;
        }
        self.bloom.union(&other.bloom);
    }

    /// Itemized memory usage: the base estimator plus the Bloom filter bits
    /// and one extra distinct-element counter per bucket.
    pub fn space_report(&self) -> SpaceReport {
        let mut report = self.base.space_report();
        report.bloom_bits += self.bloom.num_bits();
        // one 4-byte distinct counter per bucket
        report.auxiliary_bytes += self.buckets() * 4;
        report
    }
}

impl FrequencyEstimator for AdaptiveOptHash {
    fn update(&mut self, element: &StreamElement) {
        self.add(element, 1);
    }

    fn estimate(&self, element: &StreamElement) -> f64 {
        if self.base.is_stored(element.id) {
            let bucket = self.base.bucket_of(element);
            return self.bucket_average(bucket);
        }
        if !self.bloom.contains(element.id) {
            return 0.0;
        }
        let bucket = self.base.predict_bucket(&element.features);
        self.bucket_average(bucket)
    }

    fn space_bytes(&self) -> usize {
        self.space_report().total_bytes()
    }

    fn name(&self) -> &'static str {
        "opt-hash-adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptHashBuilder, SolverKind};
    use opthash_stream::Stream;

    fn grouped_prefix() -> StreamPrefix {
        let mut arrivals = Vec::new();
        for _ in 0..20 {
            arrivals.push(StreamElement::new(0u64, vec![0.0, 0.1]));
            arrivals.push(StreamElement::new(1u64, vec![0.2, 0.0]));
        }
        for id in 2u64..6 {
            arrivals.push(StreamElement::new(id, vec![10.0 + id as f64 * 0.1, 10.0]));
        }
        StreamPrefix::from_stream(Stream::from_arrivals(arrivals))
    }

    fn train_adaptive() -> AdaptiveOptHash {
        OptHashBuilder::new(2)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .train_adaptive(&grouped_prefix(), 1 << 12)
    }

    #[test]
    fn prefix_elements_are_marked_seen_and_counted() {
        let est = train_adaptive();
        for id in 0u64..6 {
            assert!(
                est.seen(ElementId(id)),
                "prefix element {id} not marked seen"
            );
        }
        let total_distinct: usize = (0..est.buckets()).map(|j| est.bucket_distinct(j)).sum();
        assert_eq!(total_distinct, 6);
    }

    #[test]
    fn never_seen_elements_estimate_to_zero() {
        let est = train_adaptive();
        let ghost = StreamElement::new(777u64, vec![10.0, 10.0]);
        assert_eq!(est.estimate(&ghost), 0.0);
    }

    #[test]
    fn unseen_arrivals_are_tracked_after_first_appearance() {
        let mut est = train_adaptive();
        let newcomer = StreamElement::new(500u64, vec![10.4, 10.1]);
        let bucket = est.base().predict_bucket(&newcomer.features);
        let distinct_before = est.bucket_distinct(bucket);
        est.update(&newcomer);
        est.update(&newcomer);
        est.update(&newcomer);
        assert_eq!(est.bucket_distinct(bucket), distinct_before + 1);
        let estimate = est.estimate(&newcomer);
        assert!(estimate > 0.0);
        assert!(est.seen(ElementId(500)));
    }

    #[test]
    fn adaptive_tracks_unseen_better_than_static() {
        let prefix = grouped_prefix();
        let mut adaptive = OptHashBuilder::new(2)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .train_adaptive(&prefix, 1 << 12);
        let mut static_est = OptHashBuilder::new(2)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .train(&prefix);

        // A burst of arrivals of a cold-looking element never seen in the
        // prefix. True frequency after the burst: 50.
        let newcomer = StreamElement::new(901u64, vec![10.2, 9.9]);
        for _ in 0..50 {
            adaptive.update(&newcomer);
            static_est.update(&newcomer);
        }
        let true_frequency = 50.0;
        let adaptive_error = (adaptive.estimate(&newcomer) - true_frequency).abs();
        let static_error = (static_est.estimate(&newcomer) - true_frequency).abs();
        assert!(
            adaptive_error < static_error,
            "adaptive err {adaptive_error} vs static err {static_error}"
        );
    }

    #[test]
    fn stored_elements_still_use_the_hash_table() {
        let mut est = train_adaptive();
        let hot = StreamElement::new(0u64, vec![0.0, 0.1]);
        let before = est.estimate(&hot);
        for _ in 0..10 {
            est.update(&hot);
        }
        assert!(est.estimate(&hot) > before);
    }

    #[test]
    fn space_includes_bloom_bits_and_distinct_counters() {
        let est = train_adaptive();
        let report = est.space_report();
        assert_eq!(report.bloom_bits, 1 << 12);
        assert_eq!(report.auxiliary_bytes, est.buckets() * 4);
        assert!(est.space_bytes() > est.base().space_bytes());
        assert_eq!(est.name(), "opt-hash-adaptive");
    }

    #[test]
    fn zero_count_add_is_noop() {
        let mut est = train_adaptive();
        let newcomer = StreamElement::new(640u64, vec![9.9, 10.3]);
        est.add(&newcomer, 0);
        assert!(!est.seen(ElementId(640)));
    }

    #[test]
    fn id_partitioned_forks_merge_back_to_sequential_state() {
        let mut sequential = train_adaptive();
        let mut merged = sequential.clone();
        let mut fork_a = merged.fork_empty();
        let mut fork_b = merged.fork_empty();

        // A continuation containing stored elements (ids 0..6) and unseen
        // ones (ids 100..110), partitioned by ID parity — each distinct ID
        // is confined to one fork, the discipline fork_empty documents.
        let arrivals: Vec<StreamElement> = (0..12u64)
            .cycle()
            .take(120)
            .map(|id| {
                let id = if id < 6 { id } else { 94 + id };
                StreamElement::new(id, vec![10.0, 10.0])
            })
            .collect();
        for arrival in &arrivals {
            sequential.update(arrival);
            if arrival.id.raw() % 2 == 0 {
                fork_a.update(arrival);
            } else {
                fork_b.update(arrival);
            }
        }
        merged.merge_counts(&fork_a);
        merged.merge_counts(&fork_b);

        for bucket in 0..merged.buckets() {
            assert_eq!(
                merged.bucket_distinct(bucket),
                sequential.bucket_distinct(bucket),
                "distinct count diverged in bucket {bucket}"
            );
            assert!(
                (merged.bucket_average(bucket) - sequential.bucket_average(bucket)).abs() < 1e-9,
                "average diverged in bucket {bucket}"
            );
        }
        for arrival in &arrivals {
            assert_eq!(merged.seen(arrival.id), sequential.seen(arrival.id));
            assert!(
                (merged.estimate(arrival)
                    - <AdaptiveOptHash as FrequencyEstimator>::estimate(&sequential, arrival))
                .abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn bucket_average_of_empty_bucket_is_zero() {
        // Train with more buckets than elements so at least one stays empty.
        let est = OptHashBuilder::new(8)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .train_adaptive(&grouped_prefix(), 256);
        let empty_bucket = (0..est.buckets())
            .find(|&j| est.bucket_distinct(j) == 0)
            .expect("some bucket should be empty");
        assert_eq!(est.bucket_average(empty_bucket), 0.0);
    }
}
