//! Training-time statistics reported by the estimators.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Summary of how an `opt-hash` estimator was trained — the quantities the
/// paper's synthetic experiments report (objective terms, timings) plus a few
/// sanity metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorStats {
    /// Name of the solver that produced the hashing scheme (`bcd`, `dp`,
    /// `milp`).
    pub solver: String,
    /// Name of the classifier used for unseen elements (`logreg`, `cart`,
    /// `rf`).
    pub classifier: String,
    /// Number of distinct prefix elements whose IDs are stored.
    pub stored_elements: usize,
    /// Number of buckets of the learned scheme.
    pub buckets: usize,
    /// Estimation-error term of the solved objective on the prefix.
    pub estimation_error: f64,
    /// Similarity-error term of the solved objective on the prefix.
    pub similarity_error: f64,
    /// Overall objective `λ·est + (1−λ)·sim` on the prefix.
    pub objective: f64,
    /// Whether the solver proved its assignment optimal.
    pub proven_optimal: bool,
    /// Wall-clock time spent in the solver.
    pub solver_time: Duration,
    /// Wall-clock time spent training the classifier.
    pub classifier_time: Duration,
    /// Training accuracy of the classifier on the prefix `(features, bucket)`
    /// pairs (how reproducible the learned scheme is from features alone).
    pub classifier_train_accuracy: f64,
    /// Total training wall-clock time (solver + classifier + bookkeeping).
    pub total_time: Duration,
}

impl EstimatorStats {
    /// Estimation error per stored element — the scale used by the paper's
    /// Figures 3–6.
    pub fn estimation_error_per_element(&self) -> f64 {
        if self.stored_elements == 0 {
            0.0
        } else {
            self.estimation_error / self.stored_elements as f64
        }
    }
}

/// A conservation ledger for stream mass flowing through an ingestion
/// boundary: every unit offered must be **accepted**, **rejected**, or
/// **degraded** (admitted in a reduced-service mode), and nothing else.
///
/// The ledger is unit-agnostic — the engine keeps one ledger counting
/// arrivals and one counting weighted count mass — and is the primitive the
/// ingest engine's overload invariants are asserted against: under any
/// backpressure policy, [`MassLedger::conserved`] must hold at every point
/// in time, so no arrival can ever be dropped silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MassLedger {
    /// Units presented at the boundary (the sum of the three buckets).
    pub offered: u64,
    /// Units admitted under normal operation.
    pub accepted: u64,
    /// Units refused with an explicit, typed error.
    pub rejected: u64,
    /// Units admitted in a degraded mode (e.g. aggregate-only buffering
    /// under overload) — still fully counted, never lost.
    pub degraded: u64,
}

impl MassLedger {
    /// Records `units` offered and accepted.
    #[inline]
    pub fn accept(&mut self, units: u64) {
        self.offered += units;
        self.accepted += units;
    }

    /// Records `units` offered and explicitly rejected.
    #[inline]
    pub fn reject(&mut self, units: u64) {
        self.offered += units;
        self.rejected += units;
    }

    /// Records `units` offered and admitted in degraded mode.
    #[inline]
    pub fn degrade(&mut self, units: u64) {
        self.offered += units;
        self.degraded += units;
    }

    /// Units that made it into the system (accepted + degraded).
    #[inline]
    pub fn admitted(&self) -> u64 {
        self.accepted + self.degraded
    }

    /// The conservation invariant: every offered unit is accounted for in
    /// exactly one bucket.
    #[inline]
    pub fn conserved(&self) -> bool {
        self.offered == self.accepted + self.rejected + self.degraded
    }

    /// Folds another ledger into this one (e.g. summing per-shard ledgers).
    pub fn absorb(&mut self, other: &MassLedger) {
        self.offered += other.offered;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.degraded += other.degraded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_ledger_conserves_by_construction() {
        let mut ledger = MassLedger::default();
        assert!(ledger.conserved());
        ledger.accept(10);
        ledger.reject(3);
        ledger.degrade(5);
        assert!(ledger.conserved());
        assert_eq!(ledger.offered, 18);
        assert_eq!(ledger.admitted(), 15);

        let mut total = MassLedger::default();
        total.absorb(&ledger);
        total.absorb(&ledger);
        assert!(total.conserved());
        assert_eq!(total.offered, 36);

        // A hand-built ledger that lost mass must be caught.
        let broken = MassLedger {
            offered: 10,
            accepted: 6,
            rejected: 1,
            degraded: 2,
        };
        assert!(!broken.conserved());
    }

    #[test]
    fn per_element_scale_handles_zero_elements() {
        let stats = EstimatorStats {
            solver: "bcd".into(),
            classifier: "cart".into(),
            stored_elements: 0,
            buckets: 4,
            estimation_error: 10.0,
            similarity_error: 0.0,
            objective: 10.0,
            proven_optimal: false,
            solver_time: Duration::from_millis(1),
            classifier_time: Duration::from_millis(1),
            classifier_train_accuracy: 1.0,
            total_time: Duration::from_millis(2),
        };
        assert_eq!(stats.estimation_error_per_element(), 0.0);
        let with_elements = EstimatorStats {
            stored_elements: 5,
            ..stats
        };
        assert_eq!(with_elements.estimation_error_per_element(), 2.0);
    }
}
