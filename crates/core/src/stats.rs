//! Training-time statistics reported by the estimators.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Summary of how an `opt-hash` estimator was trained — the quantities the
/// paper's synthetic experiments report (objective terms, timings) plus a few
/// sanity metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorStats {
    /// Name of the solver that produced the hashing scheme (`bcd`, `dp`,
    /// `milp`).
    pub solver: String,
    /// Name of the classifier used for unseen elements (`logreg`, `cart`,
    /// `rf`).
    pub classifier: String,
    /// Number of distinct prefix elements whose IDs are stored.
    pub stored_elements: usize,
    /// Number of buckets of the learned scheme.
    pub buckets: usize,
    /// Estimation-error term of the solved objective on the prefix.
    pub estimation_error: f64,
    /// Similarity-error term of the solved objective on the prefix.
    pub similarity_error: f64,
    /// Overall objective `λ·est + (1−λ)·sim` on the prefix.
    pub objective: f64,
    /// Whether the solver proved its assignment optimal.
    pub proven_optimal: bool,
    /// Wall-clock time spent in the solver.
    pub solver_time: Duration,
    /// Wall-clock time spent training the classifier.
    pub classifier_time: Duration,
    /// Training accuracy of the classifier on the prefix `(features, bucket)`
    /// pairs (how reproducible the learned scheme is from features alone).
    pub classifier_train_accuracy: f64,
    /// Total training wall-clock time (solver + classifier + bookkeeping).
    pub total_time: Duration,
}

impl EstimatorStats {
    /// Estimation error per stored element — the scale used by the paper's
    /// Figures 3–6.
    pub fn estimation_error_per_element(&self) -> f64 {
        if self.stored_elements == 0 {
            0.0
        } else {
            self.estimation_error / self.stored_elements as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_element_scale_handles_zero_elements() {
        let stats = EstimatorStats {
            solver: "bcd".into(),
            classifier: "cart".into(),
            stored_elements: 0,
            buckets: 4,
            estimation_error: 10.0,
            similarity_error: 0.0,
            objective: 10.0,
            proven_optimal: false,
            solver_time: Duration::from_millis(1),
            classifier_time: Duration::from_millis(1),
            classifier_train_accuracy: 1.0,
            total_time: Duration::from_millis(2),
        };
        assert_eq!(stats.estimation_error_per_element(), 0.0);
        let with_elements = EstimatorStats {
            stored_elements: 5,
            ..stats
        };
        assert_eq!(with_elements.estimation_error_per_element(), 2.0);
    }
}
