//! Configuration and builder for the `opt-hash` estimator.

use crate::adaptive::AdaptiveOptHash;
use crate::estimator::OptHash;
use opthash_ml::ClassifierKind;
use opthash_solver::{BcdConfig, ExactConfig, PortfolioConfig};
use opthash_stream::{SpaceBudget, Stream, StreamPrefix};
use serde::{Deserialize, Serialize};

/// Which optimization algorithm learns the hashing scheme (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SolverKind {
    /// Block coordinate descent (Algorithm 1) — the default and the paper's
    /// choice for medium and large instances.
    Bcd(BcdConfig),
    /// Exact dynamic programming; only valid for `λ = 1` (features ignored).
    Dp,
    /// Exact branch-and-bound (the paper's `milp`); practical for small
    /// instances only.
    Exact(ExactConfig),
    /// Racing portfolio: parallel BCD restarts raced against the exact DP
    /// (when `λ = 1`) and brute force (tiny instances), with cooperative
    /// cancellation. The fastest way to train on multi-core hosts.
    Portfolio(PortfolioConfig),
}

impl Default for SolverKind {
    fn default() -> Self {
        SolverKind::Bcd(BcdConfig::default())
    }
}

impl SolverKind {
    /// Short name used in experiment output (`bcd`, `dp`, `milp`,
    /// `portfolio`).
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::Bcd(_) => "bcd",
            SolverKind::Dp => "dp",
            SolverKind::Exact(_) => "milp",
            SolverKind::Portfolio(_) => "portfolio",
        }
    }
}

/// Full configuration of the `opt-hash` estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptHashConfig {
    /// Number of buckets `b` of the learned hashing scheme.
    pub buckets: usize,
    /// Trade-off weight `λ` between estimation error (frequency similarity)
    /// and similarity error (feature similarity). Section 4.1.
    pub lambda: f64,
    /// Solver used for the prefix assignment.
    pub solver: SolverKind,
    /// Classifier family used for unseen elements (Section 5.2).
    pub classifier: ClassifierKind,
    /// Cap on the number of distinct prefix elements whose IDs are stored;
    /// when the prefix has more, it is down-sampled with probability
    /// proportional to observed frequency (Section 7.3). `None` keeps all.
    pub max_stored_elements: Option<usize>,
    /// Whether the prefix frequencies are folded into the bucket counters so
    /// estimates cover the whole stream including the prefix period (the
    /// real-world experiments aggregate from day 0).
    pub include_prefix_counts: bool,
    /// RNG seed (classifier training, prefix sampling).
    pub seed: u64,
}

impl Default for OptHashConfig {
    fn default() -> Self {
        OptHashConfig {
            buckets: 16,
            lambda: 1.0,
            solver: SolverKind::default(),
            classifier: ClassifierKind::Cart,
            max_stored_elements: None,
            include_prefix_counts: true,
            seed: 0,
        }
    }
}

impl OptHashConfig {
    /// Derives a configuration from a total memory budget and the
    /// bucket-to-stored-ID ratio `c` of Section 7.3: `n = b_total/(1+c)` IDs
    /// are stored and `b = b_total − n` buckets are allocated.
    pub fn from_budget(budget: SpaceBudget, ratio_c: f64) -> Self {
        let (stored, buckets) = budget.opt_hash_split(ratio_c);
        OptHashConfig {
            buckets: buckets.max(1),
            max_stored_elements: Some(stored.max(1)),
            ..OptHashConfig::default()
        }
    }

    /// Validates the configuration, panicking on inconsistencies. Called by
    /// the training entry points.
    pub fn validate(&self) {
        assert!(self.buckets > 0, "need at least one bucket");
        assert!(
            (0.0..=1.0).contains(&self.lambda),
            "lambda must lie in [0, 1]"
        );
        if let SolverKind::Dp = self.solver {
            assert!(
                (self.lambda - 1.0).abs() < f64::EPSILON,
                "the dp solver only handles lambda = 1 (estimation error only)"
            );
        }
    }
}

/// Fluent builder for [`OptHash`] / [`AdaptiveOptHash`].
///
/// ```
/// use opthash::{OptHashBuilder, SolverKind};
/// use opthash_stream::Stream;
///
/// let prefix = Stream::from_ids([1u64, 1, 2, 3, 3, 3]);
/// let estimator = OptHashBuilder::new(2)
///     .lambda(1.0)
///     .solver(SolverKind::Dp)
///     .train_on_stream(&prefix);
/// assert_eq!(estimator.config().buckets, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OptHashBuilder {
    config: OptHashConfig,
}

impl OptHashBuilder {
    /// Starts a builder with `buckets` buckets and default settings.
    pub fn new(buckets: usize) -> Self {
        OptHashBuilder {
            config: OptHashConfig {
                buckets,
                ..OptHashConfig::default()
            },
        }
    }

    /// Starts a builder from a memory budget and bucket-to-ID ratio `c`.
    pub fn from_budget(budget: SpaceBudget, ratio_c: f64) -> Self {
        OptHashBuilder {
            config: OptHashConfig::from_budget(budget, ratio_c),
        }
    }

    /// Sets the estimation/similarity trade-off `λ`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.config.lambda = lambda;
        self
    }

    /// Sets the solver.
    pub fn solver(mut self, solver: SolverKind) -> Self {
        self.config.solver = solver;
        self
    }

    /// Sets the classifier family for unseen elements.
    pub fn classifier(mut self, classifier: ClassifierKind) -> Self {
        self.config.classifier = classifier;
        self
    }

    /// Caps the number of stored prefix-element IDs.
    pub fn max_stored_elements(mut self, max: usize) -> Self {
        self.config.max_stored_elements = Some(max);
        self
    }

    /// Controls whether prefix frequencies seed the bucket counters.
    pub fn include_prefix_counts(mut self, include: bool) -> Self {
        self.config.include_prefix_counts = include;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// The configuration built so far.
    pub fn config(&self) -> &OptHashConfig {
        &self.config
    }

    /// Trains a static [`OptHash`] estimator on an already-aggregated prefix.
    pub fn train(self, prefix: &StreamPrefix) -> OptHash {
        OptHash::train(self.config, prefix)
    }

    /// Trains a static [`OptHash`] estimator on a raw prefix stream.
    pub fn train_on_stream(self, prefix: &Stream) -> OptHash {
        OptHash::train(self.config, &StreamPrefix::from_stream(prefix.clone()))
    }

    /// Trains an [`AdaptiveOptHash`] estimator (Bloom-filter extension) on an
    /// already-aggregated prefix. `bloom_bits` controls the filter size.
    pub fn train_adaptive(self, prefix: &StreamPrefix, bloom_bits: usize) -> AdaptiveOptHash {
        AdaptiveOptHash::train(self.config, prefix, bloom_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = OptHashConfig::default();
        assert_eq!(c.buckets, 16);
        assert_eq!(c.lambda, 1.0);
        assert_eq!(c.solver.name(), "bcd");
        assert!(c.include_prefix_counts);
        c.validate();
    }

    #[test]
    fn from_budget_follows_ratio_split() {
        let budget = SpaceBudget::from_kb(4.0); // 1000 slots
        let c = OptHashConfig::from_budget(budget, 0.3);
        assert_eq!(c.buckets + c.max_stored_elements.unwrap(), 1000);
        assert!(c.buckets >= 200 && c.buckets <= 300);
    }

    #[test]
    fn builder_sets_every_field() {
        let b = OptHashBuilder::new(7)
            .lambda(0.5)
            .classifier(ClassifierKind::RandomForest)
            .max_stored_elements(123)
            .include_prefix_counts(false)
            .seed(9);
        let c = b.config();
        assert_eq!(c.buckets, 7);
        assert_eq!(c.lambda, 0.5);
        assert_eq!(c.classifier, ClassifierKind::RandomForest);
        assert_eq!(c.max_stored_elements, Some(123));
        assert!(!c.include_prefix_counts);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn solver_names() {
        assert_eq!(SolverKind::Dp.name(), "dp");
        assert_eq!(SolverKind::Bcd(BcdConfig::default()).name(), "bcd");
        assert_eq!(SolverKind::Exact(ExactConfig::default()).name(), "milp");
        assert_eq!(
            SolverKind::Portfolio(PortfolioConfig::default()).name(),
            "portfolio"
        );
    }

    #[test]
    #[should_panic(expected = "lambda = 1")]
    fn dp_with_lambda_below_one_is_rejected() {
        let c = OptHashConfig {
            lambda: 0.5,
            solver: SolverKind::Dp,
            ..OptHashConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let c = OptHashConfig {
            buckets: 0,
            ..OptHashConfig::default()
        };
        c.validate();
    }
}
