//! The static `opt-hash` estimator (Sections 3, 4, 5.1–5.2).

use crate::config::{OptHashConfig, SolverKind};
use crate::stats::EstimatorStats;
use opthash_ml::{Classifier, Dataset, TrainedClassifier};
use opthash_solver::{
    kmedian, BcdSolver, ExactSolver, HashingProblem, HashingSolution, PortfolioConfig,
    PortfolioSolver,
};
use opthash_stream::{
    ElementId, Features, FrequencyEstimator, SpaceReport, StreamElement, StreamPrefix,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// The learned-hashing frequency estimator.
///
/// Build one with [`crate::OptHashBuilder`] or [`OptHash::train`]; feed
/// arrivals with [`FrequencyEstimator::update`]; answer point queries with
/// [`FrequencyEstimator::estimate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptHash {
    config: OptHashConfig,
    /// Learned hash table: bucket of every stored prefix element.
    table: HashMap<ElementId, usize>,
    /// Aggregate frequency `φ_j` per bucket.
    bucket_counts: Vec<f64>,
    /// Number of stored elements `c_j` per bucket.
    bucket_elements: Vec<usize>,
    /// Classifier routing unseen elements to buckets.
    classifier: TrainedClassifier,
    /// The solved prefix assignment (kept for inspection and experiments).
    solution: HashingSolution,
    /// Training statistics.
    stats: EstimatorStats,
}

impl OptHash {
    /// Learns the hashing scheme and the classifier from an observed prefix.
    pub fn train(config: OptHashConfig, prefix: &StreamPrefix) -> Self {
        Self::build(config, prefix, None)
    }

    /// Re-learns the scheme on a refreshed prefix (typically the sliding
    /// window of recent arrivals maintained by the engine's re-trainer),
    /// keeping this estimator's configuration. When the solver is BCD with
    /// [`opthash_solver::BcdConfig::warm_start`] set, restart 0 descends from
    /// this estimator's incumbent assignment mapped onto the new prefix —
    /// stored elements keep their bucket, new elements start in the bucket
    /// whose current average is nearest their observed frequency — which is
    /// what makes successive closely-related solves cheap. The classifier is
    /// retrained on the refreshed assignment, so routing of unseen elements
    /// tracks the new scheme too.
    pub fn retrain(&self, prefix: &StreamPrefix) -> Self {
        Self::build(self.config, prefix, Some(self))
    }

    /// Like [`OptHash::retrain`], but when the configured solver is BCD the
    /// re-solve is routed through the racing
    /// [`opthash_solver::PortfolioSolver`] (parallel warm-started restarts
    /// raced against the exact DP and brute force). The estimator's stored
    /// configuration is left untouched — only this solve races — so
    /// subsequent plain [`OptHash::retrain`] calls behave exactly as before.
    /// Non-BCD solvers fall back to a plain retrain.
    pub fn retrain_racing(&self, prefix: &StreamPrefix) -> Self {
        let solver_override = match self.config.solver {
            SolverKind::Bcd(bcd) => Some(SolverKind::Portfolio(PortfolioConfig {
                bcd,
                ..PortfolioConfig::default()
            })),
            _ => None,
        };
        Self::build_with_solver(self.config, prefix, Some(self), solver_override)
    }

    /// Maps this estimator's incumbent assignment onto a (possibly new)
    /// prefix: stored elements reuse their learned bucket, unseen elements
    /// get the bucket whose current average frequency is closest to their
    /// observed prefix frequency.
    fn warm_assignment(&self, prefix: &StreamPrefix) -> Vec<usize> {
        let buckets = self.config.buckets;
        prefix
            .elements()
            .iter()
            .enumerate()
            .map(|(i, element)| match self.table.get(&element.id) {
                Some(&bucket) => bucket.min(buckets - 1),
                None => {
                    let frequency = prefix.frequencies()[i] as f64;
                    (0..buckets)
                        .min_by(|&a, &b| {
                            let da = (self.bucket_average(a) - frequency).abs();
                            let db = (self.bucket_average(b) - frequency).abs();
                            da.partial_cmp(&db).unwrap()
                        })
                        .unwrap_or(0)
                }
            })
            .collect()
    }

    fn build(config: OptHashConfig, prefix: &StreamPrefix, incumbent: Option<&OptHash>) -> Self {
        Self::build_with_solver(config, prefix, incumbent, None)
    }

    /// Builds the estimator, optionally solving with `solver_override`
    /// instead of `config.solver` (the stored configuration keeps
    /// `config.solver` either way; only this solve and the recorded
    /// [`EstimatorStats::solver`] name reflect the override).
    fn build_with_solver(
        config: OptHashConfig,
        prefix: &StreamPrefix,
        incumbent: Option<&OptHash>,
        solver_override: Option<SolverKind>,
    ) -> Self {
        config.validate();
        assert!(prefix.distinct_len() > 0, "cannot train on an empty prefix");
        let total_start = Instant::now();

        // Optionally down-sample the prefix, keeping heavy elements with
        // higher probability (Section 7.3).
        let sampled;
        let prefix = match config.max_stored_elements {
            Some(max) if prefix.distinct_len() > max => {
                sampled = prefix.sample_by_frequency(max, config.seed);
                &sampled
            }
            _ => prefix,
        };

        // Build and solve the assignment problem.
        let frequencies = prefix.frequencies_f64();
        let features = prefix.features();
        let use_features = config.lambda < 1.0 && features.iter().any(|f| !f.is_empty());
        let problem = HashingProblem::new(
            frequencies,
            if use_features {
                features.clone()
            } else {
                Vec::new()
            },
            config.buckets,
            config.lambda,
        );
        let solver_start = Instant::now();
        let solver_kind = solver_override.unwrap_or(config.solver);
        let solution = match solver_kind {
            SolverKind::Bcd(bcd_config) => {
                let solver = BcdSolver::new(bcd_config);
                match incumbent.filter(|_| bcd_config.warm_start) {
                    Some(previous) => {
                        solver.solve_from(&problem, &previous.warm_assignment(prefix))
                    }
                    None => solver.solve(&problem),
                }
            }
            SolverKind::Dp => kmedian::solve_frequency_only(&problem),
            SolverKind::Exact(exact_config) => ExactSolver::new(exact_config).solve(&problem),
            SolverKind::Portfolio(portfolio_config) => {
                let solver = PortfolioSolver::new(portfolio_config);
                match incumbent.filter(|_| portfolio_config.bcd.warm_start) {
                    Some(previous) => {
                        solver.solve_from(&problem, &previous.warm_assignment(prefix))
                    }
                    None => solver.solve(&problem),
                }
            }
        };
        let solver_time = solver_start.elapsed();

        // Materialize the hash table and bucket statistics.
        let mut table = HashMap::with_capacity(prefix.distinct_len());
        let mut bucket_counts = vec![0.0f64; config.buckets];
        let mut bucket_elements = vec![0usize; config.buckets];
        for (i, element) in prefix.elements().iter().enumerate() {
            let bucket = solution.assignment[i];
            table.insert(element.id, bucket);
            bucket_elements[bucket] += 1;
            if config.include_prefix_counts {
                bucket_counts[bucket] += prefix.frequencies()[i] as f64;
            }
        }

        // Train the classifier on (features, bucket) pairs.
        let classifier_start = Instant::now();
        let labels: Vec<usize> = solution.assignment.clone();
        let dataset = Dataset::from_features(&features, &labels).with_num_classes(config.buckets);
        let classifier = config.classifier.fit(&dataset, config.seed);
        let classifier_time = classifier_start.elapsed();
        let classifier_train_accuracy = classifier.accuracy(&dataset);

        let stats = EstimatorStats {
            solver: solver_kind.name().to_owned(),
            classifier: config.classifier.name().to_owned(),
            stored_elements: prefix.distinct_len(),
            buckets: config.buckets,
            estimation_error: solution.estimation_error,
            similarity_error: solution.similarity_error,
            objective: solution.objective,
            proven_optimal: solution.stats.proven_optimal,
            solver_time,
            classifier_time,
            classifier_train_accuracy,
            total_time: total_start.elapsed(),
        };

        OptHash {
            config,
            table,
            bucket_counts,
            bucket_elements,
            classifier,
            solution,
            stats,
        }
    }

    /// The configuration the estimator was trained with.
    pub fn config(&self) -> &OptHashConfig {
        &self.config
    }

    /// Training statistics.
    pub fn stats(&self) -> &EstimatorStats {
        &self.stats
    }

    /// The solved prefix assignment.
    pub fn solution(&self) -> &HashingSolution {
        &self.solution
    }

    /// Number of stored prefix-element IDs.
    pub fn stored_elements(&self) -> usize {
        self.table.len()
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.config.buckets
    }

    /// The bucket an element would be routed to: the learned hash table for
    /// prefix elements, the classifier for everything else (Section 5).
    pub fn bucket_of(&self, element: &StreamElement) -> usize {
        match self.table.get(&element.id) {
            Some(&bucket) => bucket,
            None => self.predict_bucket(&element.features),
        }
    }

    /// The bucket the classifier alone would pick for a feature vector.
    pub fn predict_bucket(&self, features: &Features) -> usize {
        let bucket = self.classifier.predict(features.as_slice());
        bucket.min(self.config.buckets - 1)
    }

    /// Returns `true` if the element's ID was stored from the prefix.
    pub fn is_stored(&self, id: ElementId) -> bool {
        self.table.contains_key(&id)
    }

    /// Current average frequency of a bucket (`φ_j / c_j`), the value every
    /// query in that bucket receives.
    pub fn bucket_average(&self, bucket: usize) -> f64 {
        let elements = self.bucket_elements[bucket];
        if elements == 0 {
            0.0
        } else {
            self.bucket_counts[bucket] / elements as f64
        }
    }

    /// Aggregate counter `φ_j` of a bucket.
    pub fn bucket_count(&self, bucket: usize) -> f64 {
        self.bucket_counts[bucket]
    }

    /// Number of stored elements `c_j` of a bucket.
    pub fn bucket_element_count(&self, bucket: usize) -> usize {
        self.bucket_elements[bucket]
    }

    /// Adds `count` occurrences of an element (only tracked if the element
    /// was stored from the prefix — the static scheme ignores unseen
    /// arrivals, see [`crate::AdaptiveOptHash`] for the tracking variant).
    pub fn add(&mut self, element: &StreamElement, count: u64) {
        if count == 0 {
            return;
        }
        if let Some(&bucket) = self.table.get(&element.id) {
            self.bucket_counts[bucket] += count as f64;
        }
    }

    /// Creates an estimator sharing this one's learned structure (hash
    /// table, classifier, bucket element counts) but with every aggregate
    /// bucket counter `φ_j` zeroed. The fork accumulates only the *delta*
    /// of the arrivals routed to it, so several forks fed disjoint
    /// sub-streams can be [`OptHash::merge_counts`]-ed back into the
    /// original for an exact result. `O(buckets + stored elements)` (the
    /// table and classifier are cloned, not retrained).
    pub fn fork_empty(&self) -> Self {
        OptHash {
            config: self.config,
            table: self.table.clone(),
            bucket_counts: vec![0.0; self.bucket_counts.len()],
            bucket_elements: self.bucket_elements.clone(),
            classifier: self.classifier.clone(),
            solution: self.solution.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Adds another estimator's aggregate bucket counters `φ_j` into this
    /// one. Counter updates are additive, so merging forks fed disjoint
    /// sub-streams reproduces exactly the counters of sequential
    /// processing. `O(buckets)`.
    ///
    /// # Panics
    ///
    /// Panics if the two estimators have different bucket counts or stored
    /// tables (they must come from the same training run).
    pub fn merge_counts(&mut self, other: &OptHash) {
        assert!(
            self.bucket_counts.len() == other.bucket_counts.len()
                && self.table.len() == other.table.len(),
            "can only merge opt-hash estimators from the same training run"
        );
        for (c, &o) in self.bucket_counts.iter_mut().zip(&other.bucket_counts) {
            *c += o;
        }
    }

    /// Itemized memory usage: one stored ID per prefix element plus one
    /// counter per bucket (the per-bucket element counts are derivable from
    /// the hash table, so they are charged as auxiliary bytes only when the
    /// table is dropped — which the static estimator never does).
    pub fn space_report(&self) -> SpaceReport {
        SpaceReport {
            counters: self.config.buckets,
            stored_ids: self.table.len(),
            ..SpaceReport::default()
        }
    }
}

impl FrequencyEstimator for OptHash {
    fn update(&mut self, element: &StreamElement) {
        self.add(element, 1);
    }

    fn estimate(&self, element: &StreamElement) -> f64 {
        self.bucket_average(self.bucket_of(element))
    }

    fn space_bytes(&self) -> usize {
        self.space_report().total_bytes()
    }

    fn name(&self) -> &'static str {
        "opt-hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptHashBuilder;
    use opthash_ml::ClassifierKind;
    use opthash_solver::BcdConfig;
    use opthash_stream::Stream;

    /// Prefix with two obvious frequency groups and aligned features.
    fn grouped_prefix() -> StreamPrefix {
        let mut arrivals = Vec::new();
        // hot elements 0 and 1 (features near 0)
        for _ in 0..30 {
            arrivals.push(StreamElement::new(0u64, vec![0.0, 0.1]));
            arrivals.push(StreamElement::new(1u64, vec![0.2, 0.0]));
        }
        // cold elements 2..6 (features near 10)
        for id in 2u64..7 {
            arrivals.push(StreamElement::new(id, vec![10.0 + id as f64 * 0.1, 10.0]));
        }
        StreamPrefix::from_stream(Stream::from_arrivals(arrivals))
    }

    #[test]
    fn seen_elements_get_bucket_average_estimates() {
        let est = OptHashBuilder::new(2)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .train(&grouped_prefix());
        // hot elements (freq 30) share a bucket; cold (freq 1) share the other
        let hot = est.estimate(&StreamElement::new(0u64, vec![0.0, 0.1]));
        let cold = est.estimate(&StreamElement::new(3u64, vec![10.3, 10.0]));
        assert!((hot - 30.0).abs() < 1e-9, "hot estimate {hot}");
        assert!((cold - 1.0).abs() < 1e-9, "cold estimate {cold}");
    }

    #[test]
    fn updates_move_bucket_averages() {
        let mut est = OptHashBuilder::new(2)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .train(&grouped_prefix());
        let hot_element = StreamElement::new(0u64, vec![0.0, 0.1]);
        let before = est.estimate(&hot_element);
        for _ in 0..10 {
            est.update(&hot_element);
        }
        let after = est.estimate(&hot_element);
        assert!(after > before);
        // 10 new arrivals spread over the 2 stored elements of the hot bucket
        assert!((after - (before + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn unseen_elements_are_routed_by_the_classifier_to_similar_bucket() {
        let est = OptHashBuilder::new(2)
            .lambda(0.5)
            .classifier(ClassifierKind::Cart)
            .train(&grouped_prefix());
        // An unseen element with "cold-looking" features should get the cold
        // bucket's average, not the hot one's.
        let unseen_cold = StreamElement::new(99u64, vec![10.5, 9.9]);
        let unseen_hot = StreamElement::new(98u64, vec![0.1, 0.05]);
        assert!(!est.is_stored(ElementId(99)));
        let cold_estimate = est.estimate(&unseen_cold);
        let hot_estimate = est.estimate(&unseen_hot);
        assert!(
            hot_estimate > cold_estimate,
            "hot {hot_estimate} vs cold {cold_estimate}"
        );
    }

    #[test]
    fn include_prefix_counts_false_starts_counters_at_zero() {
        let est = OptHashBuilder::new(2)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .include_prefix_counts(false)
            .train(&grouped_prefix());
        for bucket in 0..est.buckets() {
            assert_eq!(est.bucket_count(bucket), 0.0);
        }
        assert_eq!(est.estimate(&StreamElement::new(0u64, vec![0.0, 0.1])), 0.0);
    }

    #[test]
    fn static_estimator_ignores_unseen_arrivals() {
        let mut est = OptHashBuilder::new(2)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .train(&grouped_prefix());
        let totals_before: f64 = (0..est.buckets()).map(|j| est.bucket_count(j)).sum();
        est.update(&StreamElement::new(4242u64, vec![0.0, 0.0]));
        let totals_after: f64 = (0..est.buckets()).map(|j| est.bucket_count(j)).sum();
        assert_eq!(totals_before, totals_after);
    }

    #[test]
    fn max_stored_elements_caps_the_table() {
        let est = OptHashBuilder::new(2)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .max_stored_elements(3)
            .train(&grouped_prefix());
        assert!(est.stored_elements() <= 3);
        // the heaviest elements should survive frequency-proportional sampling
        assert!(est.is_stored(ElementId(0)) || est.is_stored(ElementId(1)));
    }

    #[test]
    fn space_accounting_counts_ids_and_buckets() {
        let est = OptHashBuilder::new(4)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .train(&grouped_prefix());
        let report = est.space_report();
        assert_eq!(report.stored_ids, 7);
        assert_eq!(report.counters, 4);
        assert_eq!(est.space_bytes(), 7 * 4 + 4 * 4);
        assert_eq!(est.name(), "opt-hash");
    }

    #[test]
    fn bucket_accessors_are_consistent() {
        let est = OptHashBuilder::new(3)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .train(&grouped_prefix());
        let mut total_elements = 0;
        for j in 0..est.buckets() {
            total_elements += est.bucket_element_count(j);
            if est.bucket_element_count(j) > 0 {
                assert!(
                    (est.bucket_average(j)
                        - est.bucket_count(j) / est.bucket_element_count(j) as f64)
                        .abs()
                        < 1e-12
                );
            } else {
                assert_eq!(est.bucket_average(j), 0.0);
            }
        }
        assert_eq!(total_elements, est.stored_elements());
    }

    #[test]
    fn frequency_mass_is_conserved_across_buckets() {
        let prefix = grouped_prefix();
        let est = OptHashBuilder::new(3)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .train(&prefix);
        let bucket_mass: f64 = (0..est.buckets()).map(|j| est.bucket_count(j)).sum();
        let prefix_mass: f64 = prefix.frequencies().iter().map(|&f| f as f64).sum();
        assert!((bucket_mass - prefix_mass).abs() < 1e-9);
    }

    #[test]
    fn bcd_and_exact_solvers_also_train() {
        let prefix = grouped_prefix();
        for solver in [
            SolverKind::Bcd(BcdConfig::default()),
            SolverKind::Exact(Default::default()),
        ] {
            let est = OptHashBuilder::new(2)
                .lambda(0.7)
                .solver(solver)
                .train(&prefix);
            assert_eq!(est.stats().solver, solver.name());
            let hot = est.estimate(&StreamElement::new(0u64, vec![0.0, 0.1]));
            let cold = est.estimate(&StreamElement::new(5u64, vec![10.5, 10.0]));
            assert!(hot > cold, "{}: hot {hot} cold {cold}", solver.name());
        }
    }

    #[test]
    fn stats_capture_objective_and_accuracy() {
        let est = OptHashBuilder::new(2)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .train(&grouped_prefix());
        let stats = est.stats();
        assert_eq!(stats.buckets, 2);
        assert_eq!(stats.stored_elements, 7);
        assert!(stats.classifier_train_accuracy > 0.5);
        assert!(stats.objective >= 0.0);
        assert!(stats.proven_optimal);
    }

    #[test]
    #[should_panic(expected = "empty prefix")]
    fn empty_prefix_panics() {
        let prefix = StreamPrefix::from_stream(Stream::new());
        let _ = OptHash::train(OptHashConfig::default(), &prefix);
    }

    #[test]
    fn forked_deltas_merge_back_to_sequential_counters() {
        let mut sequential = OptHashBuilder::new(2)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .train(&grouped_prefix());
        let mut merged = sequential.clone();
        let mut fork_a = merged.fork_empty();
        let mut fork_b = merged.fork_empty();

        // Forks start with zeroed aggregate counters but the same structure.
        for bucket in 0..fork_a.buckets() {
            assert_eq!(fork_a.bucket_count(bucket), 0.0);
            assert_eq!(
                fork_a.bucket_element_count(bucket),
                merged.bucket_element_count(bucket)
            );
        }

        // Partition a continuation by ID parity across the two forks.
        let arrivals: Vec<StreamElement> = (0..7u64)
            .cycle()
            .take(200)
            .map(|id| StreamElement::new(id, vec![0.0, 0.0]))
            .collect();
        for arrival in &arrivals {
            sequential.update(arrival);
            if arrival.id.raw() % 2 == 0 {
                fork_a.update(arrival);
            } else {
                fork_b.update(arrival);
            }
        }
        merged.merge_counts(&fork_a);
        merged.merge_counts(&fork_b);

        for bucket in 0..merged.buckets() {
            assert!(
                (merged.bucket_count(bucket) - sequential.bucket_count(bucket)).abs() < 1e-9,
                "bucket {bucket} diverged"
            );
        }
    }

    /// The grouped prefix after drift: element 5 is now hot, 0 stays warm,
    /// and an unseen element 9 has appeared cold.
    fn drifted_prefix() -> StreamPrefix {
        let mut arrivals = Vec::new();
        for _ in 0..40 {
            arrivals.push(StreamElement::new(5u64, vec![10.5, 10.0]));
        }
        for _ in 0..10 {
            arrivals.push(StreamElement::new(0u64, vec![0.0, 0.1]));
        }
        for id in [1u64, 2, 9] {
            arrivals.push(StreamElement::new(id, vec![10.0, 10.0]));
        }
        StreamPrefix::from_stream(Stream::from_arrivals(arrivals))
    }

    #[test]
    fn retrain_warm_starts_and_tracks_the_new_distribution() {
        let est = OptHashBuilder::new(2)
            .lambda(1.0)
            .solver(SolverKind::Bcd(BcdConfig::default().with_warm_start()))
            .train(&grouped_prefix());
        assert!(!est.solution().stats.warm_started, "initial train is cold");

        let retrained = est.retrain(&drifted_prefix());
        assert!(retrained.solution().stats.warm_started);
        assert_eq!(retrained.buckets(), est.buckets());
        // The new scheme's counters are seeded from the refreshed prefix, so
        // the now-hot element estimates high and newly-seen 9 is stored.
        let hot = retrained.estimate(&StreamElement::new(5u64, vec![10.5, 10.0]));
        let cold = retrained.estimate(&StreamElement::new(9u64, vec![10.0, 10.0]));
        assert!(hot > cold, "hot {hot} vs cold {cold}");
        assert!(retrained.is_stored(ElementId(9)));
        assert!(
            (hot - 40.0).abs() < 1e-9,
            "hot bucket isolates element 5: {hot}"
        );
    }

    #[test]
    fn portfolio_solver_trains_and_is_recorded() {
        let est = OptHashBuilder::new(2)
            .lambda(0.7)
            .solver(SolverKind::Portfolio(PortfolioConfig::default()))
            .train(&grouped_prefix());
        assert_eq!(est.stats().solver, "portfolio");
        // n = 7 is within the brute-force racer's reach: proven optimal.
        assert!(est.stats().proven_optimal);
        let hot = est.estimate(&StreamElement::new(0u64, vec![0.0, 0.1]));
        let cold = est.estimate(&StreamElement::new(5u64, vec![10.5, 10.0]));
        assert!(hot > cold, "hot {hot} cold {cold}");
    }

    #[test]
    fn retrain_racing_races_without_touching_the_stored_config() {
        let est = OptHashBuilder::new(2)
            .lambda(1.0)
            .solver(SolverKind::Bcd(BcdConfig::default().with_warm_start()))
            .train(&grouped_prefix());
        let raced = est.retrain_racing(&drifted_prefix());
        // The solve raced through the portfolio, but the stored configuration
        // still says BCD, so later plain retrains behave as before.
        assert_eq!(raced.stats().solver, "portfolio");
        assert_eq!(raced.config().solver.name(), "bcd");
        assert!(raced.solution().stats.warm_started);
        // λ = 1 means the DP racer proves optimality, so racing can never
        // end up above the plain warm retrain.
        let plain = est.retrain(&drifted_prefix());
        assert!(raced.solution().objective <= plain.solution().objective + 1e-9);
    }

    #[test]
    fn retrain_without_warm_start_flag_stays_cold() {
        let est = OptHashBuilder::new(2)
            .lambda(1.0)
            .solver(SolverKind::Bcd(BcdConfig::default()))
            .train(&grouped_prefix());
        let retrained = est.retrain(&drifted_prefix());
        assert!(!retrained.solution().stats.warm_started);
    }

    #[test]
    fn add_with_zero_count_is_noop() {
        let mut est = OptHashBuilder::new(2)
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .train(&grouped_prefix());
        let before = est.bucket_count(est.bucket_of(&StreamElement::new(0u64, vec![0.0, 0.1])));
        est.add(&StreamElement::new(0u64, vec![0.0, 0.1]), 0);
        let after = est.bucket_count(est.bucket_of(&StreamElement::new(0u64, vec![0.0, 0.1])));
        assert_eq!(before, after);
    }
}
