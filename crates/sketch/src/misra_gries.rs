//! The Misra–Gries / Space-Saving heavy-hitter summary.
//!
//! The paper's introduction motivates frequency estimation with heavy-hitter
//! detection and cites Misra & Gries ("Finding repeated elements", 1982) as
//! the origin of the streaming literature. This deterministic counter-based
//! summary keeps at most `k` candidate elements; any element with frequency
//! greater than `‖f‖₁ / (k+1)` is guaranteed to be tracked, and every
//! reported count under-estimates the true frequency by at most
//! `‖f‖₁ / (k+1)`. It serves as an additional non-learning baseline and as
//! the oracle-free heavy-hitter detector used by ablation experiments.

use opthash_stream::{ElementId, FrequencyEstimator, SpaceReport, StreamElement};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Misra–Gries summary with at most `capacity` tracked counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MisraGries {
    capacity: usize,
    counters: HashMap<ElementId, u64>,
    total_updates: u64,
}

impl MisraGries {
    /// Creates a summary holding at most `capacity` counters.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        MisraGries {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            total_updates: 0,
        }
    }

    /// Maximum number of tracked elements.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of elements currently tracked.
    #[inline]
    pub fn tracked(&self) -> usize {
        self.counters.len()
    }

    /// Total number of updates processed (`‖f‖₁`).
    #[inline]
    pub fn total_updates(&self) -> u64 {
        self.total_updates
    }

    /// Adds `count` occurrences of `id`.
    pub fn add(&mut self, id: ElementId, count: u64) {
        if count == 0 {
            return;
        }
        self.total_updates += count;
        if let Some(counter) = self.counters.get_mut(&id) {
            *counter += count;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(id, count);
            return;
        }
        // Decrement phase: subtract the largest amount that keeps every
        // counter non-negative (the classical algorithm decrements by 1 per
        // arrival; decrementing by `min(count, smallest counter)` batches the
        // same effect for weighted updates).
        let mut remaining = count;
        while remaining > 0 {
            let min_count = self.counters.values().copied().min().unwrap_or(0);
            if min_count == 0 {
                self.counters.retain(|_, c| *c > 0);
                if self.counters.len() < self.capacity {
                    self.counters.insert(id, remaining);
                }
                return;
            }
            let decrement = min_count.min(remaining);
            for counter in self.counters.values_mut() {
                *counter -= decrement;
            }
            remaining -= decrement;
            self.counters.retain(|_, c| *c > 0);
            if self.counters.len() < self.capacity && remaining > 0 {
                self.counters.insert(id, remaining);
                return;
            }
        }
    }

    /// Creates an empty summary with the same capacity — the shard-local
    /// state used by the sharded ingest engine. `O(1)`.
    pub fn clone_empty(&self) -> Self {
        MisraGries::new(self.capacity)
    }

    /// Merges another summary into this one using the classical
    /// Misra–Gries merge (Agarwal et al., "Mergeable Summaries"): counters
    /// are added pairwise, then the `(capacity + 1)`-th largest count is
    /// subtracted from every counter and non-positive counters are dropped.
    /// `O(capacity · log capacity)`.
    ///
    /// The merged summary keeps the deterministic guarantee: each reported
    /// count under-estimates the true frequency of the concatenated stream
    /// by at most `‖f‖₁ / (capacity + 1)`. Results may differ from a
    /// sequentially built summary (the decrement schedule is different),
    /// but the error bound is preserved.
    ///
    /// # Panics
    ///
    /// Panics if the two summaries have different capacities.
    pub fn merge(&mut self, other: &MisraGries) {
        assert_eq!(
            self.capacity, other.capacity,
            "can only merge Misra-Gries summaries of equal capacity"
        );
        for (&id, &count) in &other.counters {
            *self.counters.entry(id).or_insert(0) += count;
        }
        self.total_updates += other.total_updates;
        if self.counters.len() > self.capacity {
            let mut counts: Vec<u64> = self.counters.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let threshold = counts[self.capacity];
            for counter in self.counters.values_mut() {
                *counter = counter.saturating_sub(threshold);
            }
            self.counters.retain(|_, c| *c > 0);
        }
    }

    /// Lower-bound estimate of the frequency of `id` (0 if not tracked).
    /// The true frequency exceeds this by at most `‖f‖₁ / (capacity + 1)`.
    pub fn query(&self, id: ElementId) -> u64 {
        self.counters.get(&id).copied().unwrap_or(0)
    }

    /// The deterministic error bound `‖f‖₁ / (capacity + 1)`.
    pub fn error_bound(&self) -> f64 {
        self.total_updates as f64 / (self.capacity as f64 + 1.0)
    }

    /// Candidate heavy hitters sorted by decreasing estimated count.
    pub fn heavy_hitters(&self) -> Vec<(ElementId, u64)> {
        let mut items: Vec<(ElementId, u64)> =
            self.counters.iter().map(|(&k, &v)| (k, v)).collect();
        items.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        items
    }

    /// Elements whose estimated count alone certifies a frequency above
    /// `threshold` (no false positives thanks to the under-estimate
    /// guarantee).
    pub fn certified_above(&self, threshold: u64) -> Vec<ElementId> {
        self.heavy_hitters()
            .into_iter()
            .filter(|&(_, c)| c > threshold)
            .map(|(id, _)| id)
            .collect()
    }

    /// Itemized memory usage: each tracked element stores an ID and a
    /// counter, i.e. one stored ID plus one counter bucket.
    pub fn space_report(&self) -> SpaceReport {
        SpaceReport {
            counters: self.capacity,
            stored_ids: self.capacity,
            ..SpaceReport::default()
        }
    }
}

impl FrequencyEstimator for MisraGries {
    fn update(&mut self, element: &StreamElement) {
        self.add(element.id, 1);
    }

    fn estimate(&self, element: &StreamElement) -> f64 {
        self.query(element.id) as f64
    }

    fn space_bytes(&self) -> usize {
        self.space_report().total_bytes()
    }

    fn name(&self) -> &'static str {
        "misra-gries"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opthash_stream::{FrequencyVector, Stream};

    fn skewed_stream(distinct: u64, arrivals: usize, seed: u64) -> Stream {
        let mut ids = Vec::with_capacity(arrivals);
        let mut state = seed.max(1);
        for _ in 0..arrivals {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let id = if state % 10 < 6 {
                state % 5
            } else {
                5 + state % distinct
            };
            ids.push(id);
        }
        Stream::from_ids(ids)
    }

    #[test]
    fn never_overestimates() {
        let stream = skewed_stream(500, 20_000, 3);
        let truth = FrequencyVector::from_stream(&stream);
        let mut mg = MisraGries::new(20);
        mg.update_stream(&stream);
        for (id, f) in truth.iter() {
            assert!(mg.query(id) <= f, "over-estimate for {id}");
        }
    }

    #[test]
    fn underestimate_respects_error_bound() {
        let stream = skewed_stream(300, 30_000, 7);
        let truth = FrequencyVector::from_stream(&stream);
        let mut mg = MisraGries::new(50);
        mg.update_stream(&stream);
        let bound = mg.error_bound();
        for (id, f) in truth.iter() {
            let deficit = f as f64 - mg.query(id) as f64;
            assert!(
                deficit <= bound + 1e-9,
                "deficit {deficit} exceeds bound {bound}"
            );
        }
    }

    #[test]
    fn true_heavy_hitters_are_tracked() {
        let stream = skewed_stream(1_000, 50_000, 9);
        let truth = FrequencyVector::from_stream(&stream);
        let mut mg = MisraGries::new(32);
        mg.update_stream(&stream);
        // Every element with frequency above ||f||1/(k+1) must be present.
        let threshold = mg.error_bound();
        for (id, f) in truth.iter() {
            if f as f64 > threshold {
                assert!(
                    mg.query(id) > 0,
                    "heavy element {id} (freq {f}) was evicted"
                );
            }
        }
    }

    #[test]
    fn certified_heavy_hitters_have_no_false_positives() {
        let stream = skewed_stream(400, 20_000, 11);
        let truth = FrequencyVector::from_stream(&stream);
        let mut mg = MisraGries::new(16);
        mg.update_stream(&stream);
        for id in mg.certified_above(500) {
            assert!(truth.frequency(id) > 500);
        }
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let stream = skewed_stream(5_000, 30_000, 13);
        let mut mg = MisraGries::new(10);
        mg.update_stream(&stream);
        assert!(mg.tracked() <= 10);
        assert_eq!(mg.capacity(), 10);
        assert_eq!(mg.total_updates(), 30_000);
    }

    #[test]
    fn exact_when_distinct_elements_fit() {
        let stream = Stream::from_ids([1u64, 1, 2, 3, 3, 3]);
        let mut mg = MisraGries::new(8);
        mg.update_stream(&stream);
        assert_eq!(mg.query(ElementId(1)), 2);
        assert_eq!(mg.query(ElementId(3)), 3);
        assert_eq!(mg.query(ElementId(9)), 0);
    }

    #[test]
    fn weighted_updates_behave_like_repeated_unit_updates() {
        let mut batched = MisraGries::new(3);
        let mut unit = MisraGries::new(3);
        let updates: [(u64, u64); 6] = [(1, 5), (2, 3), (3, 1), (4, 2), (1, 4), (5, 1)];
        for &(id, count) in &updates {
            batched.add(ElementId(id), count);
            for _ in 0..count {
                unit.add(ElementId(id), 1);
            }
        }
        // Both maintain the Misra-Gries invariants; the heavy element 1 must
        // be tracked by both and never over-estimated.
        assert!(batched.query(ElementId(1)) <= 9);
        assert!(unit.query(ElementId(1)) <= 9);
        assert!(batched.query(ElementId(1)) > 0);
        assert!(unit.query(ElementId(1)) > 0);
    }

    #[test]
    fn space_and_name() {
        let mg = MisraGries::new(100);
        assert_eq!(mg.space_bytes(), 100 * 4 + 100 * 4);
        assert_eq!(mg.name(), "misra-gries");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = MisraGries::new(0);
    }

    #[test]
    fn zero_count_add_is_noop() {
        let mut mg = MisraGries::new(4);
        mg.add(ElementId(1), 0);
        assert_eq!(mg.total_updates(), 0);
        assert_eq!(mg.tracked(), 0);
    }

    #[test]
    fn merge_respects_capacity_and_error_bound() {
        let stream = skewed_stream(800, 40_000, 17);
        let truth = FrequencyVector::from_stream(&stream);
        let mut merged = MisraGries::new(24);
        let mut shards = [merged.clone_empty(), merged.clone_empty()];
        for arrival in stream.iter() {
            shards[(arrival.id.raw() % 2) as usize].add(arrival.id, 1);
        }
        merged.merge(&shards[0]);
        merged.merge(&shards[1]);

        assert!(merged.tracked() <= 24);
        assert_eq!(merged.total_updates(), 40_000);
        let bound = merged.error_bound();
        for (id, f) in truth.iter() {
            let estimate = merged.query(id);
            assert!(estimate <= f, "merge must not over-estimate {id}");
            assert!(
                f as f64 - estimate as f64 <= bound + 1e-9,
                "merged deficit for {id} exceeds the bound"
            );
        }
    }

    #[test]
    #[should_panic(expected = "equal capacity")]
    fn merging_mismatched_capacities_panics() {
        let mut a = MisraGries::new(4);
        let b = MisraGries::new(8);
        a.merge(&b);
    }
}
