//! # opthash-sketch
//!
//! Randomized baseline sketches and probabilistic data structures used by the
//! paper's evaluation:
//!
//! * [`CountMinSketch`] — the conventional Count-Min Sketch (`count-min`
//!   baseline, Section 2.1), with an optional conservative-update ablation,
//! * [`CountSketch`] — the Count Sketch (median-of-signed-counters estimator,
//!   referenced in Section 1.1),
//! * [`LearnedCountMin`] — the Learned Count-Min Sketch with an ideal
//!   heavy-hitter oracle (`heavy-hitter` baseline, Section 2.2),
//! * [`BloomFilter`] — the Bloom filter used by the adaptive counting
//!   extension of `opt-hash` (Section 5.3),
//! * [`hashing`] — seeded 2-universal hash families shared by all of the
//!   above.
//!
//! All sketches implement [`opthash_stream::FrequencyEstimator`] so the
//! experiment harness can drive them interchangeably and compare them at
//! equal memory.
//!
//! ```
//! use opthash_sketch::CountMinSketch;
//! use opthash_stream::ElementId;
//!
//! let mut sketch = CountMinSketch::new(1024, 4, 7);
//! sketch.add(ElementId(42), 3);
//! sketch.add(ElementId(7), 1);
//! // Count-Min never under-estimates.
//! assert!(sketch.query(ElementId(42)) >= 3);
//! // Merging a fork built over a disjoint sub-stream is exact.
//! let mut other = sketch.clone_empty();
//! other.add(ElementId(42), 2);
//! sketch.merge(&other);
//! assert!(sketch.query(ElementId(42)) >= 5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bloom;
pub mod count_min;
pub mod count_sketch;
pub mod hashing;
pub mod learned_cms;
pub mod misra_gries;

pub use bloom::BloomFilter;
pub use count_min::{CountMinSketch, UpdatePolicy};
pub use count_sketch::CountSketch;
pub use hashing::{HashFamily, PairwiseHash, SignHash};
pub use learned_cms::LearnedCountMin;
pub use misra_gries::MisraGries;
