//! Bloom filter.
//!
//! A probabilistic set-membership structure with no false negatives and a
//! tunable false-positive rate (Bloom 1970). The adaptive counting extension
//! of `opt-hash` (Section 5.3) uses it to test whether an arriving element
//! has been seen before, so that the per-bucket distinct-element counters
//! `c_j` are incremented exactly once per new element (up to false
//! positives, which make the extension slightly over-estimate — exactly the
//! behaviour the paper describes).

use crate::hashing::HashFamily;
use opthash_stream::{ElementId, SpaceReport};
use serde::{Deserialize, Serialize};

/// A Bloom filter over element IDs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    hashes: HashFamily,
    inserted: usize,
}

impl BloomFilter {
    /// Creates a filter with `num_bits` bits and `num_hashes` hash functions.
    pub fn new(num_bits: usize, num_hashes: usize, seed: u64) -> Self {
        assert!(num_bits > 0, "Bloom filter needs at least one bit");
        assert!(num_hashes > 0, "Bloom filter needs at least one hash");
        BloomFilter {
            bits: vec![0u64; num_bits.div_ceil(64)],
            num_bits,
            hashes: HashFamily::new(num_hashes, num_bits, seed),
            inserted: 0,
        }
    }

    /// Creates a filter sized for `expected_items` with a target
    /// false-positive rate, using the standard optimal sizing
    /// `m = −n·ln(p)/ln(2)²` and `k = (m/n)·ln(2)`.
    pub fn with_capacity(expected_items: usize, false_positive_rate: f64, seed: u64) -> Self {
        assert!(
            false_positive_rate > 0.0 && false_positive_rate < 1.0,
            "false-positive rate must lie in (0, 1)"
        );
        let n = expected_items.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-(n * false_positive_rate.ln()) / (ln2 * ln2))
            .ceil()
            .max(8.0) as usize;
        let k = ((m as f64 / n) * ln2).round().max(1.0) as usize;
        Self::new(m, k, seed)
    }

    /// Number of bits in the filter.
    #[inline]
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of hash functions.
    #[inline]
    pub fn num_hashes(&self) -> usize {
        self.hashes.depth()
    }

    /// Number of `insert` calls performed (including duplicates).
    #[inline]
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    #[inline]
    fn set_bit(&mut self, idx: usize) {
        self.bits[idx / 64] |= 1u64 << (idx % 64);
    }

    #[inline]
    fn get_bit(&self, idx: usize) -> bool {
        self.bits[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Inserts an element ID.
    pub fn insert(&mut self, id: ElementId) {
        for level in 0..self.hashes.depth() {
            let idx = self.hashes.hash(level, id.raw());
            self.set_bit(idx);
        }
        self.inserted += 1;
    }

    /// Tests membership. Never returns `false` for an inserted element; may
    /// return `true` for an element never inserted (false positive).
    pub fn contains(&self, id: ElementId) -> bool {
        (0..self.hashes.depth()).all(|level| self.get_bit(self.hashes.hash(level, id.raw())))
    }

    /// Inserts and reports whether the element was (apparently) new:
    /// `true` if it was *not* contained before the insertion. This is the
    /// exact operation the adaptive counting extension needs per arrival.
    pub fn insert_and_check_new(&mut self, id: ElementId) -> bool {
        let was_present = self.contains(id);
        self.insert(id);
        !was_present
    }

    /// Creates a filter with the same size and hash functions but no bits
    /// set — the shard-local state used by the sharded ingest engine.
    /// `O(num_bits / 64)`.
    pub fn clone_empty(&self) -> Self {
        BloomFilter {
            bits: vec![0u64; self.bits.len()],
            num_bits: self.num_bits,
            hashes: self.hashes.clone(),
            inserted: 0,
        }
    }

    /// Creates a filter with the same bits set but an `inserted` counter of
    /// zero: a shard-local *delta* filter that already knows everything its
    /// parent has seen, whose later [`BloomFilter::union`] back into the
    /// parent adds only its own insert count. `O(num_bits / 64)`.
    pub fn clone_delta(&self) -> Self {
        BloomFilter {
            bits: self.bits.clone(),
            num_bits: self.num_bits,
            hashes: self.hashes.clone(),
            inserted: 0,
        }
    }

    /// Unions another filter of the *same configuration* into this one by
    /// bitwise OR. The union of two Bloom filters over the same hash
    /// functions represents exactly the union of their inserted sets (still
    /// no false negatives). `O(num_bits / 64)`.
    ///
    /// # Panics
    ///
    /// Panics if the two filters have different sizes or hash functions.
    pub fn union(&mut self, other: &BloomFilter) {
        assert!(
            self.num_bits == other.num_bits && self.hashes == other.hashes,
            "can only union Bloom filters of identical configuration"
        );
        for (w, &o) in self.bits.iter_mut().zip(&other.bits) {
            *w |= o;
        }
        self.inserted += other.inserted;
    }

    /// Expected false-positive rate given the number of *distinct* items
    /// inserted so far (`(1 − e^{−k·n/m})^k`).
    pub fn expected_false_positive_rate(&self, distinct_items: usize) -> f64 {
        let k = self.num_hashes() as f64;
        let m = self.num_bits as f64;
        let n = distinct_items as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }

    /// Fraction of bits currently set (load factor).
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.num_bits as f64
    }

    /// Itemized memory usage.
    pub fn space_report(&self) -> SpaceReport {
        SpaceReport {
            bloom_bits: self.num_bits,
            ..SpaceReport::default()
        }
    }

    /// Memory usage in bytes.
    pub fn space_bytes(&self) -> usize {
        self.space_report().total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(1 << 14, 4, 3);
        for id in 0..2_000u64 {
            bf.insert(ElementId(id));
        }
        for id in 0..2_000u64 {
            assert!(bf.contains(ElementId(id)), "false negative for {id}");
        }
    }

    #[test]
    fn false_positive_rate_is_near_prediction() {
        let mut bf = BloomFilter::with_capacity(5_000, 0.01, 7);
        for id in 0..5_000u64 {
            bf.insert(ElementId(id));
        }
        let fps = (100_000..200_000u64)
            .filter(|&id| bf.contains(ElementId(id)))
            .count();
        let rate = fps as f64 / 100_000.0;
        let predicted = bf.expected_false_positive_rate(5_000);
        assert!(
            rate < predicted * 3.0 + 0.01,
            "observed FP rate {rate} far above predicted {predicted}"
        );
    }

    #[test]
    fn with_capacity_sizing_grows_with_stricter_rate() {
        let loose = BloomFilter::with_capacity(1_000, 0.1, 1);
        let strict = BloomFilter::with_capacity(1_000, 0.001, 1);
        assert!(strict.num_bits() > loose.num_bits());
        assert!(strict.num_hashes() >= loose.num_hashes());
    }

    #[test]
    fn insert_and_check_new_flags_first_insertion_only() {
        let mut bf = BloomFilter::new(1 << 12, 3, 5);
        assert!(bf.insert_and_check_new(ElementId(42)));
        assert!(!bf.insert_and_check_new(ElementId(42)));
        assert_eq!(bf.inserted(), 2);
    }

    #[test]
    fn empty_filter_contains_nothing_and_has_zero_fill() {
        let bf = BloomFilter::new(1024, 3, 1);
        assert!(!bf.contains(ElementId(1)));
        assert_eq!(bf.fill_ratio(), 0.0);
        assert_eq!(bf.expected_false_positive_rate(0), 0.0);
    }

    #[test]
    fn fill_ratio_increases_with_insertions() {
        let mut bf = BloomFilter::new(256, 2, 9);
        let before = bf.fill_ratio();
        for id in 0..50u64 {
            bf.insert(ElementId(id));
        }
        assert!(bf.fill_ratio() > before);
        assert!(bf.fill_ratio() <= 1.0);
    }

    #[test]
    fn space_accounting_rounds_bits_up_to_bytes() {
        let bf = BloomFilter::new(1_000, 3, 1);
        assert_eq!(bf.space_bytes(), 125);
        let bf2 = BloomFilter::new(1_001, 3, 1);
        assert_eq!(bf2.space_bytes(), 126);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_panics() {
        let _ = BloomFilter::new(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "false-positive rate")]
    fn bad_fp_rate_panics() {
        let _ = BloomFilter::with_capacity(10, 1.5, 1);
    }

    #[test]
    fn union_equals_inserting_both_sets() {
        let mut sequential = BloomFilter::new(1 << 10, 3, 4);
        let base = sequential.clone_empty();
        let mut left = base.clone_empty();
        let mut right = base.clone_empty();
        for id in 0..200u64 {
            sequential.insert(ElementId(id));
            if id % 2 == 0 {
                left.insert(ElementId(id));
            } else {
                right.insert(ElementId(id));
            }
        }
        let mut merged = base.clone_empty();
        merged.union(&left);
        merged.union(&right);
        assert_eq!(merged.inserted(), sequential.inserted());
        for id in 0..500u64 {
            assert_eq!(
                merged.contains(ElementId(id)),
                sequential.contains(ElementId(id)),
                "membership mismatch for {id}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn union_of_mismatched_filters_panics() {
        let mut a = BloomFilter::new(128, 2, 1);
        let b = BloomFilter::new(256, 2, 1);
        a.union(&b);
    }
}
