//! The Count-Min Sketch (`count-min` baseline).
//!
//! A `width × depth` grid of counters; each arrival increments one counter
//! per row (level) chosen by that row's hash function, and a point query
//! returns the minimum counter over the rows (Section 2.1). The estimate
//! never under-counts, and with probability `1 − e^{-depth}` the
//! over-estimate is at most `(e/width)·‖f‖₁`.
//!
//! The optional [`UpdatePolicy::Conservative`] variant only increments the
//! counters that currently equal the minimum; it is a standard accuracy
//! optimization and is used as an ablation in the benchmark harness.

use crate::hashing::HashFamily;
use opthash_stream::{ElementId, FrequencyEstimator, SpaceReport, StreamElement};
use serde::{Deserialize, Serialize};

/// How counter updates are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum UpdatePolicy {
    /// Increment every level's counter (the textbook Count-Min update).
    #[default]
    Standard,
    /// Conservative update: only increment counters currently equal to the
    /// minimum estimate. Still never under-estimates, but over-estimates less.
    Conservative,
}

/// The Count-Min Sketch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    policy: UpdatePolicy,
    hashes: HashFamily,
    /// Row-major `depth × width` counter grid.
    counters: Vec<u64>,
    /// Total number of updates applied (`‖f‖₁` seen so far).
    total_updates: u64,
}

impl CountMinSketch {
    /// Creates a sketch with the given `width` (buckets per level) and
    /// `depth` (number of levels), seeded for reproducible hashing.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        Self::with_policy(width, depth, seed, UpdatePolicy::Standard)
    }

    /// Creates a sketch with an explicit [`UpdatePolicy`].
    pub fn with_policy(width: usize, depth: usize, seed: u64, policy: UpdatePolicy) -> Self {
        assert!(width > 0, "width must be positive");
        assert!(depth > 0, "depth must be positive");
        CountMinSketch {
            width,
            depth,
            policy,
            hashes: HashFamily::new(depth, width, seed),
            counters: vec![0; width * depth],
            total_updates: 0,
        }
    }

    /// Creates a sketch that uses `total_buckets` counters split across
    /// `depth` levels — the sizing used when comparing at equal memory.
    pub fn with_total_buckets(total_buckets: usize, depth: usize, seed: u64) -> Self {
        assert!(depth > 0, "depth must be positive");
        let width = (total_buckets / depth).max(1);
        Self::new(width, depth, seed)
    }

    /// Number of buckets per level.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of levels.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total number of counters (`width × depth`).
    #[inline]
    pub fn total_buckets(&self) -> usize {
        self.width * self.depth
    }

    /// Total updates applied so far.
    #[inline]
    pub fn total_updates(&self) -> u64 {
        self.total_updates
    }

    #[inline]
    fn cell(&self, level: usize, bucket: usize) -> usize {
        level * self.width + bucket
    }

    /// Adds `count` occurrences of `id`.
    pub fn add(&mut self, id: ElementId, count: u64) {
        if count == 0 {
            return;
        }
        self.total_updates += count;
        match self.policy {
            UpdatePolicy::Standard => {
                for level in 0..self.depth {
                    let b = self.hashes.hash(level, id.raw());
                    let cell = self.cell(level, b);
                    self.counters[cell] += count;
                }
            }
            UpdatePolicy::Conservative => {
                let current = self.query(id);
                let target = current + count;
                for level in 0..self.depth {
                    let b = self.hashes.hash(level, id.raw());
                    let cell = self.cell(level, b);
                    if self.counters[cell] < target {
                        self.counters[cell] = target;
                    }
                }
            }
        }
    }

    /// Adds a pre-aggregated batch of weighted updates, level by level.
    ///
    /// For the standard policy the final state is identical to calling
    /// [`CountMinSketch::add`] per entry (each cell receives the same sum),
    /// but the row-major order keeps one `width`-counter row cache-resident
    /// across the whole batch instead of striding all `depth` rows per
    /// update, and hoists the level's hash coefficients out of the inner
    /// loop. The conservative policy is order-dependent across rows (each
    /// update needs the cross-row minimum first), so it falls back to the
    /// sequential per-update loop.
    ///
    /// The iterator must be `Clone` because it is replayed once per level.
    /// Zero-count entries are skipped, matching [`CountMinSketch::add`].
    pub fn add_batch<I>(&mut self, updates: I)
    where
        I: Iterator<Item = (ElementId, u64)> + Clone,
    {
        match self.policy {
            UpdatePolicy::Standard => {
                // Settle the batch mass in its own pass: folding it into a
                // level loop would commit only the last level's sum — and
                // nothing at all at depth 0.
                let mut mass = 0u64;
                for (_, count) in updates.clone() {
                    mass += count;
                }
                for level in 0..self.depth {
                    let hash = self.hashes.function(level).clone();
                    let row = &mut self.counters[level * self.width..(level + 1) * self.width];
                    for (id, count) in updates.clone() {
                        if count == 0 {
                            continue;
                        }
                        row[hash.hash(id.raw())] += count;
                    }
                }
                self.total_updates += mass;
            }
            UpdatePolicy::Conservative => {
                for (id, count) in updates {
                    self.add(id, count);
                }
            }
        }
    }

    /// Point query: minimum counter over all levels.
    pub fn query(&self, id: ElementId) -> u64 {
        (0..self.depth)
            .map(|level| {
                let b = self.hashes.hash(level, id.raw());
                self.counters[self.cell(level, b)]
            })
            .min()
            .unwrap_or(0)
    }

    /// Creates a sketch with the same dimensions, hash functions and update
    /// policy but every counter zeroed — the shard-local state used by the
    /// sharded ingest engine. `O(width · depth)`.
    pub fn clone_empty(&self) -> Self {
        CountMinSketch {
            width: self.width,
            depth: self.depth,
            policy: self.policy,
            hashes: self.hashes.clone(),
            counters: vec![0; self.width * self.depth],
            total_updates: 0,
        }
    }

    /// Merges another sketch of the *same configuration* (dimensions, seed
    /// and policy) into this one by element-wise counter addition.
    /// `O(width · depth)`.
    ///
    /// For [`UpdatePolicy::Standard`] the sketch is a linear transform of the
    /// frequency vector, so merging sketches built over disjoint sub-streams
    /// yields exactly the sketch of the concatenated stream. For
    /// [`UpdatePolicy::Conservative`] addition still never under-estimates,
    /// but the merged sketch may over-estimate more than a sequentially
    /// built one (conservative updates do not commute).
    ///
    /// # Panics
    ///
    /// Panics if the two sketches have different dimensions or hash
    /// functions.
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert!(
            self.width == other.width
                && self.depth == other.depth
                && self.policy == other.policy
                && self.hashes == other.hashes,
            "can only merge Count-Min sketches of identical configuration"
        );
        for (c, &o) in self.counters.iter_mut().zip(&other.counters) {
            *c += o;
        }
        self.total_updates += other.total_updates;
    }

    /// Folds the sketch down to `new_width` buckets per level, where
    /// `new_width` must divide the current width: counters whose bucket
    /// indices are congruent modulo `new_width` are summed, and every hash
    /// function is restricted to the smaller range (same coefficients).
    ///
    /// Because `(h mod width) mod new_width = h mod new_width` whenever
    /// `new_width | width`, the folded sketch is **exactly** the sketch that
    /// the same update stream would have produced at `new_width` directly
    /// (for [`UpdatePolicy::Standard`]; conservative updates are nonlinear,
    /// so a folded conservative sketch may over-estimate more than a
    /// directly-built one, but still never under-estimates). No counted mass
    /// is lost — [`CountMinSketch::total_updates`] is unchanged — only
    /// precision: the error bound widens from `e/width` to `e/new_width`.
    ///
    /// This is the memory-governor's degradation primitive: a cold
    /// estimator's footprint halves (or better) in `O(width · depth)` time
    /// without replaying its stream.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is zero or does not divide the current width.
    pub fn fold_to_width(&mut self, new_width: usize) {
        assert!(new_width > 0, "new width must be positive");
        assert!(
            self.width % new_width == 0,
            "new width must divide the current width"
        );
        if new_width == self.width {
            return;
        }
        let mut folded = vec![0u64; new_width * self.depth];
        for level in 0..self.depth {
            let row = &self.counters[level * self.width..(level + 1) * self.width];
            let out = &mut folded[level * new_width..(level + 1) * new_width];
            for (bucket, &count) in row.iter().enumerate() {
                out[bucket % new_width] += count;
            }
        }
        self.counters = folded;
        self.hashes = self.hashes.with_range(new_width);
        self.width = new_width;
    }

    /// The `(ε, δ)` guarantee of this configuration: the additive error is at
    /// most `ε·‖f‖₁` with probability `1 − δ`, where `ε = e/width` and
    /// `δ = e^{-depth}` (Section 2.1).
    pub fn error_guarantee(&self) -> (f64, f64) {
        let epsilon = std::f64::consts::E / self.width as f64;
        let delta = (-(self.depth as f64)).exp();
        (epsilon, delta)
    }

    /// Itemized memory usage.
    pub fn space_report(&self) -> SpaceReport {
        SpaceReport {
            counters: self.total_buckets(),
            ..SpaceReport::default()
        }
    }
}

impl FrequencyEstimator for CountMinSketch {
    fn update(&mut self, element: &StreamElement) {
        self.add(element.id, 1);
    }

    fn estimate(&self, element: &StreamElement) -> f64 {
        self.query(element.id) as f64
    }

    fn space_bytes(&self) -> usize {
        self.space_report().total_bytes()
    }

    fn name(&self) -> &'static str {
        "count-min"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opthash_stream::{FrequencyVector, Stream};

    fn zipf_stream(distinct: u64, arrivals: usize, seed: u64) -> Stream {
        // Simple deterministic Zipf-ish stream without extra dependencies:
        // element k appears roughly proportional to 1/(k+1).
        let mut ids = Vec::with_capacity(arrivals);
        let mut state = seed.max(1);
        let weights: Vec<f64> = (0..distinct).map(|k| 1.0 / (k as f64 + 1.0)).collect();
        let total: f64 = weights.iter().sum();
        for _ in 0..arrivals {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let mut u = (state % 1_000_000) as f64 / 1_000_000.0 * total;
            let mut chosen = distinct - 1;
            for (k, &w) in weights.iter().enumerate() {
                if u < w {
                    chosen = k as u64;
                    break;
                }
                u -= w;
            }
            ids.push(chosen);
        }
        Stream::from_ids(ids)
    }

    #[test]
    fn never_underestimates() {
        let stream = zipf_stream(200, 5_000, 11);
        let truth = FrequencyVector::from_stream(&stream);
        let mut cms = CountMinSketch::new(64, 4, 1);
        cms.update_stream(&stream);
        for (id, f) in truth.iter() {
            assert!(cms.query(id) >= f, "under-estimate for {id}");
        }
    }

    #[test]
    fn conservative_update_never_underestimates_and_is_tighter() {
        let stream = zipf_stream(300, 8_000, 5);
        let truth = FrequencyVector::from_stream(&stream);
        let mut std_cms = CountMinSketch::with_policy(32, 3, 1, UpdatePolicy::Standard);
        let mut cons_cms = CountMinSketch::with_policy(32, 3, 1, UpdatePolicy::Conservative);
        std_cms.update_stream(&stream);
        cons_cms.update_stream(&stream);
        let mut std_err = 0.0;
        let mut cons_err = 0.0;
        for (id, f) in truth.iter() {
            assert!(cons_cms.query(id) >= f);
            std_err += (std_cms.query(id) - f) as f64;
            cons_err += (cons_cms.query(id) - f) as f64;
        }
        assert!(
            cons_err <= std_err,
            "conservative update should not be worse: {cons_err} vs {std_err}"
        );
    }

    #[test]
    fn exact_when_width_exceeds_distinct_support_is_likely() {
        // With width much larger than the number of distinct elements and
        // depth 4, collisions in all four rows simultaneously are essentially
        // impossible, so the estimate is exact.
        let stream = Stream::from_ids([1u64, 1, 2, 3, 3, 3]);
        let mut cms = CountMinSketch::new(4096, 4, 42);
        cms.update_stream(&stream);
        assert_eq!(cms.query(ElementId(1)), 2);
        assert_eq!(cms.query(ElementId(2)), 1);
        assert_eq!(cms.query(ElementId(3)), 3);
        assert_eq!(cms.query(ElementId(999)), 0);
    }

    #[test]
    fn additive_error_respects_epsilon_bound_on_average() {
        let stream = zipf_stream(500, 20_000, 3);
        let truth = FrequencyVector::from_stream(&stream);
        let mut cms = CountMinSketch::new(256, 4, 8);
        cms.update_stream(&stream);
        let (epsilon, _) = cms.error_guarantee();
        let bound = epsilon * truth.total() as f64;
        // the (ε, δ) guarantee is per-query with prob 1-δ; check the vast
        // majority of queries respect it.
        let violations = truth
            .iter()
            .filter(|&(id, f)| (cms.query(id) - f) as f64 > bound)
            .count();
        assert!(
            violations <= truth.support_size() / 20,
            "too many violations: {violations}"
        );
    }

    #[test]
    fn add_with_zero_count_is_a_noop() {
        let mut cms = CountMinSketch::new(16, 2, 1);
        cms.add(ElementId(5), 0);
        assert_eq!(cms.total_updates(), 0);
        assert_eq!(cms.query(ElementId(5)), 0);
    }

    #[test]
    fn space_accounting_counts_all_cells() {
        let cms = CountMinSketch::new(250, 4, 1);
        assert_eq!(cms.total_buckets(), 1000);
        assert_eq!(cms.space_bytes(), 4_000);
        assert_eq!(cms.name(), "count-min");
    }

    #[test]
    fn with_total_buckets_divides_across_depth() {
        let cms = CountMinSketch::with_total_buckets(1000, 4, 1);
        assert_eq!(cms.width(), 250);
        assert_eq!(cms.depth(), 4);
        // width never drops below 1
        let tiny = CountMinSketch::with_total_buckets(2, 6, 1);
        assert_eq!(tiny.width(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = zipf_stream(100, 2_000, 9);
        let mut a = CountMinSketch::new(64, 3, 123);
        let mut b = CountMinSketch::new(64, 3, 123);
        a.update_stream(&stream);
        b.update_stream(&stream);
        for (id, _) in FrequencyVector::from_stream(&stream).iter() {
            assert_eq!(a.query(id), b.query(id));
        }
    }

    #[test]
    fn error_guarantee_formula() {
        let cms = CountMinSketch::new(272, 3, 1);
        let (eps, delta) = cms.error_guarantee();
        assert!((eps - std::f64::consts::E / 272.0).abs() < 1e-12);
        assert!((delta - (-3.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = CountMinSketch::new(0, 2, 1);
    }

    #[test]
    fn merged_standard_sketches_equal_sequential_processing() {
        let stream = zipf_stream(300, 10_000, 21);
        let mut sequential = CountMinSketch::new(64, 4, 5);
        sequential.update_stream(&stream);

        // Partition the stream by ID parity and process each half in a fork.
        let mut merged = CountMinSketch::new(64, 4, 5);
        let mut even = merged.clone_empty();
        let mut odd = merged.clone_empty();
        for arrival in stream.iter() {
            if arrival.id.raw() % 2 == 0 {
                even.add(arrival.id, 1);
            } else {
                odd.add(arrival.id, 1);
            }
        }
        merged.merge(&even);
        merged.merge(&odd);

        assert_eq!(merged.total_updates(), sequential.total_updates());
        for id in 0..400u64 {
            assert_eq!(merged.query(ElementId(id)), sequential.query(ElementId(id)));
        }
    }

    #[test]
    fn clone_empty_preserves_configuration_and_zeroes_state() {
        let mut original = CountMinSketch::with_policy(32, 3, 7, UpdatePolicy::Conservative);
        original.add(ElementId(1), 5);
        let empty = original.clone_empty();
        assert_eq!(empty.width(), 32);
        assert_eq!(empty.depth(), 3);
        assert_eq!(empty.total_updates(), 0);
        assert_eq!(empty.query(ElementId(1)), 0);
    }

    #[test]
    fn conservative_merge_never_underestimates() {
        let stream = zipf_stream(200, 5_000, 9);
        let truth = FrequencyVector::from_stream(&stream);
        let base = CountMinSketch::with_policy(48, 3, 2, UpdatePolicy::Conservative);
        let mut merged = base.clone();
        let mut low = base.clone_empty();
        let mut high = base.clone_empty();
        for arrival in stream.iter() {
            if arrival.id.raw() < 100 {
                low.add(arrival.id, 1);
            } else {
                high.add(arrival.id, 1);
            }
        }
        merged.merge(&low);
        merged.merge(&high);
        for (id, f) in truth.iter() {
            assert!(merged.query(id) >= f, "under-estimate for {id}");
        }
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn merging_mismatched_sketches_panics() {
        let mut a = CountMinSketch::new(32, 3, 1);
        let b = CountMinSketch::new(64, 3, 1);
        a.merge(&b);
    }

    #[test]
    fn folded_sketch_equals_directly_built_smaller_sketch() {
        // `PairwiseHash::draw` consumes the same RNG draws regardless of its
        // range, so two sketches with the same seed share coefficients at any
        // width — folding must therefore reproduce the narrow build exactly.
        let stream = zipf_stream(400, 15_000, 13);
        let mut wide = CountMinSketch::new(1024, 4, 99);
        let mut narrow = CountMinSketch::new(128, 4, 99);
        wide.update_stream(&stream);
        narrow.update_stream(&stream);
        wide.fold_to_width(128);
        assert_eq!(wide.width(), 128);
        assert_eq!(wide.total_updates(), narrow.total_updates());
        for id in 0..500u64 {
            assert_eq!(
                wide.query(ElementId(id)),
                narrow.query(ElementId(id)),
                "folded estimate diverged for {id}"
            );
        }
    }

    #[test]
    fn fold_preserves_mass_and_never_underestimates() {
        let stream = zipf_stream(300, 10_000, 4);
        let truth = FrequencyVector::from_stream(&stream);
        let mut cms = CountMinSketch::new(512, 4, 7);
        cms.update_stream(&stream);
        let mass = cms.total_updates();
        cms.fold_to_width(64);
        cms.fold_to_width(16);
        assert_eq!(cms.total_updates(), mass, "fold must not lose mass");
        for (id, f) in truth.iter() {
            assert!(cms.query(id) >= f, "under-estimate for {id} after folds");
        }
        // Folding to the current width is a no-op.
        cms.fold_to_width(16);
        assert_eq!(cms.width(), 16);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn fold_to_non_divisor_width_panics() {
        let mut cms = CountMinSketch::new(100, 2, 1);
        cms.fold_to_width(33);
    }
}
