//! Seeded 2-universal hash families.
//!
//! The Count-Min Sketch and the Count Sketch rely on pairwise-independent
//! ("2-universal") hash functions. We use the classical Carter–Wegman
//! construction over the Mersenne prime `p = 2^61 − 1`: `h(x) = ((a·x + b)
//! mod p) mod w` with `a ∈ [1, p)`, `b ∈ [0, p)` drawn from a seeded RNG, so
//! every sketch is reproducible given its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The Mersenne prime 2^61 − 1 used as the hash field modulus.
pub const MERSENNE_61: u64 = (1 << 61) - 1;

/// Reduces `x` modulo the Mersenne prime 2^61 − 1 without division.
#[inline]
fn mod_mersenne(x: u128) -> u64 {
    // x = hi * 2^61 + lo  =>  x mod (2^61 - 1) = hi + lo (mod 2^61 - 1)
    let lo = (x & (MERSENNE_61 as u128)) as u64;
    let hi = (x >> 61) as u64;
    let mut r = lo.wrapping_add(hi);
    if r >= MERSENNE_61 {
        r -= MERSENNE_61;
    }
    r
}

/// A single pairwise-independent hash function mapping `u64` keys to
/// `[0, range)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
    range: u64,
}

impl PairwiseHash {
    /// Draws a fresh hash function with the given output `range` from `rng`.
    pub fn draw(range: usize, rng: &mut impl Rng) -> Self {
        assert!(range > 0, "hash range must be positive");
        PairwiseHash {
            a: rng.gen_range(1..MERSENNE_61),
            b: rng.gen_range(0..MERSENNE_61),
            range: range as u64,
        }
    }

    /// Constructs a hash function from explicit coefficients (for tests).
    pub fn from_coefficients(a: u64, b: u64, range: usize) -> Self {
        assert!(range > 0, "hash range must be positive");
        assert!(a >= 1 && a < MERSENNE_61, "a must lie in [1, p)");
        assert!(b < MERSENNE_61, "b must lie in [0, p)");
        PairwiseHash {
            a,
            b,
            range: range as u64,
        }
    }

    /// Hashes `key` into `[0, range)`.
    #[inline]
    pub fn hash(&self, key: u64) -> usize {
        let prod = (self.a as u128) * (key as u128) + (self.b as u128);
        (mod_mersenne(prod) % self.range) as usize
    }

    /// The output range of this function.
    #[inline]
    pub fn range(&self) -> usize {
        self.range as usize
    }

    /// The same hash function (identical coefficients) restricted to a
    /// smaller output `range` that divides the current one.
    ///
    /// Because the function is `((a·x + b) mod p) mod range`, and for any
    /// divisor `d` of `range` it holds that `(y mod range) mod d = y mod d`,
    /// the restricted function satisfies
    /// `restricted.hash(x) == self.hash(x) % d` for every key — the algebraic
    /// fact the sketch width-folding (governor degradation) relies on.
    ///
    /// # Panics
    ///
    /// Panics if `range` is zero or does not divide the current range.
    pub fn with_range(&self, range: usize) -> Self {
        assert!(range > 0, "hash range must be positive");
        assert!(
            self.range as usize % range == 0,
            "new range must divide the current range"
        );
        PairwiseHash {
            a: self.a,
            b: self.b,
            range: range as u64,
        }
    }
}

/// A ±1-valued pairwise-independent hash, used by the Count Sketch to decide
/// the sign with which an element contributes to its counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignHash {
    inner: PairwiseHash,
}

impl SignHash {
    /// Draws a fresh sign hash from `rng`.
    pub fn draw(rng: &mut impl Rng) -> Self {
        SignHash {
            inner: PairwiseHash::draw(2, rng),
        }
    }

    /// Returns `+1.0` or `-1.0` for the key.
    #[inline]
    pub fn sign(&self, key: u64) -> f64 {
        if self.inner.hash(key) == 0 {
            1.0
        } else {
            -1.0
        }
    }
}

/// A family of `depth` independent hash functions, one per sketch level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashFamily {
    functions: Vec<PairwiseHash>,
}

impl HashFamily {
    /// Draws `depth` independent functions with output `range`, seeded for
    /// reproducibility.
    pub fn new(depth: usize, range: usize, seed: u64) -> Self {
        assert!(depth > 0, "hash family depth must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        HashFamily {
            functions: (0..depth)
                .map(|_| PairwiseHash::draw(range, &mut rng))
                .collect(),
        }
    }

    /// Number of functions in the family.
    #[inline]
    pub fn depth(&self) -> usize {
        self.functions.len()
    }

    /// Hashes `key` with the `level`-th function.
    #[inline]
    pub fn hash(&self, level: usize, key: u64) -> usize {
        self.functions[level].hash(key)
    }

    /// The `level`-th function itself — lets bulk operations hoist the
    /// coefficient loads out of their inner loop.
    #[inline]
    pub fn function(&self, level: usize) -> &PairwiseHash {
        &self.functions[level]
    }

    /// Iterates over the per-level bucket indices for `key`.
    pub fn indices<'a>(&'a self, key: u64) -> impl Iterator<Item = usize> + 'a {
        self.functions.iter().map(move |h| h.hash(key))
    }

    /// The same family with every function restricted to `range` (which must
    /// divide each function's current range); see [`PairwiseHash::with_range`].
    pub fn with_range(&self, range: usize) -> Self {
        HashFamily {
            functions: self.functions.iter().map(|h| h.with_range(range)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mod_mersenne_matches_naive_modulo() {
        let cases: [u128; 6] = [
            0,
            1,
            MERSENNE_61 as u128,
            (MERSENNE_61 as u128) + 5,
            u64::MAX as u128,
            (u64::MAX as u128) * 1234567,
        ];
        for &x in &cases {
            assert_eq!(mod_mersenne(x) as u128, x % (MERSENNE_61 as u128), "x={x}");
        }
    }

    #[test]
    fn hash_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = PairwiseHash::draw(97, &mut rng);
        for key in 0..10_000u64 {
            assert!(h.hash(key) < 97);
        }
        assert_eq!(h.range(), 97);
    }

    #[test]
    fn hash_is_deterministic_given_coefficients() {
        let h = PairwiseHash::from_coefficients(12345, 678, 100);
        let first: Vec<usize> = (0..50).map(|k| h.hash(k)).collect();
        let second: Vec<usize> = (0..50).map(|k| h.hash(k)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn hash_distributes_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = 50;
        let h = PairwiseHash::draw(w, &mut rng);
        let mut counts = vec![0usize; w];
        let n = 100_000u64;
        for key in 0..n {
            counts[h.hash(key)] += 1;
        }
        let expected = n as f64 / w as f64;
        for (i, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / expected;
            assert!(
                (0.5..2.0).contains(&ratio),
                "bucket {i} has load ratio {ratio}"
            );
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let fam_a = HashFamily::new(2, 1024, 1);
        let fam_b = HashFamily::new(2, 1024, 2);
        let collisions = (0..1000u64)
            .filter(|&k| fam_a.hash(0, k) == fam_b.hash(0, k))
            .count();
        // Two independent functions into 1024 buckets should rarely agree.
        assert!(collisions < 50, "too many collisions: {collisions}");
    }

    #[test]
    fn sign_hash_is_balanced_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = SignHash::draw(&mut rng);
        let pos = (0..10_000u64).filter(|&k| s.sign(k) > 0.0).count();
        assert!((3_000..7_000).contains(&pos), "unbalanced signs: {pos}");
        assert_eq!(s.sign(42), s.sign(42));
        assert!(s.sign(42) == 1.0 || s.sign(42) == -1.0);
    }

    #[test]
    fn hash_family_depth_and_indices() {
        let fam = HashFamily::new(4, 128, 9);
        assert_eq!(fam.depth(), 4);
        let idx: Vec<usize> = fam.indices(77).collect();
        assert_eq!(idx.len(), 4);
        for (level, &i) in idx.iter().enumerate() {
            assert_eq!(i, fam.hash(level, 77));
            assert!(i < 128);
        }
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = PairwiseHash::draw(0, &mut rng);
    }

    #[test]
    fn restricted_range_is_the_modular_projection() {
        let mut rng = StdRng::seed_from_u64(11);
        let h = PairwiseHash::draw(1024, &mut rng);
        let folded = h.with_range(256);
        for key in 0..5_000u64 {
            assert_eq!(folded.hash(key), h.hash(key) % 256, "key {key}");
        }
        let fam = HashFamily::new(3, 512, 4).with_range(64);
        assert_eq!(fam.depth(), 3);
        for level in 0..3 {
            assert_eq!(fam.function(level).range(), 64);
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn non_divisor_restriction_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = PairwiseHash::draw(100, &mut rng).with_range(33);
    }
}
