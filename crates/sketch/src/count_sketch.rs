//! The Count Sketch (median-of-signed-counters estimator).
//!
//! Each level hashes the element to a bucket *and* to a ±1 sign; updates add
//! the sign to the bucket and queries multiply the bucket by the sign again,
//! yielding an unbiased per-level estimate. The final estimate is the median
//! across levels (Charikar, Chen & Farach-Colton 2002; referenced in
//! Section 1.1 of the paper). Unlike the Count-Min Sketch it can under- as
//! well as over-estimate, but its error scales with `‖f‖₂` instead of
//! `‖f‖₁`, which is much smaller on skewed streams.

use crate::hashing::{PairwiseHash, SignHash};
use opthash_stream::{ElementId, FrequencyEstimator, SpaceReport, StreamElement};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The Count Sketch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountSketch {
    width: usize,
    depth: usize,
    bucket_hashes: Vec<PairwiseHash>,
    sign_hashes: Vec<SignHash>,
    /// Row-major `depth × width` signed counters.
    counters: Vec<i64>,
    total_updates: u64,
}

impl CountSketch {
    /// Creates a sketch with the given `width` and `depth`, seeded for
    /// reproducible hashing.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width > 0, "width must be positive");
        assert!(depth > 0, "depth must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let bucket_hashes = (0..depth)
            .map(|_| PairwiseHash::draw(width, &mut rng))
            .collect();
        let sign_hashes = (0..depth).map(|_| SignHash::draw(&mut rng)).collect();
        CountSketch {
            width,
            depth,
            bucket_hashes,
            sign_hashes,
            counters: vec![0; width * depth],
            total_updates: 0,
        }
    }

    /// Creates a sketch using `total_buckets` counters across `depth` levels.
    pub fn with_total_buckets(total_buckets: usize, depth: usize, seed: u64) -> Self {
        assert!(depth > 0, "depth must be positive");
        Self::new((total_buckets / depth).max(1), depth, seed)
    }

    /// Buckets per level.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of levels.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total counters (`width × depth`).
    #[inline]
    pub fn total_buckets(&self) -> usize {
        self.width * self.depth
    }

    /// Total count mass added so far (`‖f‖₁` of the processed stream).
    #[inline]
    pub fn total_updates(&self) -> u64 {
        self.total_updates
    }

    /// Adds `count` occurrences of `id`.
    pub fn add(&mut self, id: ElementId, count: u64) {
        if count == 0 {
            return;
        }
        self.total_updates += count;
        for level in 0..self.depth {
            let b = self.bucket_hashes[level].hash(id.raw());
            let s = self.sign_hashes[level].sign(id.raw());
            self.counters[level * self.width + b] += (s * count as f64) as i64;
        }
    }

    /// Point query: median of per-level signed estimates. Can be negative for
    /// elements that never appeared; callers that need a frequency clamp at 0
    /// via [`FrequencyEstimator::estimate`].
    pub fn query_signed(&self, id: ElementId) -> f64 {
        let mut estimates: Vec<f64> = (0..self.depth)
            .map(|level| {
                let b = self.bucket_hashes[level].hash(id.raw());
                let s = self.sign_hashes[level].sign(id.raw());
                s * self.counters[level * self.width + b] as f64
            })
            .collect();
        estimates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let d = estimates.len();
        if d % 2 == 1 {
            estimates[d / 2]
        } else {
            0.5 * (estimates[d / 2 - 1] + estimates[d / 2])
        }
    }

    /// Creates a sketch with the same dimensions and hash/sign functions but
    /// every counter zeroed — the shard-local state used by the sharded
    /// ingest engine. `O(width · depth)`.
    pub fn clone_empty(&self) -> Self {
        CountSketch {
            width: self.width,
            depth: self.depth,
            bucket_hashes: self.bucket_hashes.clone(),
            sign_hashes: self.sign_hashes.clone(),
            counters: vec![0; self.width * self.depth],
            total_updates: 0,
        }
    }

    /// Folds the sketch down to `new_width` buckets per level, where
    /// `new_width` must divide the current width: signed counters whose
    /// bucket indices are congruent modulo `new_width` are summed and the
    /// bucket hashes are restricted to the smaller range (sign hashes are
    /// width-independent and unchanged).
    ///
    /// As with [`crate::CountMinSketch::fold_to_width`], the modular
    /// projection property of the Carter–Wegman hashes makes the folded
    /// sketch exactly the one the same stream would have produced at
    /// `new_width`: per-level estimates stay unbiased, only their variance
    /// grows. [`CountSketch::total_updates`] is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is zero or does not divide the current width.
    pub fn fold_to_width(&mut self, new_width: usize) {
        assert!(new_width > 0, "new width must be positive");
        assert!(
            self.width % new_width == 0,
            "new width must divide the current width"
        );
        if new_width == self.width {
            return;
        }
        let mut folded = vec![0i64; new_width * self.depth];
        for level in 0..self.depth {
            let row = &self.counters[level * self.width..(level + 1) * self.width];
            let out = &mut folded[level * new_width..(level + 1) * new_width];
            for (bucket, &count) in row.iter().enumerate() {
                out[bucket % new_width] += count;
            }
        }
        self.counters = folded;
        self.bucket_hashes = self
            .bucket_hashes
            .iter()
            .map(|h| h.with_range(new_width))
            .collect();
        self.width = new_width;
    }

    /// Merges another sketch of the *same configuration* into this one by
    /// element-wise signed-counter addition. The Count Sketch is a linear
    /// transform of the frequency vector, so merging sketches built over
    /// disjoint sub-streams is exact. `O(width · depth)`.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches have different dimensions or hash
    /// functions.
    pub fn merge(&mut self, other: &CountSketch) {
        assert!(
            self.width == other.width
                && self.depth == other.depth
                && self.bucket_hashes == other.bucket_hashes
                && self.sign_hashes == other.sign_hashes,
            "can only merge Count Sketches of identical configuration"
        );
        for (c, &o) in self.counters.iter_mut().zip(&other.counters) {
            *c += o;
        }
        self.total_updates += other.total_updates;
    }

    /// Itemized memory usage.
    pub fn space_report(&self) -> SpaceReport {
        SpaceReport {
            counters: self.total_buckets(),
            ..SpaceReport::default()
        }
    }
}

impl FrequencyEstimator for CountSketch {
    fn update(&mut self, element: &StreamElement) {
        self.add(element.id, 1);
    }

    fn estimate(&self, element: &StreamElement) -> f64 {
        self.query_signed(element.id).max(0.0)
    }

    fn space_bytes(&self) -> usize {
        self.space_report().total_bytes()
    }

    fn name(&self) -> &'static str {
        "count-sketch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opthash_stream::{FrequencyVector, Stream};

    fn skewed_stream(distinct: u64, arrivals: usize, seed: u64) -> Stream {
        let mut ids = Vec::with_capacity(arrivals);
        let mut state = seed.max(1);
        for _ in 0..arrivals {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Geometric-ish skew: low ids far more likely.
            let r = state % 100;
            let id = if r < 50 {
                state % 5
            } else if r < 80 {
                5 + state % 20
            } else {
                25 + state % (distinct - 25)
            };
            ids.push(id);
        }
        Stream::from_ids(ids)
    }

    #[test]
    fn exact_when_no_collisions() {
        let stream = Stream::from_ids([1u64, 1, 2, 3, 3, 3, 4]);
        let mut cs = CountSketch::new(4096, 5, 7);
        cs.update_stream(&stream);
        assert_eq!(cs.query_signed(ElementId(1)), 2.0);
        assert_eq!(cs.query_signed(ElementId(3)), 3.0);
        assert_eq!(cs.query_signed(ElementId(99)), 0.0);
    }

    #[test]
    fn heavy_hitters_are_estimated_well_on_skewed_streams() {
        let stream = skewed_stream(500, 30_000, 2);
        let truth = FrequencyVector::from_stream(&stream);
        let mut cs = CountSketch::new(512, 5, 3);
        cs.update_stream(&stream);
        // The top-5 heavy elements should be within 15% relative error.
        for rank in 1..=5 {
            let (id, f) = truth.frequency_at_rank(rank).unwrap();
            let est = cs.query_signed(id);
            let rel = (est - f as f64).abs() / f as f64;
            assert!(rel < 0.15, "rank {rank}: est {est}, true {f}, rel {rel}");
        }
    }

    #[test]
    fn estimate_clamps_negative_to_zero() {
        let stream = skewed_stream(200, 5_000, 4);
        let mut cs = CountSketch::new(8, 1, 5);
        cs.update_stream(&stream);
        // with a single level and tiny width, some absent elements will get
        // negative signed estimates; the trait estimate must clamp them.
        let mut saw_negative_signed = false;
        for id in 10_000..10_500u64 {
            let signed = cs.query_signed(ElementId(id));
            if signed < 0.0 {
                saw_negative_signed = true;
            }
            let est = cs.estimate(&StreamElement::without_features(id));
            assert!(est >= 0.0);
        }
        assert!(
            saw_negative_signed,
            "expected at least one negative signed estimate"
        );
    }

    #[test]
    fn median_is_taken_across_levels() {
        // Even depth: median averages the middle two level estimates.
        let mut cs = CountSketch::new(1024, 2, 11);
        cs.add(ElementId(7), 10);
        let est = cs.query_signed(ElementId(7));
        assert_eq!(est, 10.0);
    }

    #[test]
    fn space_and_name() {
        let cs = CountSketch::with_total_buckets(1000, 5, 1);
        assert_eq!(cs.width(), 200);
        assert_eq!(cs.depth(), 5);
        assert_eq!(cs.space_bytes(), 4000);
        assert_eq!(cs.name(), "count-sketch");
    }

    #[test]
    fn zero_count_add_is_noop() {
        let mut cs = CountSketch::new(8, 2, 1);
        cs.add(ElementId(1), 0);
        assert_eq!(cs.query_signed(ElementId(1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_panics() {
        let _ = CountSketch::new(8, 0, 1);
    }

    #[test]
    fn merged_sketches_equal_sequential_processing() {
        let stream = skewed_stream(400, 12_000, 6);
        let mut sequential = CountSketch::new(256, 5, 3);
        sequential.update_stream(&stream);

        let mut merged = CountSketch::new(256, 5, 3);
        let mut shards = [
            merged.clone_empty(),
            merged.clone_empty(),
            merged.clone_empty(),
        ];
        for arrival in stream.iter() {
            shards[(arrival.id.raw() % 3) as usize].add(arrival.id, 1);
        }
        for shard in &shards {
            merged.merge(shard);
        }
        for id in 0..500u64 {
            assert_eq!(
                merged.query_signed(ElementId(id)),
                sequential.query_signed(ElementId(id)),
                "estimate mismatch for {id}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn merging_mismatched_sketches_panics() {
        let mut a = CountSketch::new(32, 2, 1);
        let b = CountSketch::new(32, 2, 2);
        a.merge(&b);
    }

    #[test]
    fn folded_sketch_equals_directly_built_smaller_sketch() {
        let stream = skewed_stream(300, 12_000, 17);
        let mut wide = CountSketch::new(512, 5, 23);
        let mut narrow = CountSketch::new(64, 5, 23);
        for element in stream.iter() {
            wide.add(element.id, 1);
            narrow.add(element.id, 1);
        }
        wide.fold_to_width(64);
        assert_eq!(wide.width(), 64);
        assert_eq!(wide.total_updates(), narrow.total_updates());
        for id in 0..400u64 {
            assert_eq!(
                wide.query_signed(ElementId(id)),
                narrow.query_signed(ElementId(id)),
                "folded estimate diverged for {id}"
            );
        }
    }
}
