//! The Learned Count-Min Sketch with an ideal heavy-hitter oracle
//! (`heavy-hitter` baseline, Section 2.2).
//!
//! Hsu et al. (2019) augment the Count-Min Sketch with a classifier that
//! predicts whether an element is a heavy hitter; predicted heavy hitters get
//! their own *unique* bucket (an exact counter storing the element ID, costed
//! at twice a normal bucket), and the rest of the universe falls through to a
//! standard Count-Min Sketch over the remaining budget.
//!
//! Following Section 7.2 of the paper, this implementation assumes an *ideal*
//! oracle: the caller supplies the exact set of heavy-hitter IDs (e.g. the
//! top-`b_heavy` elements of the test period). The paper shows that the ideal
//! version upper-bounds any realistically trainable version, so beating it is
//! the strongest possible comparison for `opt-hash`.

use crate::count_min::CountMinSketch;
use opthash_stream::{ElementId, FrequencyEstimator, SpaceBudget, SpaceReport, StreamElement};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Learned Count-Min Sketch with an ideal heavy-hitter oracle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearnedCountMin {
    /// Exact counters for oracle-designated heavy hitters.
    heavy: HashMap<ElementId, u64>,
    /// Fallback sketch for everything else.
    backing: CountMinSketch,
    /// Number of unique buckets reserved (each costs two ordinary buckets).
    reserved_heavy: usize,
}

impl LearnedCountMin {
    /// Creates the estimator from an explicit list of oracle heavy-hitter
    /// IDs, the number of ordinary buckets left for the backing Count-Min
    /// Sketch, and the sketch depth.
    ///
    /// The number of reserved unique buckets equals `heavy_ids.len()` after
    /// deduplication.
    pub fn new(
        heavy_ids: impl IntoIterator<Item = ElementId>,
        remaining_buckets: usize,
        depth: usize,
        seed: u64,
    ) -> Self {
        let heavy: HashMap<ElementId, u64> = heavy_ids.into_iter().map(|id| (id, 0u64)).collect();
        let backing = CountMinSketch::with_total_buckets(remaining_buckets.max(depth), depth, seed);
        LearnedCountMin {
            reserved_heavy: heavy.len(),
            heavy,
            backing,
        }
    }

    /// Creates the estimator from a total memory budget: `requested_heavy`
    /// unique buckets are reserved (clamped to half the budget as in the
    /// paper), the rest goes to the backing sketch.
    ///
    /// `heavy_ids` supplies the oracle's heavy-hitter IDs in priority order;
    /// only the first `b_heavy` of them receive unique buckets.
    pub fn with_budget(
        budget: SpaceBudget,
        requested_heavy: usize,
        heavy_ids: &[ElementId],
        depth: usize,
        seed: u64,
    ) -> Self {
        let (heavy_buckets, remaining) = budget.learned_cms_split(requested_heavy);
        let chosen = heavy_ids.iter().copied().take(heavy_buckets);
        Self::new(chosen, remaining.max(depth), depth, seed)
    }

    /// Number of unique (heavy-hitter) buckets reserved.
    #[inline]
    pub fn heavy_buckets(&self) -> usize {
        self.reserved_heavy
    }

    /// Width × depth of the backing Count-Min Sketch.
    pub fn backing_dimensions(&self) -> (usize, usize) {
        (self.backing.width(), self.backing.depth())
    }

    /// Returns `true` if `id` is tracked exactly by a unique bucket.
    pub fn is_heavy(&self, id: ElementId) -> bool {
        self.heavy.contains_key(&id)
    }

    /// Adds `count` occurrences of `id`.
    pub fn add(&mut self, id: ElementId, count: u64) {
        if count == 0 {
            return;
        }
        if let Some(counter) = self.heavy.get_mut(&id) {
            *counter += count;
        } else {
            self.backing.add(id, count);
        }
    }

    /// Point query.
    pub fn query(&self, id: ElementId) -> u64 {
        match self.heavy.get(&id) {
            Some(&count) => count,
            None => self.backing.query(id),
        }
    }

    /// Creates an estimator with the same oracle set and backing-sketch
    /// configuration but all counters zeroed — the shard-local state used by
    /// the sharded ingest engine. `O(heavy + width · depth)`.
    pub fn clone_empty(&self) -> Self {
        LearnedCountMin {
            heavy: self.heavy.keys().map(|&id| (id, 0u64)).collect(),
            backing: self.backing.clone_empty(),
            reserved_heavy: self.reserved_heavy,
        }
    }

    /// Merges another estimator with the *same oracle set and configuration*
    /// into this one: unique-bucket counters are added per ID and the
    /// backing sketches are merged. Exact over disjoint sub-streams (both
    /// halves are linear). `O(heavy + width · depth)`.
    ///
    /// # Panics
    ///
    /// Panics if the two estimators track different heavy-hitter sets or
    /// have incompatible backing sketches.
    pub fn merge(&mut self, other: &LearnedCountMin) {
        assert_eq!(
            self.reserved_heavy, other.reserved_heavy,
            "can only merge Learned Count-Min estimators with the same oracle"
        );
        for (id, &count) in &other.heavy {
            let counter = self
                .heavy
                .get_mut(id)
                .expect("can only merge Learned Count-Min estimators with the same oracle");
            *counter += count;
        }
        self.backing.merge(&other.backing);
    }

    /// Itemized memory usage: the backing sketch's counters plus one unique
    /// bucket per reserved heavy hitter.
    pub fn space_report(&self) -> SpaceReport {
        SpaceReport {
            counters: self.backing.total_buckets(),
            unique_buckets: self.reserved_heavy,
            ..SpaceReport::default()
        }
    }
}

impl FrequencyEstimator for LearnedCountMin {
    fn update(&mut self, element: &StreamElement) {
        self.add(element.id, 1);
    }

    fn estimate(&self, element: &StreamElement) -> f64 {
        self.query(element.id) as f64
    }

    fn space_bytes(&self) -> usize {
        self.space_report().total_bytes()
    }

    fn name(&self) -> &'static str {
        "heavy-hitter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opthash_stream::{FrequencyVector, Stream};

    fn zipfish_stream(distinct: u64, arrivals: usize, seed: u64) -> Stream {
        let mut ids = Vec::with_capacity(arrivals);
        let mut state = seed.max(1);
        let weights: Vec<f64> = (0..distinct).map(|k| 1.0 / (k as f64 + 1.0)).collect();
        let total: f64 = weights.iter().sum();
        for _ in 0..arrivals {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let mut u = (state % 1_000_000) as f64 / 1_000_000.0 * total;
            let mut chosen = distinct - 1;
            for (k, &w) in weights.iter().enumerate() {
                if u < w {
                    chosen = k as u64;
                    break;
                }
                u -= w;
            }
            ids.push(chosen);
        }
        Stream::from_ids(ids)
    }

    #[test]
    fn heavy_hitters_are_exact() {
        let stream = zipfish_stream(500, 20_000, 1);
        let truth = FrequencyVector::from_stream(&stream);
        let heavy: Vec<ElementId> = truth.ids_by_rank().into_iter().take(20).collect();
        let mut lcms = LearnedCountMin::new(heavy.clone(), 200, 2, 3);
        lcms.update_stream(&stream);
        for id in heavy {
            assert_eq!(lcms.query(id), truth.frequency(id), "heavy {id} not exact");
        }
    }

    #[test]
    fn non_heavy_elements_never_underestimated() {
        let stream = zipfish_stream(300, 10_000, 5);
        let truth = FrequencyVector::from_stream(&stream);
        let heavy: Vec<ElementId> = truth.ids_by_rank().into_iter().take(10).collect();
        let mut lcms = LearnedCountMin::new(heavy, 128, 2, 7);
        lcms.update_stream(&stream);
        for (id, f) in truth.iter() {
            assert!(lcms.query(id) >= f);
        }
    }

    #[test]
    fn beats_plain_count_min_at_equal_space_on_skewed_data() {
        let stream = zipfish_stream(2_000, 50_000, 9);
        let truth = FrequencyVector::from_stream(&stream);
        let budget = SpaceBudget::from_kb(2.0); // 500 buckets
        let heavy_ids = truth.ids_by_rank();

        let mut lcms = LearnedCountMin::with_budget(budget, 100, &heavy_ids, 2, 1);
        let mut cms = CountMinSketch::with_total_buckets(budget.total_buckets(), 2, 1);
        lcms.update_stream(&stream);
        cms.update_stream(&stream);
        assert!(lcms.space_bytes() <= budget.bytes());
        assert!(cms.space_bytes() <= budget.bytes());

        let mut lcms_err = 0.0;
        let mut cms_err = 0.0;
        for (id, f) in truth.iter() {
            let w = f as f64; // expected-magnitude weighting
            lcms_err += w * (lcms.query(id) as f64 - f as f64).abs();
            cms_err += w * (cms.query(id) as f64 - f as f64).abs();
        }
        assert!(
            lcms_err < cms_err,
            "LCMS ({lcms_err}) should beat CMS ({cms_err}) on skewed data"
        );
    }

    #[test]
    fn with_budget_clamps_heavy_buckets_to_half() {
        let budget = SpaceBudget::from_kb(1.0); // 250 buckets
        let ids: Vec<ElementId> = (0..1_000u64).map(ElementId).collect();
        let lcms = LearnedCountMin::with_budget(budget, 10_000, &ids, 2, 1);
        assert_eq!(lcms.heavy_buckets(), 125);
    }

    #[test]
    fn space_report_charges_unique_buckets_double() {
        let lcms = LearnedCountMin::new((0..10u64).map(ElementId), 100, 2, 1);
        let report = lcms.space_report();
        assert_eq!(report.unique_buckets, 10);
        assert_eq!(report.counters, 100);
        assert_eq!(report.total_bytes(), 100 * 4 + 10 * 8);
        assert_eq!(lcms.name(), "heavy-hitter");
    }

    #[test]
    fn duplicate_heavy_ids_are_deduplicated() {
        let lcms = LearnedCountMin::new(vec![ElementId(1), ElementId(1), ElementId(2)], 16, 2, 1);
        assert_eq!(lcms.heavy_buckets(), 2);
        assert!(lcms.is_heavy(ElementId(1)));
        assert!(!lcms.is_heavy(ElementId(3)));
    }

    #[test]
    fn zero_count_add_is_noop() {
        let mut lcms = LearnedCountMin::new(vec![ElementId(1)], 16, 2, 1);
        lcms.add(ElementId(1), 0);
        lcms.add(ElementId(2), 0);
        assert_eq!(lcms.query(ElementId(1)), 0);
        assert_eq!(lcms.query(ElementId(2)), 0);
    }

    #[test]
    fn merged_estimators_equal_sequential_processing() {
        let stream = zipfish_stream(500, 20_000, 13);
        let truth = FrequencyVector::from_stream(&stream);
        let heavy: Vec<ElementId> = truth.ids_by_rank().into_iter().take(20).collect();

        let mut sequential = LearnedCountMin::new(heavy.clone(), 256, 2, 5);
        sequential.update_stream(&stream);

        let mut merged = LearnedCountMin::new(heavy, 256, 2, 5);
        let mut shards = [merged.clone_empty(), merged.clone_empty()];
        for arrival in stream.iter() {
            shards[(arrival.id.raw() % 2) as usize].add(arrival.id, 1);
        }
        merged.merge(&shards[0]);
        merged.merge(&shards[1]);

        for (id, _) in truth.iter() {
            assert_eq!(merged.query(id), sequential.query(id), "mismatch for {id}");
        }
    }

    #[test]
    #[should_panic(expected = "same oracle")]
    fn merging_different_oracles_panics() {
        let mut a = LearnedCountMin::new(vec![ElementId(1)], 16, 2, 1);
        let b = LearnedCountMin::new(vec![ElementId(2)], 16, 2, 1);
        a.merge(&b);
    }
}
