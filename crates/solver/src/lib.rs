//! # opthash-solver
//!
//! Optimization algorithms that learn the optimal hashing scheme of
//! Section 4 of the paper. Given the observed prefix frequencies `f⁰`, the
//! element features `x`, a bucket count `b` and the trade-off weight `λ`,
//! these solvers produce an assignment of the `n` prefix elements to the `b`
//! buckets minimizing
//!
//! ```text
//! λ · Σ_j Σ_{i∈I_j} |f⁰_i − μ_j|                (estimation error)
//! + (1−λ) · Σ_j Σ_{(i,k)∈I_j×I_j} ‖x_i − x_k‖₂  (similarity error)
//! ```
//!
//! Three solvers are provided, mirroring the paper's `milp` / `bcd` / `dp`:
//!
//! * [`kmedian`] — exact dynamic programming for the `λ = 1` special case
//!   (Problem (3); 1-D k-median clustering), in `O(n²b)` or
//!   `O(n·b·log n)` via divide-and-conquer,
//! * [`bcd`] — the block coordinate descent heuristic of Algorithm 1 with
//!   incremental bucket statistics and several initialization strategies,
//! * [`exact`] — an exact branch-and-bound solver for the general `λ` case,
//!   the workspace's substitute for solving the MILP reformulation
//!   (Problem (2)) with Gurobi; it returns the same optimal assignment for
//!   the instance sizes the paper uses the MILP on,
//! * [`brute`] — exhaustive enumeration for very small instances, used to
//!   validate the other solvers in tests,
//! * [`portfolio`] — a racing portfolio that runs BCD restarts on parallel
//!   threads and races them against the provably-optimal DP (when `λ = 1`)
//!   and brute force (tiny instances), cancelling the losers as soon as a
//!   proven optimum lands.
//!
//! Supporting modules: [`incremental`] maintains the Problem (1) objective
//! under single-element moves with O(log m) evaluation, and [`progress`]
//! provides the calibrated exponential moving averages the BCD solver uses
//! to abort stagnating restarts early.
//!
//! ```
//! use opthash_solver::kmedian::kmedian_dp;
//!
//! // Two obvious frequency groups: the DP isolates them exactly.
//! let frequencies = [100.0, 1.0, 101.0, 2.0];
//! let result = kmedian_dp(&frequencies, 2);
//! assert_eq!(result.assignment[0], result.assignment[2]);
//! assert_eq!(result.assignment[1], result.assignment[3]);
//! assert_ne!(result.assignment[0], result.assignment[1]);
//! assert!((result.cost - 2.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bcd;
pub mod brute;
pub mod exact;
pub mod incremental;
pub mod kmedian;
pub mod portfolio;
pub mod problem;
pub mod progress;

pub use bcd::{BcdConfig, BcdSolver, InitStrategy};
pub use brute::brute_force;
pub use exact::{ExactConfig, ExactSolver};
pub use incremental::{IncrementalObjective, PairwiseDistances};
pub use kmedian::{kmedian_dp, kmedian_dp_cancellable, KMedianResult};
pub use portfolio::{PortfolioConfig, PortfolioSolver};
pub use problem::{BucketStats, HashingProblem, HashingSolution, SolverStats};
pub use progress::{Ema, Ema2};
