//! Exponential-moving-average progress tracking for iterative solvers.
//!
//! The restart manager in [`crate::bcd`] needs a cheap, online answer to
//! "how fast is this descent still improving?" so it can abort restarts that
//! have no realistic chance of beating the incumbent. The machinery here is
//! the calibrated EMA pair popularized by modern SAT solvers (the `Ema` /
//! `Ema2` types of splr): a *fast* average over a short window reacts to the
//! current sweep-to-sweep improvement, a *slow* average over a long window
//! captures the trend of the whole descent, and the ratio of the two tells a
//! stagnation check whether the run is still making progress relative to its
//! own history.
//!
//! Both averages are *calibrated*: a plain EMA initialized at zero
//! underestimates until it has seen roughly one window's worth of samples,
//! so each update also advances a calibration factor and [`Ema::get`]
//! divides by it. After `k` updates the returned value is the exact
//! geometric-weight average of the `k` samples seen, with no cold-start
//! bias.

/// A calibrated exponential moving average over `f64` samples.
#[derive(Debug, Clone)]
pub struct Ema {
    val: f64,
    cal: f64,
    sca: f64,
}

impl Ema {
    /// Creates an EMA with an effective window of `window` samples
    /// (smoothing factor `1 / window`).
    pub fn new(window: usize) -> Self {
        Ema {
            val: 0.0,
            cal: 0.0,
            sca: 1.0 / window.max(1) as f64,
        }
    }

    /// Feeds one sample.
    pub fn update(&mut self, x: f64) {
        self.val = self.sca * x + (1.0 - self.sca) * self.val;
        self.cal = self.sca + (1.0 - self.sca) * self.cal;
    }

    /// The calibrated average of the samples seen so far (`0.0` before the
    /// first update).
    pub fn get(&self) -> f64 {
        if self.cal == 0.0 {
            0.0
        } else {
            self.val / self.cal
        }
    }

    /// Number of samples after which the window is considered warmed up —
    /// the calibration factor has reached `1 − 1/e` of its limit.
    pub fn window(&self) -> usize {
        (1.0 / self.sca) as usize
    }
}

/// A fast/slow pair of calibrated EMAs over the same sample stream.
///
/// [`Ema2::get`] returns the fast average (the current rate);
/// [`Ema2::trend`] returns `fast / slow`, which is `> 1` while the signal is
/// accelerating relative to its history and decays below `1` as a descent
/// stagnates.
#[derive(Debug, Clone)]
pub struct Ema2 {
    fast: Ema,
    slow: Ema,
}

impl Ema2 {
    /// Creates the pair with the given fast and slow windows.
    pub fn new(fast_window: usize, slow_window: usize) -> Self {
        Ema2 {
            fast: Ema::new(fast_window),
            slow: Ema::new(slow_window.max(fast_window)),
        }
    }

    /// Feeds one sample to both averages.
    pub fn update(&mut self, x: f64) {
        self.fast.update(x);
        self.slow.update(x);
    }

    /// The fast calibrated average.
    pub fn get(&self) -> f64 {
        self.fast.get()
    }

    /// The slow calibrated average.
    pub fn get_slow(&self) -> f64 {
        self.slow.get()
    }

    /// `fast / slow`; `1.0` when the slow average is still zero.
    pub fn trend(&self) -> f64 {
        let slow = self.slow.get();
        if slow == 0.0 {
            1.0
        } else {
            self.fast.get() / slow
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_is_reported_exactly_from_the_first_sample() {
        let mut ema = Ema::new(8);
        for _ in 0..3 {
            ema.update(5.0);
            // Calibration removes the cold-start bias entirely.
            assert!((ema.get() - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_ema_reads_zero() {
        assert_eq!(Ema::new(4).get(), 0.0);
        assert_eq!(Ema2::new(4, 16).get(), 0.0);
        assert_eq!(Ema2::new(4, 16).trend(), 1.0);
    }

    #[test]
    fn fast_window_tracks_recent_samples_more_closely() {
        let mut pair = Ema2::new(2, 32);
        for _ in 0..32 {
            pair.update(10.0);
        }
        for _ in 0..4 {
            pair.update(0.0);
        }
        // The fast average has mostly forgotten the 10s; the slow one hasn't.
        assert!(pair.get() < 2.0, "fast {}", pair.get());
        assert!(pair.get_slow() > 5.0, "slow {}", pair.get_slow());
        assert!(pair.trend() < 0.5, "trend {}", pair.trend());
    }

    #[test]
    fn trend_rises_on_acceleration() {
        let mut pair = Ema2::new(2, 16);
        for _ in 0..16 {
            pair.update(1.0);
        }
        for _ in 0..3 {
            pair.update(10.0);
        }
        assert!(pair.trend() > 1.5, "trend {}", pair.trend());
    }

    #[test]
    fn window_accessor_reports_configured_size() {
        assert_eq!(Ema::new(16).window(), 16);
        // zero-sized windows are clamped to one sample
        assert_eq!(Ema::new(0).window(), 1);
    }
}
