//! Exhaustive enumeration for very small instances.
//!
//! Enumerates every assignment of `n` elements to `b` buckets (with a
//! canonical-labeling symmetry break so equivalent relabelings are visited
//! once) and returns the one with the smallest Problem (1) objective. Useful
//! only for `n` up to a dozen elements; the workspace uses it to validate the
//! exact branch-and-bound solver and the DP in tests and as a correctness
//! oracle in property tests.

use crate::problem::{HashingProblem, HashingSolution, SolverStats};
use std::time::Instant;

/// Exhaustively finds an optimal assignment for a (tiny) problem.
///
/// # Panics
/// Panics if the instance is larger than 14 elements, where enumeration
/// would be hopeless.
pub fn brute_force(problem: &HashingProblem) -> HashingSolution {
    assert!(
        problem.len() <= 14,
        "brute force is only meant for tiny instances (n ≤ 14), got n = {}",
        problem.len()
    );
    let start = Instant::now();
    let n = problem.len();
    if n == 0 {
        return problem.solution_from_assignment(
            Vec::new(),
            SolverStats {
                elapsed: start.elapsed(),
                iterations: 0,
                proven_optimal: true,
                restarts: 0,
                time_to_best: start.elapsed(),
                ..SolverStats::default()
            },
        );
    }
    let b = problem.buckets.min(n);

    // Depth-first enumeration with canonical labeling: element i may use at
    // most one bucket index beyond the largest index used so far. This visits
    // each set partition into at most `b` parts exactly once.
    struct Search<'p> {
        problem: &'p HashingProblem,
        start: Instant,
        assignment: Vec<usize>,
        best_assignment: Vec<usize>,
        best_objective: f64,
        nodes: usize,
        time_to_best: std::time::Duration,
    }

    fn recurse(s: &mut Search<'_>, i: usize, max_used: usize, n: usize, b: usize) {
        if i == n {
            s.nodes += 1;
            let obj = s.problem.objective(&s.assignment);
            if obj < s.best_objective {
                s.best_objective = obj;
                s.best_assignment.clone_from(&s.assignment);
                s.time_to_best = s.start.elapsed();
            }
            return;
        }
        let limit = (max_used + 1).min(b - 1);
        for j in 0..=limit {
            s.assignment[i] = j;
            recurse(s, i + 1, max_used.max(j), n, b);
        }
    }

    // Element 0 is pinned to bucket 0; any assignment is a relabeling of one
    // with that property.
    let mut search = Search {
        problem,
        start,
        assignment: vec![0usize; n],
        best_assignment: vec![0usize; n],
        best_objective: f64::INFINITY,
        nodes: 0,
        time_to_best: std::time::Duration::ZERO,
    };
    recurse(&mut search, 1, 0, n, b);

    let stats = SolverStats {
        elapsed: start.elapsed(),
        iterations: search.nodes,
        proven_optimal: true,
        restarts: 0,
        moves_evaluated: search.nodes as u64,
        time_to_best: search.time_to_best,
        ..SolverStats::default()
    };
    problem.solution_from_assignment(search.best_assignment, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opthash_stream::Features;

    #[test]
    fn finds_obvious_optimum() {
        let p = HashingProblem::frequency_only(vec![1.0, 1.0, 10.0, 10.0], 2);
        let sol = brute_force(&p);
        assert_eq!(sol.objective, 0.0);
        assert_eq!(sol.assignment[0], sol.assignment[1]);
        assert_eq!(sol.assignment[2], sol.assignment[3]);
        assert_ne!(sol.assignment[0], sol.assignment[2]);
        assert!(sol.stats.proven_optimal);
    }

    #[test]
    fn single_bucket_has_no_choice() {
        let p = HashingProblem::frequency_only(vec![2.0, 4.0, 9.0], 1);
        let sol = brute_force(&p);
        assert_eq!(sol.assignment, vec![0, 0, 0]);
    }

    #[test]
    fn uses_features_when_lambda_below_one() {
        // Frequencies are identical, so only similarity matters: optimal split
        // is by feature proximity.
        let p = HashingProblem::new(
            vec![5.0, 5.0, 5.0, 5.0],
            vec![
                Features::new(vec![0.0]),
                Features::new(vec![0.1]),
                Features::new(vec![9.0]),
                Features::new(vec![9.1]),
            ],
            2,
            0.0,
        );
        let sol = brute_force(&p);
        assert_eq!(sol.assignment[0], sol.assignment[1]);
        assert_eq!(sol.assignment[2], sol.assignment[3]);
        assert_ne!(sol.assignment[0], sol.assignment[2]);
    }

    #[test]
    fn empty_problem_is_trivially_solved() {
        let p = HashingProblem::frequency_only(vec![], 3);
        let sol = brute_force(&p);
        assert!(sol.assignment.is_empty());
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    #[should_panic(expected = "tiny instances")]
    fn too_large_instance_panics() {
        let p = HashingProblem::frequency_only(vec![1.0; 20], 2);
        let _ = brute_force(&p);
    }
}
