//! A racing solver portfolio.
//!
//! Training time in the paper's experiments is dominated by multi-start BCD,
//! yet the restarts are embarrassingly parallel and — for the `λ = 1` case —
//! an exact DP exists that sometimes beats the heuristic outright. The
//! portfolio exploits both facts: it splits the configured BCD restarts over
//! worker threads (restart `r` keeps the sequential run's seed `seed + r`,
//! so the *set* of descents explored is identical) and simultaneously races
//!
//! * the frequency-only k-median DP (spawned only when the problem has no
//!   similarity term, where the DP optimum is the global optimum), and
//! * exhaustive enumeration (spawned only for tiny instances),
//!
//! against them. Whichever proven-optimal racer finishes first raises a
//! cooperative [`AtomicBool`] that the BCD workers check at every sweep
//! boundary, so the heuristic stops burning cycles the moment the race is
//! decided. Proven racers never cancel *each other* — both always run to
//! completion when spawned — which keeps the winning assignment
//! deterministic.
//!
//! With the default configuration the portfolio is never worse than running
//! the same restarts sequentially with aborts disabled: the workers run
//! abort-free partitions of the identical restart set, and the extra racers
//! can only add candidates. Setting
//! [`PortfolioConfig::accept_objective`] trades that guarantee for latency:
//! any worker reaching the threshold cancels the rest of the race.

use crate::bcd::{BcdConfig, BcdSolver, RestartsOutcome};
use crate::brute::brute_force;
use crate::kmedian::solve_frequency_only_cancellable;
use crate::problem::{HashingProblem, HashingSolution, SolverStats};
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of the racing [`PortfolioSolver`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortfolioConfig {
    /// Base BCD configuration. `bcd.restarts` is the *total* restart budget;
    /// the portfolio partitions it into contiguous ranges across the worker
    /// threads, preserving per-restart seeds.
    pub bcd: BcdConfig,
    /// Number of BCD worker threads; `0` lets the solver pick
    /// `min(available parallelism, 8)`. Always clamped to the restart count.
    pub workers: usize,
    /// Race exhaustive enumeration when the instance has at most this many
    /// elements (itself clamped to the hard `n ≤ 14` brute-force ceiling).
    pub brute_force_limit: usize,
    /// When the frequency-only DP races, the main thread waits for it to
    /// finish — it proves optimality — as long as `n` is at most this;
    /// beyond it the DP is cancelled once the BCD workers are done, so a
    /// slow quadratic table never outlives the heuristic it was racing.
    pub dp_wait_limit: usize,
    /// Optional "good enough" threshold: the first worker whose best
    /// objective reaches it cancels every other racer. Off (`None`) by
    /// default because it makes the outcome timing-dependent.
    pub accept_objective: Option<f64>,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            bcd: BcdConfig {
                restarts: 4,
                ..BcdConfig::default()
            },
            workers: 0,
            brute_force_limit: 10,
            dp_wait_limit: 2048,
            accept_objective: None,
        }
    }
}

impl PortfolioConfig {
    /// Returns the configuration with warm-starting requested on the
    /// underlying BCD workers (see [`BcdConfig::warm_start`]).
    pub fn with_warm_start(mut self) -> Self {
        self.bcd.warm_start = true;
        self
    }
}

/// Racing portfolio over parallel BCD restarts, the exact `λ = 1` DP and
/// brute-force enumeration. See the module docs for the racing rules.
#[derive(Debug, Clone)]
pub struct PortfolioSolver {
    config: PortfolioConfig,
}

/// One finished racer, normalized for winner selection. `objective` is
/// recomputed from the assignment through [`HashingProblem::objective`] so
/// every candidate is scored by the identical code path (a worker's
/// incrementally maintained value could differ from the DP's closed form in
/// the last few bits, which must not decide a race).
struct Candidate {
    assignment: Vec<usize>,
    objective: f64,
    proven_optimal: bool,
    trajectory: Vec<f64>,
    time_to_best: Duration,
}

impl PortfolioSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: PortfolioConfig) -> Self {
        PortfolioSolver { config }
    }

    /// Creates a solver with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(PortfolioConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &PortfolioConfig {
        &self.config
    }

    /// Races the portfolio and returns the best solution found.
    pub fn solve(&self, problem: &HashingProblem) -> HashingSolution {
        self.solve_inner(problem, None)
    }

    /// Like [`PortfolioSolver::solve`], but the worker holding restart 0
    /// descends from `initial` (bucket indices clamped into range) instead of
    /// the configured init strategy.
    pub fn solve_from(&self, problem: &HashingProblem, initial: &[usize]) -> HashingSolution {
        self.solve_inner(problem, Some(BcdSolver::clamp_warm(problem, initial)))
    }

    /// Warm-starts the race from an incumbent solution over the same element
    /// set (the online re-training path).
    pub fn solve_warm(
        &self,
        problem: &HashingProblem,
        incumbent: &HashingSolution,
    ) -> HashingSolution {
        self.solve_from(problem, &incumbent.assignment)
    }

    fn solve_inner(&self, problem: &HashingProblem, warm: Option<Vec<usize>>) -> HashingSolution {
        assert!(!problem.is_empty(), "cannot solve an empty problem");
        let start = Instant::now();
        let warm_started = warm.is_some();
        let n = problem.len();
        let restarts = self.config.bcd.restarts.max(1);
        let workers = self.worker_count(restarts);
        // Race the exact DP only when it will be awaited (small instance) or
        // a spare core can run it for free: on a fully loaded host a DP that
        // will just be cancelled once the heuristic finishes only steals CPU
        // from the workers.
        let spare_core = thread::available_parallelism().map_or(1, |p| p.get()) > workers;
        let run_dp = !problem.uses_features() && (n <= self.config.dp_wait_limit || spare_core);
        let run_brute = n <= self.config.brute_force_limit.min(14);
        let accept = self.config.accept_objective;

        // Two independent flags: `cancel` stops the heuristic workers,
        // `dp_cancel` stops the DP. Proven racers raise only `cancel`, so
        // they never truncate each other and the winner stays deterministic.
        let cancel = AtomicBool::new(false);
        let dp_cancel = AtomicBool::new(false);

        let (outcomes, dp_sol, brute_sol) = thread::scope(|scope| {
            let cancel = &cancel;
            let dp_cancel = &dp_cancel;
            let mut warm = warm;
            let mut handles = Vec::with_capacity(workers);
            for range in partition_restarts(restarts, workers) {
                // The worker holding restart 0 seeds it with the incumbent,
                // exactly as the sequential solver would.
                let warm_for_worker = if range.start == 0 { warm.take() } else { None };
                let solver = BcdSolver::new(self.config.bcd);
                handles.push(scope.spawn(move || {
                    let outcome =
                        solver.run_restarts(problem, warm_for_worker, range, Some(cancel), false);
                    if let Some(threshold) = accept {
                        if outcome.objective <= threshold {
                            cancel.store(true, Ordering::Relaxed);
                            dp_cancel.store(true, Ordering::Relaxed);
                        }
                    }
                    outcome
                }));
            }
            let dp_handle = run_dp.then(|| {
                scope.spawn(move || {
                    let sol = solve_frequency_only_cancellable(problem, dp_cancel);
                    if sol.is_some() {
                        // The DP optimum is the global optimum here (no
                        // similarity term): the race is decided.
                        cancel.store(true, Ordering::Relaxed);
                    }
                    sol
                })
            });
            let brute_handle = run_brute.then(|| {
                scope.spawn(move || {
                    let sol = brute_force(problem);
                    cancel.store(true, Ordering::Relaxed);
                    sol
                })
            });

            let outcomes: Vec<RestartsOutcome> = handles
                .into_iter()
                .map(|h| h.join().expect("BCD worker panicked"))
                .collect();
            let brute_sol = brute_handle.map(|h| h.join().expect("brute-force racer panicked"));
            // The heuristic is done; only wait out a still-running DP when
            // the instance is small enough that proving optimality is cheap.
            if n > self.config.dp_wait_limit {
                dp_cancel.store(true, Ordering::Relaxed);
            }
            let dp_sol = dp_handle.and_then(|h| h.join().expect("DP racer panicked"));
            (outcomes, dp_sol, brute_sol)
        });

        // Winner selection in fixed racer order (DP, brute force, workers by
        // index): the first strict minimum wins, so ties between the proven
        // racers resolve the same way every run.
        let mut candidates: Vec<Candidate> = Vec::with_capacity(outcomes.len() + 2);
        let mut total_sweeps = 0usize;
        let mut moves_evaluated = 0u64;
        let mut restarts_aborted = 0usize;
        let mut restarts_run = 0usize;
        for sol in [dp_sol, brute_sol].into_iter().flatten() {
            moves_evaluated += sol.stats.moves_evaluated;
            candidates.push(Candidate {
                objective: problem.objective(&sol.assignment),
                assignment: sol.assignment,
                proven_optimal: sol.stats.proven_optimal,
                trajectory: sol.stats.cost_trajectory,
                time_to_best: sol.stats.time_to_best,
            });
        }
        for outcome in outcomes {
            total_sweeps += outcome.total_sweeps;
            moves_evaluated += outcome.moves_evaluated;
            restarts_aborted += outcome.restarts_aborted;
            restarts_run += outcome.restarts_run;
            candidates.push(Candidate {
                objective: problem.objective(&outcome.assignment),
                assignment: outcome.assignment,
                proven_optimal: false,
                trajectory: outcome.trajectory,
                time_to_best: outcome.time_to_best,
            });
        }
        // Strict `<` keeps the earliest racer on ties (DP before brute force
        // before workers), which is what makes proven-racer ties stable.
        let mut winner_idx = 0usize;
        for (i, c) in candidates.iter().enumerate().skip(1) {
            if c.objective < candidates[winner_idx].objective {
                winner_idx = i;
            }
        }
        let winner = candidates.swap_remove(winner_idx);

        let stats = SolverStats {
            elapsed: start.elapsed(),
            // `iterations` counts BCD sweeps across every worker; the DP and
            // brute-force racers report their work through `moves_evaluated`.
            iterations: total_sweeps,
            proven_optimal: winner.proven_optimal,
            // Restarts the workers actually started — fewer than configured
            // when a proven racer decided the race early.
            restarts: restarts_run,
            initial_objective: winner
                .trajectory
                .first()
                .copied()
                .unwrap_or(winner.objective),
            cost_trajectory: winner.trajectory,
            warm_started,
            moves_evaluated,
            restarts_aborted,
            time_to_best: winner.time_to_best,
        };
        problem.solution_from_assignment(winner.assignment, stats)
    }

    fn worker_count(&self, restarts: usize) -> usize {
        let requested = if self.config.workers == 0 {
            thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1)
                .min(8)
        } else {
            self.config.workers
        };
        requested.clamp(1, restarts)
    }
}

/// Splits `0..restarts` into `workers` contiguous, near-equal ranges.
fn partition_restarts(restarts: usize, workers: usize) -> Vec<Range<usize>> {
    let per = restarts / workers;
    let extra = restarts % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0usize;
    for w in 0..workers {
        let len = per + usize::from(w < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmedian::solve_frequency_only;
    use opthash_stream::Features;

    fn noisy_problem(n: usize, b: usize, lambda: f64, seed: u64) -> HashingProblem {
        let mut state = seed.max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64
        };
        let frequencies: Vec<f64> = (0..n).map(|_| next()).collect();
        if lambda >= 1.0 {
            HashingProblem::frequency_only(frequencies, b)
        } else {
            let features: Vec<Features> = (0..n)
                .map(|_| Features::new(vec![next() / 100.0, next() / 100.0]))
                .collect();
            HashingProblem::new(frequencies, features, b, lambda)
        }
    }

    #[test]
    fn portfolio_never_worse_than_sequential_bcd_same_budget() {
        // λ < 1 and n above the brute-force limit: no proven racer runs, so
        // the workers cover exactly the sequential (abort-free) restart set.
        let p = noisy_problem(60, 4, 0.5, 17);
        let bcd = BcdConfig {
            restarts: 6,
            seed: 5,
            ..BcdConfig::default().without_aborts()
        };
        let sequential = BcdSolver::new(bcd).solve(&p);
        let raced = PortfolioSolver::new(PortfolioConfig {
            bcd,
            ..PortfolioConfig::default()
        })
        .solve(&p);
        assert!(
            raced.objective <= sequential.objective + 1e-9,
            "portfolio {} vs sequential {}",
            raced.objective,
            sequential.objective
        );
    }

    #[test]
    fn dp_racer_proves_frequency_only_instances() {
        let p = noisy_problem(120, 6, 1.0, 23);
        let sol = PortfolioSolver::with_defaults().solve(&p);
        assert!(sol.stats.proven_optimal, "DP racer should win λ=1 races");
        let dp = solve_frequency_only(&p);
        assert!(
            (sol.objective - dp.objective).abs() < 1e-9,
            "portfolio {} vs dp optimum {}",
            sol.objective,
            dp.objective
        );
    }

    #[test]
    fn brute_racer_proves_tiny_feature_instances() {
        let p = noisy_problem(8, 3, 0.5, 31);
        let sol = PortfolioSolver::with_defaults().solve(&p);
        assert!(sol.stats.proven_optimal);
        let brute = brute_force(&p);
        assert!((sol.objective - brute.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_started_flag_survives_a_dp_win() {
        let p = noisy_problem(100, 5, 1.0, 41);
        let cold = PortfolioSolver::with_defaults().solve(&p);
        let warm = PortfolioSolver::with_defaults().solve_warm(&p, &cold);
        assert!(warm.stats.warm_started);
        assert!(warm.objective <= cold.objective + 1e-9);
    }

    #[test]
    fn deterministic_when_no_timing_dependent_racer_runs() {
        // Features ⇒ no DP; n > brute limit ⇒ no brute; accept off ⇒ no
        // cross-worker cancellation. Two runs must agree bit for bit.
        let p = noisy_problem(50, 4, 0.3, 53);
        let config = PortfolioConfig {
            bcd: BcdConfig {
                restarts: 5,
                seed: 9,
                ..BcdConfig::default()
            },
            ..PortfolioConfig::default()
        };
        let a = PortfolioSolver::new(config).solve(&p);
        let b = PortfolioSolver::new(config).solve(&p);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn accept_objective_still_returns_a_valid_solution() {
        let p = noisy_problem(80, 4, 0.5, 61);
        let sol = PortfolioSolver::new(PortfolioConfig {
            accept_objective: Some(f64::INFINITY),
            ..PortfolioConfig::default()
        })
        .solve(&p);
        assert_eq!(sol.assignment.len(), p.len());
        assert!(sol.assignment.iter().all(|&j| j < p.buckets));
    }

    #[test]
    fn aggregates_work_counters_across_racers() {
        let p = noisy_problem(40, 4, 1.0, 71);
        let sol = PortfolioSolver::with_defaults().solve(&p);
        assert!(sol.stats.iterations > 0, "worker sweeps must be counted");
        assert!(sol.stats.moves_evaluated > 0);
        assert!(sol.stats.time_to_best <= sol.stats.elapsed);
    }

    #[test]
    #[should_panic(expected = "empty problem")]
    fn empty_problem_panics() {
        let p = HashingProblem::frequency_only(vec![], 2);
        let _ = PortfolioSolver::with_defaults().solve(&p);
    }

    #[test]
    fn restart_partition_covers_the_full_range() {
        for (restarts, workers) in [(1, 1), (5, 2), (8, 3), (16, 8), (3, 3)] {
            let ranges = partition_restarts(restarts, workers);
            assert_eq!(ranges.len(), workers);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, restarts);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
        }
    }
}
