//! Exact dynamic programming for the `λ = 1` case (Problem (3)).
//!
//! With `λ = 1` the hashing objective reduces to partitioning the observed
//! frequencies into `b` groups so that the within-group absolute deviation is
//! minimized — a one-dimensional k-median clustering problem (Section 4.4).
//! For an L1 deviation measured from the group's *median*, an optimal
//! partition is always contiguous in sorted order, which allows dynamic
//! programming over sorted prefixes; the paper points to `Ckmeans.1d.dp` and
//! to the `O(nb)` matrix-searching method of Wu (1991).
//!
//! This module implements:
//!
//! * a quadratic reference DP (`O(n²·b)`), and
//! * a divide-and-conquer DP (`O(n·b·log n)`) exploiting the monotonicity of
//!   the optimal split points (the cost matrix is concave-Monge),
//!
//! both returning provably optimal partitions for the chosen
//! [`ClusterCost`]. Two costs are supported: deviation from the cluster
//! **median** (the classical k-median objective the paper's `dp` baseline
//! optimizes) and deviation from the cluster **mean** (the exact term the
//! estimation error of Problem (1) charges). They usually coincide on the
//! integer frequency data of the experiments; both are exposed so the
//! benchmark harness can report either.

use crate::problem::{HashingProblem, HashingSolution, SolverStats};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Which within-cluster deviation the DP minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ClusterCost {
    /// `Σ |x_i − median|` — the classical 1-D k-median objective, matching
    /// the paper's `dp` solver (Ckmeans.1d.dp).
    #[default]
    MedianAbs,
    /// `Σ |x_i − mean|` — the exact estimation-error term of Problem (1).
    MeanAbs,
}

/// Which DP strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DpStrategy {
    /// Divide-and-conquer over split points, `O(n·b·log n)`.
    ///
    /// Sound only when the optimal split points are monotone, which the
    /// concave-Monge property of the interval cost guarantees for
    /// [`ClusterCost::MedianAbs`]. The mean-deviation cost can violate that
    /// property, so for [`ClusterCost::MeanAbs`] the solver silently falls
    /// back to [`DpStrategy::Quadratic`] to stay exact.
    #[default]
    DivideAndConquer,
    /// Plain quadratic DP, `O(n²·b)`; kept as a reference implementation and
    /// as the exact path for the mean-deviation cost.
    Quadratic,
}

/// Result of the k-median DP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMedianResult {
    /// Cluster index of each input value, in the original input order.
    /// Clusters are numbered by increasing value range.
    pub assignment: Vec<usize>,
    /// Optimal total within-cluster deviation under the chosen cost.
    pub cost: f64,
    /// Number of clusters actually used (`min(k, number of distinct-ish
    /// groups)` — always `min(k, n)`).
    pub clusters_used: usize,
    /// DP cells evaluated (candidate `(split, prefix)` pairs scored). The
    /// monotonicity pruning of the quadratic strategy and the shrinking
    /// argmin windows of divide-and-conquer both show up directly in this
    /// counter.
    pub cells_evaluated: u64,
}

/// Precomputed prefix sums over the sorted values, giving O(1) range costs.
struct RangeCost<'a> {
    sorted: &'a [f64],
    prefix: Vec<f64>,
    cost: ClusterCost,
}

impl<'a> RangeCost<'a> {
    fn new(sorted: &'a [f64], cost: ClusterCost) -> Self {
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        prefix.push(0.0);
        for &v in sorted {
            prefix.push(prefix.last().unwrap() + v);
        }
        RangeCost {
            sorted,
            prefix,
            cost,
        }
    }

    #[inline]
    fn range_sum(&self, l: usize, r: usize) -> f64 {
        // inclusive l..=r
        self.prefix[r + 1] - self.prefix[l]
    }

    /// Total absolute deviation of the sorted slice `l..=r` from its center.
    fn range_cost(&self, l: usize, r: usize) -> f64 {
        if l >= r {
            return 0.0;
        }
        match self.cost {
            ClusterCost::MedianAbs => {
                let m = l + (r - l) / 2;
                let median = self.sorted[m];
                let left = if m == l {
                    0.0
                } else {
                    median * ((m - l) as f64) - self.range_sum(l, m - 1)
                };
                let right = if m == r {
                    0.0
                } else {
                    self.range_sum(m + 1, r) - median * ((r - m) as f64)
                };
                left + right
            }
            ClusterCost::MeanAbs => {
                let count = (r - l + 1) as f64;
                let mean = self.range_sum(l, r) / count;
                // Values are sorted: find the first index > mean by binary
                // search within [l, r].
                let slice = &self.sorted[l..=r];
                let split = slice.partition_point(|&v| v <= mean);
                let below = split as f64;
                let above = count - below;
                let below_sum = if split == 0 {
                    0.0
                } else {
                    self.range_sum(l, l + split - 1)
                };
                let above_sum = self.range_sum(l, r) - below_sum;
                (mean * below - below_sum) + (above_sum - mean * above)
            }
        }
    }
}

/// Solves the 1-D k-median problem exactly.
///
/// `values` may be in any order; the returned assignment is reported in the
/// same order. `k` is clamped to `values.len()`; `k = 0` is rejected.
pub fn kmedian_dp(values: &[f64], k: usize) -> KMedianResult {
    kmedian_dp_with(
        values,
        k,
        ClusterCost::MedianAbs,
        DpStrategy::DivideAndConquer,
    )
}

/// Solves the 1-D clustering problem exactly with an explicit cost and
/// strategy.
pub fn kmedian_dp_with(
    values: &[f64],
    k: usize,
    cost: ClusterCost,
    strategy: DpStrategy,
) -> KMedianResult {
    kmedian_dp_inner(values, k, cost, strategy, None).expect("uncancelled DP always completes")
}

/// Cooperatively cancellable variant of [`kmedian_dp_with`]: the DP checks
/// `cancel` once per cluster row and returns `None` as soon as the flag is
/// raised. Used by the racing portfolio so an already-decided race does not
/// keep paying for the table.
pub fn kmedian_dp_cancellable(
    values: &[f64],
    k: usize,
    cost: ClusterCost,
    strategy: DpStrategy,
    cancel: &AtomicBool,
) -> Option<KMedianResult> {
    kmedian_dp_inner(values, k, cost, strategy, Some(cancel))
}

fn kmedian_dp_inner(
    values: &[f64],
    k: usize,
    cost: ClusterCost,
    strategy: DpStrategy,
    cancel: Option<&AtomicBool>,
) -> Option<KMedianResult> {
    assert!(k > 0, "k must be positive");
    assert!(
        values.iter().all(|v| v.is_finite()),
        "values must be finite"
    );
    let n = values.len();
    if n == 0 {
        return Some(KMedianResult {
            assignment: Vec::new(),
            cost: 0.0,
            clusters_used: 0,
            cells_evaluated: 0,
        });
    }
    let k = k.min(n);

    // Divide-and-conquer assumes monotone optimal split points, which holds
    // for the median-deviation cost (its interval-cost matrix is
    // concave-Monge) but not in general for deviation about the mean. Fall
    // back to the exact quadratic DP in that combination.
    let strategy = match (cost, strategy) {
        (ClusterCost::MeanAbs, DpStrategy::DivideAndConquer) => DpStrategy::Quadratic,
        _ => strategy,
    };

    // Sort, remembering the original positions.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
    let sorted: Vec<f64> = order.iter().map(|&i| values[i]).collect();
    let rc = RangeCost::new(&sorted, cost);

    // dp[i] = optimal cost of clustering sorted[0..=i] with the current
    // number of clusters; split[j·n + i] = last cluster's start for
    // backtracking (one flat allocation instead of a Vec per cluster row).
    let mut dp_prev: Vec<f64> = (0..n).map(|i| rc.range_cost(0, i)).collect();
    let mut dp_cur = vec![0.0f64; n];
    let mut split = vec![0usize; k * n];
    let mut cells = n as u64;
    // Work stack for the divide-and-conquer strategy, allocated once and
    // reused across every cluster row: (lo, hi, opt_lo, opt_hi).
    let mut stack: Vec<(usize, usize, usize, usize)> = Vec::new();

    let cancelled = || cancel.is_some_and(|flag| flag.load(Ordering::Relaxed));
    for j in 1..k {
        if cancelled() {
            return None;
        }
        let split_row = &mut split[j * n..(j + 1) * n];
        match strategy {
            DpStrategy::Quadratic => {
                for i in 0..n {
                    // Large rows can dominate the race long after it is
                    // decided; poll cancellation inside the row too.
                    if i & 0x3FF == 0 && cancelled() {
                        return None;
                    }
                    if i < j {
                        // fewer points than clusters: zero cost, each its own
                        dp_cur[i] = 0.0;
                        split_row[i] = i;
                        continue;
                    }
                    let mut best = f64::INFINITY;
                    let mut best_m = j;
                    // dp_prev is non-decreasing in the prefix length (adding
                    // the largest element of a sorted prefix never lowers the
                    // optimal cost), so once dp_prev[m−1] alone reaches the
                    // best candidate no later split can win.
                    for m in j..=i {
                        if dp_prev[m - 1] >= best {
                            break;
                        }
                        cells += 1;
                        let c = dp_prev[m - 1] + rc.range_cost(m, i);
                        if c < best {
                            best = c;
                            best_m = m;
                        }
                    }
                    dp_cur[i] = best;
                    split_row[i] = best_m;
                }
            }
            DpStrategy::DivideAndConquer => {
                // Fill dp_cur[lo..=hi] knowing the optimal split index lies
                // in [opt_lo, opt_hi] (monotonicity of argmin), iteratively
                // on the hoisted work stack.
                stack.clear();
                stack.push((0, n - 1, 1, n - 1));
                let mut polls = 0u32;
                while let Some((lo, hi, opt_lo, opt_hi)) = stack.pop() {
                    polls = polls.wrapping_add(1);
                    if polls & 0xFF == 0 && cancelled() {
                        return None;
                    }
                    let mid = lo + (hi - lo) / 2;
                    if mid < j {
                        dp_cur[mid] = 0.0;
                        split_row[mid] = mid;
                    } else {
                        let mut best = f64::INFINITY;
                        let mut best_m = opt_lo.max(j);
                        let m_lo = opt_lo.max(j);
                        let m_hi = opt_hi.min(mid);
                        for m in m_lo..=m_hi {
                            if dp_prev[m - 1] >= best {
                                break;
                            }
                            cells += 1;
                            let c = dp_prev[m - 1] + rc.range_cost(m, mid);
                            if c < best {
                                best = c;
                                best_m = m;
                            }
                        }
                        dp_cur[mid] = best;
                        split_row[mid] = best_m;
                    }
                    if mid > lo {
                        stack.push((lo, mid - 1, opt_lo, split_row[mid].max(j)));
                    }
                    if mid < hi {
                        stack.push((mid + 1, hi, split_row[mid].max(j), opt_hi));
                    }
                }
            }
        }
        std::mem::swap(&mut dp_prev, &mut dp_cur);
    }

    // Backtrack cluster boundaries from split[k-1][n-1].
    let mut boundaries = Vec::with_capacity(k);
    let mut end = n - 1;
    let mut j = k - 1;
    loop {
        let start = split[j * n + end].min(end);
        boundaries.push((start, end));
        if j == 0 || start == 0 {
            break;
        }
        end = start - 1;
        j -= 1;
    }
    boundaries.reverse();

    // Map sorted positions to cluster indices, then back to input order.
    let mut cluster_of_sorted = vec![0usize; n];
    for (cluster, &(s, e)) in boundaries.iter().enumerate() {
        for pos in s..=e {
            cluster_of_sorted[pos] = cluster;
        }
    }
    let mut assignment = vec![0usize; n];
    for (pos, &orig) in order.iter().enumerate() {
        assignment[orig] = cluster_of_sorted[pos];
    }

    Some(KMedianResult {
        assignment,
        cost: dp_prev[n - 1],
        clusters_used: boundaries.len(),
        cells_evaluated: cells,
    })
}

/// Solves a [`HashingProblem`] with `λ = 1` (or ignoring features) using the
/// DP and wraps the result as a [`HashingSolution`], the form the rest of the
/// workspace consumes. This is the paper's `dp` solver.
///
/// The DP minimizes the [`ClusterCost::MeanAbs`] deviation, i.e. exactly the
/// estimation-error term of Problem (1), over contiguous partitions of the
/// sorted frequencies (via the exact quadratic DP — see
/// [`DpStrategy::DivideAndConquer`] for why the subquadratic strategy is
/// reserved for the median cost).
pub fn solve_frequency_only(problem: &HashingProblem) -> HashingSolution {
    let start = Instant::now();
    let result = kmedian_dp_with(
        &problem.frequencies,
        problem.buckets,
        ClusterCost::MeanAbs,
        DpStrategy::DivideAndConquer,
    );
    let stats = SolverStats {
        elapsed: start.elapsed(),
        iterations: result.cells_evaluated as usize,
        proven_optimal: true,
        restarts: 0,
        moves_evaluated: result.cells_evaluated,
        time_to_best: start.elapsed(),
        ..SolverStats::default()
    };
    problem.solution_from_assignment(result.assignment, stats)
}

/// Cancellable variant of [`solve_frequency_only`] for the racing portfolio:
/// returns `None` if `cancel` is raised before the DP table completes.
pub fn solve_frequency_only_cancellable(
    problem: &HashingProblem,
    cancel: &AtomicBool,
) -> Option<HashingSolution> {
    let start = Instant::now();
    let result = kmedian_dp_cancellable(
        &problem.frequencies,
        problem.buckets,
        ClusterCost::MeanAbs,
        DpStrategy::DivideAndConquer,
        cancel,
    )?;
    let stats = SolverStats {
        elapsed: start.elapsed(),
        iterations: result.cells_evaluated as usize,
        proven_optimal: true,
        restarts: 0,
        moves_evaluated: result.cells_evaluated,
        time_to_best: start.elapsed(),
        ..SolverStats::default()
    };
    Some(problem.solution_from_assignment(result.assignment, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimal contiguous partition cost for validation.
    fn brute_contiguous(values: &[f64], k: usize, cost: ClusterCost) -> f64 {
        let n = values.len();
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rc = RangeCost::new(&sorted, cost);
        // enumerate all ways to place k-1 boundaries
        fn rec(rc: &RangeCost<'_>, start: usize, n: usize, clusters_left: usize) -> f64 {
            if start == n {
                return 0.0;
            }
            if clusters_left == 1 {
                return rc.range_cost(start, n - 1);
            }
            let mut best = f64::INFINITY;
            for end in start..n {
                let c = rc.range_cost(start, end) + rec(rc, end + 1, n, clusters_left - 1);
                if c < best {
                    best = c;
                }
            }
            best
        }
        rec(&rc, 0, n, k.min(n))
    }

    fn eval_assignment(values: &[f64], assignment: &[usize], k: usize, cost: ClusterCost) -> f64 {
        let mut total = 0.0;
        for j in 0..k {
            let members: Vec<f64> = assignment
                .iter()
                .zip(values)
                .filter(|(&a, _)| a == j)
                .map(|(_, &v)| v)
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut sorted = members.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let center = match cost {
                ClusterCost::MedianAbs => sorted[(sorted.len() - 1) / 2],
                ClusterCost::MeanAbs => sorted.iter().sum::<f64>() / sorted.len() as f64,
            };
            total += sorted.iter().map(|v| (v - center).abs()).sum::<f64>();
        }
        total
    }

    #[test]
    fn trivial_cases() {
        let r = kmedian_dp(&[], 3);
        assert!(r.assignment.is_empty());
        assert_eq!(r.cost, 0.0);

        let r = kmedian_dp(&[5.0], 3);
        assert_eq!(r.assignment, vec![0]);
        assert_eq!(r.cost, 0.0);

        // k >= n: every element its own cluster, zero cost
        let r = kmedian_dp(&[3.0, 1.0, 2.0], 5);
        assert_eq!(r.cost, 0.0);
        assert_eq!(r.clusters_used, 3);
    }

    #[test]
    fn two_well_separated_groups() {
        let values = [1.0, 2.0, 1.5, 100.0, 101.0, 99.5];
        let r = kmedian_dp(&values, 2);
        // elements 0,1,2 together and 3,4,5 together
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[1], r.assignment[2]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_eq!(r.assignment[4], r.assignment[5]);
        assert_ne!(r.assignment[0], r.assignment[3]);
        // cost = |1-1.5|+|2-1.5|+0 + |100-100|... median of {99.5,100,101}=100
        assert!((r.cost - (1.0 + 1.5)).abs() < 1e-9, "cost {}", r.cost);
    }

    #[test]
    fn dp_matches_brute_force_contiguous_median() {
        let cases: Vec<(Vec<f64>, usize)> = vec![
            (vec![1.0, 7.0, 3.0, 9.0, 2.0, 8.0, 2.5], 3),
            (vec![10.0, 10.0, 10.0, 1.0], 2),
            (vec![5.0, 1.0, 9.0, 2.0, 8.0, 3.0, 7.0, 4.0, 6.0], 4),
            (vec![0.0, 0.0, 0.0, 0.0], 2),
            (
                vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0, 5.0],
                5,
            ),
        ];
        for (values, k) in cases {
            let expected = brute_contiguous(&values, k, ClusterCost::MedianAbs);
            for strategy in [DpStrategy::Quadratic, DpStrategy::DivideAndConquer] {
                let r = kmedian_dp_with(&values, k, ClusterCost::MedianAbs, strategy);
                assert!(
                    (r.cost - expected).abs() < 1e-9,
                    "{strategy:?} cost {} vs brute {expected} on {values:?} k={k}",
                    r.cost
                );
                // reported cost must equal the cost of the reported assignment
                let eval = eval_assignment(&values, &r.assignment, k, ClusterCost::MedianAbs);
                assert!((eval - r.cost).abs() < 1e-9, "assignment cost mismatch");
            }
        }
    }

    #[test]
    fn dp_matches_brute_force_contiguous_mean() {
        let cases: Vec<(Vec<f64>, usize)> = vec![
            (vec![1.0, 7.0, 3.0, 9.0, 2.0, 8.0], 2),
            (vec![4.0, 4.5, 100.0, 101.0, 5.0], 2),
            (vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3),
        ];
        for (values, k) in cases {
            let expected = brute_contiguous(&values, k, ClusterCost::MeanAbs);
            let r = kmedian_dp_with(&values, k, ClusterCost::MeanAbs, DpStrategy::Quadratic);
            assert!(
                (r.cost - expected).abs() < 1e-9,
                "cost {} vs brute {expected} on {values:?} k={k}",
                r.cost
            );
        }
    }

    #[test]
    fn quadratic_and_divide_and_conquer_agree_on_random_inputs() {
        let mut state = 42u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        for trial in 0..20 {
            let n = 5 + (trial % 30);
            let values: Vec<f64> = (0..n).map(|_| next()).collect();
            let k = 1 + (trial % 7);
            for cost in [ClusterCost::MedianAbs, ClusterCost::MeanAbs] {
                let q = kmedian_dp_with(&values, k, cost, DpStrategy::Quadratic);
                let d = kmedian_dp_with(&values, k, cost, DpStrategy::DivideAndConquer);
                assert!(
                    (q.cost - d.cost).abs() < 1e-9,
                    "trial {trial} ({cost:?}): quadratic {} vs d&c {}",
                    q.cost,
                    d.cost
                );
            }
        }
    }

    #[test]
    fn clusters_are_contiguous_in_value_order() {
        let values = [9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0];
        let r = kmedian_dp(&values, 3);
        // For each pair of clusters, the max of the lower-indexed cluster must
        // be <= the min of the higher (clusters numbered by value range).
        for a in 0..3 {
            for b in (a + 1)..3 {
                let max_a = values
                    .iter()
                    .zip(&r.assignment)
                    .filter(|(_, &c)| c == a)
                    .map(|(&v, _)| v)
                    .fold(f64::NEG_INFINITY, f64::max);
                let min_b = values
                    .iter()
                    .zip(&r.assignment)
                    .filter(|(_, &c)| c == b)
                    .map(|(&v, _)| v)
                    .fold(f64::INFINITY, f64::min);
                assert!(max_a <= min_b, "clusters {a} and {b} overlap");
            }
        }
    }

    #[test]
    fn solve_frequency_only_wraps_into_solution() {
        let p = HashingProblem::frequency_only(vec![1.0, 1.0, 50.0, 52.0], 2);
        let sol = solve_frequency_only(&p);
        assert!(sol.stats.proven_optimal);
        assert_eq!(sol.assignment[0], sol.assignment[1]);
        assert_eq!(sol.assignment[2], sol.assignment[3]);
        assert_ne!(sol.assignment[0], sol.assignment[2]);
        assert!((sol.estimation_error - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = kmedian_dp(&[1.0], 0);
    }

    #[test]
    fn handles_duplicate_heavy_values() {
        let values = vec![100.0; 50];
        let r = kmedian_dp(&values, 10);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn pruned_quadratic_stays_exact_and_skips_cells() {
        let mut state = 7u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 10_000) as f64 / 100.0
        };
        for trial in 0..15 {
            let n = 20 + (trial % 40);
            let values: Vec<f64> = (0..n).map(|_| next()).collect();
            let k = 2 + (trial % 6);
            for cost in [ClusterCost::MedianAbs, ClusterCost::MeanAbs] {
                let r = kmedian_dp_with(&values, k, cost, DpStrategy::Quadratic);
                let expected = brute_contiguous(&values, k, cost);
                assert!(
                    (r.cost - expected).abs() < 1e-9,
                    "trial {trial} ({cost:?}): pruned {} vs brute {expected}",
                    r.cost
                );
                // The monotonicity break must never evaluate more cells than
                // the unpruned quadratic table holds.
                let unpruned = (n as u64) * (n as u64) * (k as u64);
                assert!(r.cells_evaluated > 0);
                assert!(
                    r.cells_evaluated <= unpruned,
                    "evaluated {} cells, unpruned bound {unpruned}",
                    r.cells_evaluated
                );
            }
        }
    }

    #[test]
    fn cancelled_dp_returns_none() {
        let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let cancel = AtomicBool::new(true);
        let r = kmedian_dp_cancellable(
            &values,
            8,
            ClusterCost::MedianAbs,
            DpStrategy::DivideAndConquer,
            &cancel,
        );
        assert!(r.is_none());

        // An unraised flag must not change the result.
        let cancel = AtomicBool::new(false);
        let live = kmedian_dp_cancellable(
            &values,
            8,
            ClusterCost::MedianAbs,
            DpStrategy::DivideAndConquer,
            &cancel,
        )
        .expect("uncancelled run completes");
        let reference = kmedian_dp(&values, 8);
        assert_eq!(live.assignment, reference.assignment);
        assert!((live.cost - reference.cost).abs() < 1e-12);
    }
}
