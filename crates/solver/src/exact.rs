//! Exact solver for the general `λ` case (the paper's `milp`).
//!
//! The paper solves Problem (1) to optimality by linearizing it into the
//! mixed-integer linear program of Theorem 1 and handing it to Gurobi. This
//! workspace has no commercial MILP solver, so — as documented in DESIGN.md —
//! we solve the *same* problem exactly with a specialized branch-and-bound
//! over element→bucket assignments:
//!
//! * elements are branched on in decreasing order of observed frequency,
//! * a canonical-labeling rule (an element may only open the first unused
//!   bucket) removes bucket-relabeling symmetry, which is the main reason the
//!   naive formulation explodes,
//! * the incumbent is initialized with a multi-start run of the block
//!   coordinate descent heuristic (exactly the warm start the paper suggests
//!   feeding Gurobi),
//! * partial assignments are pruned with the bound
//!   `λ·Σ_j meddev(I_j) + (1−λ)·Σ_j pairdist(I_j)`, where `meddev` is the
//!   absolute deviation from the bucket *median*. Both terms can only grow as
//!   elements are added (the median minimizes absolute deviation, and adding
//!   an element never removes existing pairs), and the final mean-based
//!   estimation error dominates the median-based one, so the bound is valid.
//!
//! Because the returned assignment minimizes the identical objective, it
//! coincides with what the MILP would return (up to ties); the experiments
//! that compare `milp` against `bcd`/`dp` (Figure 2) exercise this solver.

use crate::bcd::{BcdConfig, BcdSolver};
use crate::problem::{HashingProblem, HashingSolution, SolverStats};
use opthash_stream::Features;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Configuration of the exact branch-and-bound solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExactConfig {
    /// Hard cap on the number of search nodes explored; the best incumbent is
    /// returned (flagged as not proven optimal) if the cap is hit.
    pub max_nodes: usize,
    /// Wall-clock limit; same fallback behaviour as `max_nodes`.
    pub time_limit: Duration,
    /// Number of BCD restarts used to build the initial incumbent.
    pub warm_start_restarts: usize,
    /// RNG seed for the warm start.
    pub seed: u64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_nodes: 5_000_000,
            time_limit: Duration::from_secs(60),
            warm_start_restarts: 3,
            seed: 0,
        }
    }
}

/// Exact branch-and-bound solver.
#[derive(Debug, Clone, Default)]
pub struct ExactSolver {
    config: ExactConfig,
}

/// Mutable search state for one bucket.
#[derive(Debug, Clone)]
struct BucketState {
    /// Member element indices.
    members: Vec<usize>,
    /// Member frequencies kept sorted ascending (for the median bound).
    sorted_freqs: Vec<f64>,
    /// Σ pairwise distances over ordered pairs of members.
    similarity: f64,
    /// Median absolute deviation bound of the current members.
    median_dev: f64,
}

impl BucketState {
    fn new() -> Self {
        BucketState {
            members: Vec::new(),
            sorted_freqs: Vec::new(),
            similarity: 0.0,
            median_dev: 0.0,
        }
    }

    fn median_deviation(sorted: &[f64]) -> f64 {
        if sorted.len() < 2 {
            return 0.0;
        }
        let median = sorted[(sorted.len() - 1) / 2];
        sorted.iter().map(|v| (v - median).abs()).sum()
    }

    /// Pushes element `i`, returning the data needed to undo the push.
    fn push(&mut self, i: usize, freq: f64, dist_to_members: f64) -> f64 {
        let old_median_dev = self.median_dev;
        self.members.push(i);
        let pos = self.sorted_freqs.partition_point(|&v| v <= freq);
        self.sorted_freqs.insert(pos, freq);
        self.similarity += 2.0 * dist_to_members;
        self.median_dev = Self::median_deviation(&self.sorted_freqs);
        old_median_dev
    }

    fn pop(&mut self, freq: f64, dist_to_members: f64, old_median_dev: f64) {
        self.members.pop();
        let pos = self.sorted_freqs.partition_point(|&v| v < freq);
        // `pos` points at the first entry == freq (all entries are >= freq
        // from here); remove one occurrence.
        debug_assert!((self.sorted_freqs[pos] - freq).abs() < 1e-12);
        self.sorted_freqs.remove(pos);
        self.similarity -= 2.0 * dist_to_members;
        if self.similarity < 0.0 {
            self.similarity = 0.0;
        }
        self.median_dev = old_median_dev;
    }
}

impl ExactSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: ExactConfig) -> Self {
        ExactSolver { config }
    }

    /// Creates a solver with default limits.
    pub fn with_defaults() -> Self {
        Self::new(ExactConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &ExactConfig {
        &self.config
    }

    /// Solves the problem to optimality (or returns the best incumbent if a
    /// limit is hit; check `stats.proven_optimal`).
    pub fn solve(&self, problem: &HashingProblem) -> HashingSolution {
        assert!(!problem.is_empty(), "cannot solve an empty problem");
        let start = Instant::now();
        let n = problem.len();
        let b = problem.buckets.min(n);
        let lambda = problem.lambda;
        let features: &[Features] = if problem.uses_features() {
            &problem.features
        } else {
            &[]
        };

        // Warm start: multi-start BCD gives the initial incumbent.
        let warm = BcdSolver::new(BcdConfig {
            restarts: self.config.warm_start_restarts.max(1),
            seed: self.config.seed,
            ..BcdConfig::default()
        })
        .solve(problem);
        let mut incumbent_assignment = warm.assignment.clone();
        let mut incumbent_objective = warm.objective;
        let warm_moves = warm.stats.moves_evaluated;
        let mut time_to_best = start.elapsed();

        // Branch on elements in decreasing frequency order: heavy elements
        // constrain the buckets the most, so deciding them early prunes best.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&x, &y| {
            problem.frequencies[y]
                .partial_cmp(&problem.frequencies[x])
                .unwrap()
        });

        let mut buckets: Vec<BucketState> = (0..b).map(|_| BucketState::new()).collect();
        let mut partial = vec![usize::MAX; n];
        let mut nodes = 0usize;
        let mut exhausted = true;

        // Iterative DFS with an explicit stack of (depth, next bucket to try).
        // depth d means elements order[0..d] are assigned.
        struct Frame {
            /// Next bucket index to try at this depth.
            next_bucket: usize,
            /// Number of buckets opened before this depth.
            used_before: usize,
            /// Undo information for the currently applied choice, if any.
            applied: Option<(usize, f64, f64)>, // (bucket, dist, old_median_dev)
        }
        let mut stack: Vec<Frame> = vec![Frame {
            next_bucket: 0,
            used_before: 0,
            applied: None,
        }];

        'search: while let Some(top) = stack.len().checked_sub(1) {
            if nodes >= self.config.max_nodes || start.elapsed() >= self.config.time_limit {
                exhausted = false;
                // Undo everything still applied before leaving.
                while let Some(frame) = stack.pop() {
                    if let Some((j, dist, old_dev)) = frame.applied {
                        let depth = stack.len();
                        let element = order[depth];
                        buckets[j].pop(problem.frequencies[element], dist, old_dev);
                        partial[element] = usize::MAX;
                    }
                }
                break 'search;
            }

            let depth = top;
            let element = order[depth];
            let freq = problem.frequencies[element];

            // Undo the previously applied choice at this depth, if any.
            if let Some((j, dist, old_dev)) = stack[top].applied.take() {
                buckets[j].pop(freq, dist, old_dev);
                partial[element] = usize::MAX;
            }

            // Find the next admissible bucket at this depth.
            let used = stack[top].used_before;
            let allowed_limit = used.min(b - 1); // buckets 0..=used (first unused) are admissible
            let mut chosen: Option<usize> = None;
            while stack[top].next_bucket <= allowed_limit {
                let j = stack[top].next_bucket;
                stack[top].next_bucket += 1;
                // Tentatively compute the bound with `element` in bucket j.
                let dist = if features.is_empty() {
                    0.0
                } else {
                    buckets[j]
                        .members
                        .iter()
                        .map(|&m| features[element].l2_distance(&features[m]))
                        .sum()
                };
                let old_dev = buckets[j].push(element, freq, dist);
                nodes += 1;
                let bound: f64 = buckets
                    .iter()
                    .map(|bk| lambda * bk.median_dev + (1.0 - lambda) * bk.similarity)
                    .sum();
                if bound < incumbent_objective - 1e-9 {
                    chosen = Some(j);
                    stack[top].applied = Some((j, dist, old_dev));
                    partial[element] = j;
                    break;
                }
                // Prune: undo and try the next bucket.
                buckets[j].pop(freq, dist, old_dev);
            }

            match chosen {
                None => {
                    // No admissible bucket left at this depth: backtrack.
                    stack.pop();
                    continue 'search;
                }
                Some(j) => {
                    if depth + 1 == n {
                        // Complete assignment: evaluate the true (mean-based)
                        // objective and update the incumbent.
                        let objective = problem.objective(&partial);
                        if objective < incumbent_objective {
                            incumbent_objective = objective;
                            incumbent_assignment.clone_from(&partial);
                            time_to_best = start.elapsed();
                        }
                        // Stay at this depth; the loop will undo and try the
                        // next bucket for this element.
                        continue 'search;
                    }
                    let used_after = stack[top].used_before.max(j + 1);
                    stack.push(Frame {
                        next_bucket: 0,
                        used_before: used_after,
                        applied: None,
                    });
                }
            }
        }

        let stats = SolverStats {
            elapsed: start.elapsed(),
            iterations: nodes,
            proven_optimal: exhausted,
            restarts: self.config.warm_start_restarts,
            moves_evaluated: warm_moves + nodes as u64,
            time_to_best,
            ..SolverStats::default()
        };
        problem.solution_from_assignment(incumbent_assignment, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use opthash_stream::Features;

    fn random_problem(n: usize, b: usize, lambda: f64, seed: u64) -> HashingProblem {
        let mut state = seed.max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100) as f64
        };
        let frequencies: Vec<f64> = (0..n).map(|_| next()).collect();
        let features: Vec<Features> = (0..n)
            .map(|_| Features::new(vec![next() / 10.0, next() / 10.0]))
            .collect();
        HashingProblem::new(frequencies, features, b, lambda)
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        for seed in 0..6u64 {
            for &lambda in &[0.0, 0.5, 1.0] {
                let p = random_problem(7, 3, lambda, seed + 1);
                let exact = ExactSolver::with_defaults().solve(&p);
                let brute = brute_force(&p);
                assert!(
                    (exact.objective - brute.objective).abs() < 1e-6,
                    "seed {seed} lambda {lambda}: exact {} vs brute {}",
                    exact.objective,
                    brute.objective
                );
                assert!(exact.stats.proven_optimal);
            }
        }
    }

    #[test]
    fn never_worse_than_bcd_warm_start() {
        let p = random_problem(20, 4, 0.6, 9);
        let exact = ExactSolver::new(ExactConfig {
            max_nodes: 200_000,
            ..ExactConfig::default()
        })
        .solve(&p);
        let bcd = BcdSolver::new(BcdConfig {
            restarts: 3,
            seed: 0,
            ..BcdConfig::default()
        })
        .solve(&p);
        assert!(exact.objective <= bcd.objective + 1e-9);
    }

    #[test]
    fn separates_obvious_clusters_optimally() {
        let p = HashingProblem::frequency_only(vec![1.0, 1.0, 2.0, 100.0, 101.0, 100.0], 2);
        let sol = ExactSolver::with_defaults().solve(&p);
        assert_eq!(sol.assignment[0], sol.assignment[1]);
        assert_eq!(sol.assignment[0], sol.assignment[2]);
        assert_eq!(sol.assignment[3], sol.assignment[5]);
        assert_ne!(sol.assignment[0], sol.assignment[3]);
        assert!(sol.stats.proven_optimal);
    }

    #[test]
    fn node_limit_returns_incumbent_without_optimality_claim() {
        let p = random_problem(30, 5, 0.5, 4);
        let sol = ExactSolver::new(ExactConfig {
            max_nodes: 50,
            warm_start_restarts: 1,
            ..ExactConfig::default()
        })
        .solve(&p);
        assert!(!sol.stats.proven_optimal);
        assert_eq!(sol.assignment.len(), 30);
        // still a valid assignment
        assert!(sol.assignment.iter().all(|&j| j < 5));
    }

    #[test]
    fn single_bucket_trivial() {
        let p = HashingProblem::frequency_only(vec![3.0, 9.0], 1);
        let sol = ExactSolver::with_defaults().solve(&p);
        assert_eq!(sol.assignment, vec![0, 0]);
        assert!(sol.stats.proven_optimal);
    }

    #[test]
    fn respects_lambda_zero_feature_clustering() {
        let p = HashingProblem::new(
            vec![7.0, 7.0, 7.0, 7.0],
            vec![
                Features::new(vec![0.0]),
                Features::new(vec![5.0]),
                Features::new(vec![0.2]),
                Features::new(vec![5.2]),
            ],
            2,
            0.0,
        );
        let sol = ExactSolver::with_defaults().solve(&p);
        assert_eq!(sol.assignment[0], sol.assignment[2]);
        assert_eq!(sol.assignment[1], sol.assignment[3]);
        assert_ne!(sol.assignment[0], sol.assignment[1]);
    }

    #[test]
    #[should_panic(expected = "empty problem")]
    fn empty_problem_panics() {
        let p = HashingProblem::frequency_only(vec![], 2);
        let _ = ExactSolver::with_defaults().solve(&p);
    }
}
