//! Block coordinate descent (Algorithm 1 of the paper).
//!
//! The solver maintains, for every bucket `j`, the member set `I_j`, its
//! cardinality `c_j`, mean frequency `μ_j`, estimation error `e_j` and
//! similarity error `s_j`. Each sweep visits the elements in a fresh random
//! permutation; for every element it tentatively removes it from its current
//! bucket, evaluates the objective change of inserting it into each bucket,
//! and greedily commits the best move. Sweeps repeat until the objective
//! improvement drops below a tolerance or an iteration cap is reached, and
//! the whole process can be restarted from multiple initial assignments
//! (Section 4.3).

use crate::kmedian::{kmedian_dp_with, ClusterCost, DpStrategy};
use crate::problem::{HashingProblem, HashingSolution, SolverStats};
use opthash_stream::Features;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How the initial assignment of elements to buckets is produced
/// (Section 4.3 discusses all four options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum InitStrategy {
    /// Uniformly random bucket per element.
    #[default]
    Random,
    /// Sort elements by observed frequency and split them into `b`
    /// equally-sized consecutive chunks.
    SortedSplit,
    /// Give the heaviest elements their own bucket (one each, up to `b − 1`
    /// of them) and spread the rest over the remaining bucket(s) randomly —
    /// the heavy-hitter heuristic.
    HeavyHitter,
    /// Warm-start from the exact `λ = 1` dynamic program (Section 4.4).
    DpWarmStart,
}

/// Configuration of the block coordinate descent solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BcdConfig {
    /// Maximum number of full sweeps over the elements per restart.
    pub max_iterations: usize,
    /// Terminate a restart once the objective improves by less than this.
    pub tolerance: f64,
    /// Initialization strategy.
    pub init: InitStrategy,
    /// Number of independent restarts; the best solution is returned.
    pub restarts: usize,
    /// RNG seed (restart `r` uses `seed + r`).
    pub seed: u64,
    /// Request warm-starting from an incumbent assignment where one is
    /// available: callers that hold a previous [`HashingSolution`] (the
    /// online re-trainer in `opthash-engine`) route through
    /// [`BcdSolver::solve_warm`] when this is set, seeding restart 0 with the
    /// incumbent instead of the configured [`InitStrategy`]. Plain
    /// [`BcdSolver::solve`] ignores the flag (it has no incumbent).
    pub warm_start: bool,
}

impl Default for BcdConfig {
    fn default() -> Self {
        BcdConfig {
            max_iterations: 50,
            tolerance: 1e-6,
            init: InitStrategy::Random,
            restarts: 1,
            seed: 0,
            warm_start: false,
        }
    }
}

impl BcdConfig {
    /// Returns the configuration with [`BcdConfig::warm_start`] enabled.
    pub fn with_warm_start(mut self) -> Self {
        self.warm_start = true;
        self
    }
}

/// Block coordinate descent solver for [`HashingProblem`].
#[derive(Debug, Clone)]
pub struct BcdSolver {
    config: BcdConfig,
}

/// Incremental per-bucket state.
#[derive(Debug, Clone)]
struct Bucket {
    members: Vec<usize>,
    sum_frequency: f64,
    estimation_error: f64,
    similarity_error: f64,
}

impl Bucket {
    fn new() -> Self {
        Bucket {
            members: Vec::new(),
            sum_frequency: 0.0,
            estimation_error: 0.0,
            similarity_error: 0.0,
        }
    }

    fn mean(&self) -> f64 {
        if self.members.is_empty() {
            0.0
        } else {
            self.sum_frequency / self.members.len() as f64
        }
    }

    /// Recomputes the estimation error from scratch (O(|I_j|)).
    fn recompute_estimation_error(&mut self, frequencies: &[f64]) {
        let mean = self.mean();
        self.estimation_error = self
            .members
            .iter()
            .map(|&i| (frequencies[i] - mean).abs())
            .sum();
    }

    /// Estimation error the bucket *would* have with `candidate` inserted.
    fn estimation_error_with(&self, candidate: usize, frequencies: &[f64]) -> f64 {
        let count = self.members.len() as f64 + 1.0;
        let mean = (self.sum_frequency + frequencies[candidate]) / count;
        let mut err = (frequencies[candidate] - mean).abs();
        for &i in &self.members {
            err += (frequencies[i] - mean).abs();
        }
        err
    }

    /// Sum of distances from `candidate` to every current member.
    fn distance_to_members(&self, candidate: usize, features: &[Features]) -> f64 {
        if features.is_empty() {
            return 0.0;
        }
        self.members
            .iter()
            .map(|&i| features[candidate].l2_distance(&features[i]))
            .sum()
    }

    fn insert(&mut self, element: usize, frequencies: &[f64], dist_sum: f64) {
        self.members.push(element);
        self.sum_frequency += frequencies[element];
        self.similarity_error += 2.0 * dist_sum;
        self.recompute_estimation_error(frequencies);
    }

    fn remove(&mut self, element: usize, frequencies: &[f64], dist_sum: f64) {
        let pos = self
            .members
            .iter()
            .position(|&i| i == element)
            .expect("element must be a member of the bucket it is removed from");
        self.members.swap_remove(pos);
        self.sum_frequency -= frequencies[element];
        self.similarity_error -= 2.0 * dist_sum;
        if self.similarity_error < 0.0 {
            // guard against floating-point drift below zero
            self.similarity_error = 0.0;
        }
        self.recompute_estimation_error(frequencies);
    }

    fn objective(&self, lambda: f64) -> f64 {
        lambda * self.estimation_error + (1.0 - lambda) * self.similarity_error
    }
}

impl BcdSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: BcdConfig) -> Self {
        BcdSolver { config }
    }

    /// Creates a solver with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(BcdConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &BcdConfig {
        &self.config
    }

    /// Produces an initial assignment according to the configured strategy.
    pub fn initial_assignment(&self, problem: &HashingProblem, rng: &mut StdRng) -> Vec<usize> {
        let n = problem.len();
        let b = problem.buckets;
        match self.config.init {
            InitStrategy::Random => (0..n).map(|_| rng.gen_range(0..b)).collect(),
            InitStrategy::SortedSplit => {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&x, &y| {
                    problem.frequencies[x]
                        .partial_cmp(&problem.frequencies[y])
                        .unwrap()
                });
                let chunk = n.div_ceil(b).max(1);
                let mut assignment = vec![0usize; n];
                for (rank, &i) in order.iter().enumerate() {
                    assignment[i] = (rank / chunk).min(b - 1);
                }
                assignment
            }
            InitStrategy::HeavyHitter => {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&x, &y| {
                    problem.frequencies[y]
                        .partial_cmp(&problem.frequencies[x])
                        .unwrap()
                });
                let own_buckets = (b - 1).min(n);
                let mut assignment = vec![0usize; n];
                for (rank, &i) in order.iter().enumerate() {
                    if rank < own_buckets {
                        assignment[i] = rank;
                    } else if own_buckets < b {
                        assignment[i] = rng.gen_range(own_buckets..b);
                    } else {
                        assignment[i] = rng.gen_range(0..b);
                    }
                }
                assignment
            }
            InitStrategy::DpWarmStart => {
                kmedian_dp_with(
                    &problem.frequencies,
                    b,
                    // Use the mean-absolute-deviation cost so the warm start is
                    // exactly the solution `solve_frequency_only` would return.
                    ClusterCost::MeanAbs,
                    DpStrategy::DivideAndConquer,
                )
                .assignment
            }
        }
    }

    /// Runs block coordinate descent and returns the best solution across
    /// restarts.
    pub fn solve(&self, problem: &HashingProblem) -> HashingSolution {
        self.solve_inner(problem, None)
    }

    /// Runs block coordinate descent warm-started from `initial`: restart 0
    /// descends from the given assignment (bucket indices are clamped into
    /// the problem's range, so an incumbent solved for more buckets still
    /// seeds legally) and any further restarts use the configured
    /// [`InitStrategy`] as usual. `initial` must have one entry per problem
    /// element — callers re-solving after the element set changed map their
    /// incumbent onto the new universe first.
    pub fn solve_from(&self, problem: &HashingProblem, initial: &[usize]) -> HashingSolution {
        assert_eq!(
            initial.len(),
            problem.len(),
            "warm-start assignment must cover every element"
        );
        let clamped: Vec<usize> = initial
            .iter()
            .map(|&j| j.min(problem.buckets - 1))
            .collect();
        self.solve_inner(problem, Some(clamped))
    }

    /// Runs block coordinate descent warm-started from an incumbent
    /// [`HashingSolution`] over the same element set (the re-training path:
    /// frequencies drifted, the universe did not).
    pub fn solve_warm(
        &self,
        problem: &HashingProblem,
        incumbent: &HashingSolution,
    ) -> HashingSolution {
        self.solve_from(problem, &incumbent.assignment)
    }

    fn solve_inner(&self, problem: &HashingProblem, warm: Option<Vec<usize>>) -> HashingSolution {
        assert!(!problem.is_empty(), "cannot solve an empty problem");
        let start = Instant::now();
        let warm_started = warm.is_some();
        let mut warm = warm;
        let mut best: Option<(Vec<usize>, f64, Vec<f64>)> = None;
        let mut total_sweeps = 0usize;
        let restarts = self.config.restarts.max(1);
        for restart in 0..restarts {
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(restart as u64));
            let assignment = match warm.take() {
                // Restart 0 descends from the caller's incumbent.
                Some(initial) => initial,
                None => self.initial_assignment(problem, &mut rng),
            };
            let (assignment, objective, trajectory) = self.descend(problem, assignment, &mut rng);
            total_sweeps += trajectory.len().saturating_sub(1);
            if best.as_ref().map_or(true, |(_, obj, _)| objective < *obj) {
                best = Some((assignment, objective, trajectory));
            }
        }
        let (assignment, _, trajectory) = best.expect("at least one restart runs");
        let stats = SolverStats {
            elapsed: start.elapsed(),
            iterations: total_sweeps,
            proven_optimal: false,
            restarts,
            initial_objective: trajectory.first().copied().unwrap_or(0.0),
            cost_trajectory: trajectory,
            warm_started,
        };
        problem.solution_from_assignment(assignment, stats)
    }

    /// One descent run from a given initial assignment. Returns the final
    /// assignment, its objective and the objective trajectory: entry 0 is the
    /// initial objective, entry `s` the objective after sweep `s`.
    fn descend(
        &self,
        problem: &HashingProblem,
        mut assignment: Vec<usize>,
        rng: &mut StdRng,
    ) -> (Vec<usize>, f64, Vec<f64>) {
        let n = problem.len();
        let b = problem.buckets;
        let lambda = problem.lambda;
        let frequencies = &problem.frequencies;
        let features: &[Features] = if problem.uses_features() {
            &problem.features
        } else {
            &[]
        };

        // Build bucket state from the initial assignment.
        let mut buckets: Vec<Bucket> = (0..b).map(|_| Bucket::new()).collect();
        for (i, &j) in assignment.iter().enumerate() {
            let dist = buckets[j].distance_to_members(i, features);
            buckets[j].insert(i, frequencies, dist);
        }
        let mut objective: f64 = buckets.iter().map(|bk| bk.objective(lambda)).sum();
        let mut trajectory = vec![objective];

        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..self.config.max_iterations {
            order.shuffle(rng);
            for &i in &order {
                let current = assignment[i];
                // Remove i from its bucket. `distance_to_members` still counts
                // i itself, but its self-distance is 0, so the value equals the
                // distance to the *other* members — exactly what the
                // similarity-error update needs.
                let dist_current = buckets[current].distance_to_members(i, features);
                buckets[current].remove(i, frequencies, dist_current);

                // Evaluate the insertion cost into every bucket.
                let mut best_bucket = current;
                let mut best_delta = f64::INFINITY;
                for (j, bucket) in buckets.iter().enumerate() {
                    let est_with = bucket.estimation_error_with(i, frequencies);
                    let est_delta = est_with - bucket.estimation_error;
                    let dist = bucket.distance_to_members(i, features);
                    let sim_delta = 2.0 * dist;
                    let delta = lambda * est_delta + (1.0 - lambda) * sim_delta;
                    if delta < best_delta {
                        best_delta = delta;
                        best_bucket = j;
                    }
                }

                let dist_best = buckets[best_bucket].distance_to_members(i, features);
                buckets[best_bucket].insert(i, frequencies, dist_best);
                assignment[i] = best_bucket;
            }
            let new_objective: f64 = buckets.iter().map(|bk| bk.objective(lambda)).sum();
            let improvement = objective - new_objective;
            objective = new_objective;
            trajectory.push(objective);
            if improvement < self.config.tolerance {
                break;
            }
        }
        (assignment, objective, trajectory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmedian::solve_frequency_only;
    use opthash_stream::Features;

    fn clustered_problem(lambda: f64) -> HashingProblem {
        // Two frequency groups and two feature groups that coincide.
        let frequencies = vec![1.0, 2.0, 1.5, 100.0, 101.0, 99.0];
        let features = vec![
            Features::new(vec![0.0, 0.0]),
            Features::new(vec![0.2, 0.1]),
            Features::new(vec![0.1, 0.3]),
            Features::new(vec![10.0, 10.0]),
            Features::new(vec![10.2, 9.9]),
            Features::new(vec![9.8, 10.1]),
        ];
        HashingProblem::new(frequencies, features, 2, lambda)
    }

    #[test]
    fn recovers_obvious_two_cluster_structure() {
        for &lambda in &[0.0, 0.5, 1.0] {
            let p = clustered_problem(lambda);
            let sol = BcdSolver::with_defaults().solve(&p);
            assert_eq!(sol.assignment[0], sol.assignment[1]);
            assert_eq!(sol.assignment[1], sol.assignment[2]);
            assert_eq!(sol.assignment[3], sol.assignment[4]);
            assert_eq!(sol.assignment[4], sol.assignment[5]);
            assert_ne!(sol.assignment[0], sol.assignment[3], "lambda={lambda}");
        }
    }

    #[test]
    fn objective_never_worse_than_initial_assignment() {
        let p = clustered_problem(0.5);
        let solver = BcdSolver::with_defaults();
        let mut rng = StdRng::seed_from_u64(3);
        let init = solver.initial_assignment(&p, &mut rng);
        let init_obj = p.objective(&init);
        let sol = solver.solve(&p);
        assert!(
            sol.objective <= init_obj + 1e-9,
            "bcd {} worse than init {init_obj}",
            sol.objective
        );
    }

    #[test]
    fn lambda_one_is_close_to_dp_optimum() {
        let frequencies: Vec<f64> = vec![
            1.0, 2.0, 3.0, 2.0, 1.0, 50.0, 52.0, 49.0, 51.0, 100.0, 101.0, 99.0, 10.0, 11.0, 9.0,
        ];
        let p = HashingProblem::frequency_only(frequencies, 4);
        let dp = solve_frequency_only(&p);
        let bcd = BcdSolver::new(BcdConfig {
            restarts: 5,
            ..BcdConfig::default()
        })
        .solve(&p);
        assert!(
            bcd.estimation_error <= dp.estimation_error * 1.10 + 1e-9,
            "bcd {} far above dp optimum {}",
            bcd.estimation_error,
            dp.estimation_error
        );
        assert!(bcd.estimation_error + 1e-9 >= dp.estimation_error * 0.9);
    }

    #[test]
    fn all_init_strategies_produce_valid_assignments() {
        let p = clustered_problem(0.7);
        for init in [
            InitStrategy::Random,
            InitStrategy::SortedSplit,
            InitStrategy::HeavyHitter,
            InitStrategy::DpWarmStart,
        ] {
            let solver = BcdSolver::new(BcdConfig {
                init,
                ..BcdConfig::default()
            });
            let mut rng = StdRng::seed_from_u64(1);
            let a = solver.initial_assignment(&p, &mut rng);
            assert_eq!(a.len(), p.len());
            assert!(a.iter().all(|&j| j < p.buckets), "{init:?} out of range");
            let sol = solver.solve(&p);
            assert_eq!(sol.assignment.len(), p.len());
        }
    }

    #[test]
    fn heavy_hitter_init_isolates_heaviest_elements() {
        let frequencies = vec![1.0, 2.0, 3.0, 1000.0, 900.0];
        let p = HashingProblem::frequency_only(frequencies, 3);
        let solver = BcdSolver::new(BcdConfig {
            init: InitStrategy::HeavyHitter,
            ..BcdConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let a = solver.initial_assignment(&p, &mut rng);
        // heaviest two get buckets 0 and 1, the rest go to bucket 2
        assert_eq!(a[3], 0);
        assert_eq!(a[4], 1);
        for &light in &a[0..3] {
            assert_eq!(light, 2);
        }
    }

    #[test]
    fn sorted_split_init_balances_bucket_sizes() {
        let frequencies: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let p = HashingProblem::frequency_only(frequencies, 3);
        let solver = BcdSolver::new(BcdConfig {
            init: InitStrategy::SortedSplit,
            ..BcdConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let a = solver.initial_assignment(&p, &mut rng);
        let mut sizes = vec![0usize; 3];
        for &j in &a {
            sizes[j] += 1;
        }
        assert_eq!(sizes, vec![4, 4, 4]);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = clustered_problem(0.5);
        let cfg = BcdConfig {
            seed: 99,
            ..BcdConfig::default()
        };
        let a = BcdSolver::new(cfg).solve(&p);
        let b = BcdSolver::new(cfg).solve(&p);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn multiple_restarts_never_hurt() {
        let p = clustered_problem(0.5);
        let single = BcdSolver::new(BcdConfig {
            restarts: 1,
            seed: 7,
            ..BcdConfig::default()
        })
        .solve(&p);
        let multi = BcdSolver::new(BcdConfig {
            restarts: 5,
            seed: 7,
            ..BcdConfig::default()
        })
        .solve(&p);
        assert!(multi.objective <= single.objective + 1e-9);
        assert_eq!(multi.stats.restarts, 5);
    }

    #[test]
    fn single_bucket_puts_everything_together() {
        let p = HashingProblem::frequency_only(vec![1.0, 5.0, 9.0], 1);
        let sol = BcdSolver::with_defaults().solve(&p);
        assert_eq!(sol.assignment, vec![0, 0, 0]);
        // est error = |1-5|+|5-5|+|9-5| = 8
        assert!((sol.estimation_error - 8.0).abs() < 1e-9);
    }

    #[test]
    fn solve_populates_trajectory_stats() {
        let p = clustered_problem(0.5);
        let sol = BcdSolver::with_defaults().solve(&p);
        assert!(!sol.stats.warm_started);
        // restarts = 1, so the winning trajectory accounts for every sweep.
        assert_eq!(sol.stats.cost_trajectory.len(), sol.stats.iterations + 1);
        assert_eq!(sol.stats.initial_objective, sol.stats.cost_trajectory[0]);
        let last = *sol.stats.cost_trajectory.last().unwrap();
        assert!(
            (last - sol.objective).abs() < 1e-6,
            "trajectory end {last} vs objective {}",
            sol.objective
        );
        for pair in sol.stats.cost_trajectory.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-9,
                "descent must not increase the objective"
            );
        }
    }

    #[test]
    fn solve_from_clamps_out_of_range_buckets() {
        let p = clustered_problem(0.5);
        let incumbent = vec![7usize; p.len()]; // solved for more buckets than p has
        let sol = BcdSolver::with_defaults().solve_from(&p, &incumbent);
        assert!(sol.stats.warm_started);
        assert!(sol.assignment.iter().all(|&j| j < p.buckets));
    }

    #[test]
    fn warm_start_from_optimum_converges_in_one_sweep() {
        let p = clustered_problem(1.0);
        let cold = BcdSolver::new(BcdConfig {
            restarts: 4,
            ..BcdConfig::default()
        })
        .solve(&p);
        let warm = BcdSolver::with_defaults().solve_warm(&p, &cold);
        assert!(warm.stats.warm_started);
        assert_eq!(warm.stats.iterations, 1, "no move should survive one sweep");
        assert!(warm.objective <= cold.objective + 1e-9);
        assert_eq!(warm.stats.initial_objective, cold.objective);
    }

    #[test]
    #[should_panic(expected = "cover every element")]
    fn solve_from_rejects_wrong_length() {
        let p = clustered_problem(0.5);
        let _ = BcdSolver::with_defaults().solve_from(&p, &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "empty problem")]
    fn empty_problem_panics() {
        let p = HashingProblem::frequency_only(vec![], 2);
        let _ = BcdSolver::with_defaults().solve(&p);
    }

    #[test]
    fn more_buckets_never_increase_optimal_objective() {
        let frequencies: Vec<f64> = vec![3.0, 8.0, 1.0, 9.0, 4.0, 7.0, 2.0, 6.0];
        let mut last = f64::INFINITY;
        for b in 1..=4 {
            let p = HashingProblem::frequency_only(frequencies.clone(), b);
            let sol = BcdSolver::new(BcdConfig {
                restarts: 8,
                ..BcdConfig::default()
            })
            .solve(&p);
            assert!(
                sol.objective <= last + 1e-9,
                "objective should not grow with more buckets"
            );
            last = sol.objective;
        }
    }
}
