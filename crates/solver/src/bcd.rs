//! Block coordinate descent (Algorithm 1 of the paper).
//!
//! Each sweep visits the elements in a fresh random permutation; for every
//! element it evaluates the objective change of moving it into each bucket
//! against the incrementally maintained bucket statistics of
//! [`crate::incremental::IncrementalObjective`] (`O(log |I_j|)` per
//! candidate instead of a from-scratch recompute) and greedily commits the
//! best strictly-improving move. Sweeps repeat until the objective
//! improvement drops below a tolerance or an iteration cap is reached, and
//! the whole process can be restarted from multiple initial assignments
//! (Section 4.3).
//!
//! Multi-start runs are managed SAT-solver style: a calibrated fast/slow EMA
//! pair ([`crate::progress::Ema2`]) tracks how fast the per-sweep improvement
//! of each descent is decaying (its geometric decay ratio), and restarts
//! that have no realistic chance of catching the
//! incumbent — their projected remaining improvement cannot close the gap —
//! are aborted early. The sweep budget they free is reallocated to the
//! incumbent (its descent continues if it had run out of budget before
//! converging), and every abort decision is recorded in
//! [`SolverStats::restarts_aborted`]. Restart 0 never aborts, so a
//! multi-start solve is never worse than the single-start solve with the
//! same seed.

use crate::incremental::{IncrementalObjective, PairwiseDistances, PAIR_CACHE_LIMIT};
use crate::kmedian::{kmedian_dp_with, ClusterCost, DpStrategy};
use crate::problem::{HashingProblem, HashingSolution, SolverStats};
use crate::progress::Ema2;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Fast EMA window (sweeps) for the stagnation check.
const EMA_FAST_WINDOW: usize = 3;
/// Slow EMA window (sweeps) for the stagnation check.
const EMA_SLOW_WINDOW: usize = 12;

/// How the initial assignment of elements to buckets is produced
/// (Section 4.3 discusses all four options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum InitStrategy {
    /// Uniformly random bucket per element.
    #[default]
    Random,
    /// Sort elements by observed frequency and split them into `b`
    /// equally-sized consecutive chunks.
    SortedSplit,
    /// Give the heaviest elements their own bucket (one each, up to `b − 1`
    /// of them) and spread the rest over the remaining bucket(s) randomly —
    /// the heavy-hitter heuristic.
    HeavyHitter,
    /// Warm-start from the exact `λ = 1` dynamic program (Section 4.4).
    DpWarmStart,
}

/// Configuration of the block coordinate descent solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BcdConfig {
    /// Maximum number of full sweeps over the elements per restart.
    pub max_iterations: usize,
    /// Terminate a restart once the objective improves by less than this.
    pub tolerance: f64,
    /// Initialization strategy.
    pub init: InitStrategy,
    /// Number of independent restarts; the best solution is returned.
    pub restarts: usize,
    /// RNG seed (restart `r` uses `seed + r`).
    pub seed: u64,
    /// Request warm-starting from an incumbent assignment where one is
    /// available: callers that hold a previous [`HashingSolution`] (the
    /// online re-trainer in `opthash-engine`) route through
    /// [`BcdSolver::solve_warm`] when this is set, seeding restart 0 with the
    /// incumbent instead of the configured [`InitStrategy`]. Plain
    /// [`BcdSolver::solve`] ignores the flag (it has no incumbent).
    pub warm_start: bool,
    /// Minimum number of sweeps a restart must run before the EMA stagnation
    /// check may abort it. Restart 0 (no incumbent to compare against) never
    /// aborts; `usize::MAX` disables early aborts entirely.
    pub abort_after: usize,
}

impl Default for BcdConfig {
    fn default() -> Self {
        BcdConfig {
            max_iterations: 50,
            tolerance: 1e-6,
            init: InitStrategy::Random,
            restarts: 1,
            seed: 0,
            warm_start: false,
            abort_after: 3,
        }
    }
}

impl BcdConfig {
    /// Returns the configuration with [`BcdConfig::warm_start`] enabled.
    pub fn with_warm_start(mut self) -> Self {
        self.warm_start = true;
        self
    }

    /// Returns the configuration with EMA early-aborts disabled.
    pub fn without_aborts(mut self) -> Self {
        self.abort_after = usize::MAX;
        self
    }
}

/// Block coordinate descent solver for [`HashingProblem`].
#[derive(Debug, Clone)]
pub struct BcdSolver {
    config: BcdConfig,
}

/// Per-descent control knobs (internal).
struct DescendControl<'c> {
    /// Sweep budget of this descent.
    max_sweeps: usize,
    /// Cooperative cancellation flag, checked at every sweep boundary.
    cancel: Option<&'c AtomicBool>,
    /// Objective of the incumbent this descent must plausibly beat;
    /// `None` disables the stagnation abort.
    abort_against: Option<f64>,
    /// Minimum sweeps before the abort check may fire.
    abort_after: usize,
    /// Pairwise feature distances shared across the restarts of one solve
    /// (`None` for frequency-only problems or very large `n`).
    pairs: Option<&'c PairwiseDistances>,
}

/// Result of one descent run (internal).
struct DescentResult {
    assignment: Vec<usize>,
    objective: f64,
    /// Entry 0 is the initial objective, entry `s` the objective after
    /// sweep `s`.
    trajectory: Vec<f64>,
    moves_evaluated: u64,
    sweeps: usize,
    /// Ended because the improvement dropped below the tolerance.
    converged: bool,
    /// Ended because the EMA stagnation check fired.
    aborted: bool,
    /// Ended because the cancellation flag was raised.
    cancelled: bool,
}

/// Aggregate outcome of a block of restarts (crate-internal; the portfolio
/// solver races several of these).
pub(crate) struct RestartsOutcome {
    pub(crate) assignment: Vec<usize>,
    pub(crate) objective: f64,
    pub(crate) trajectory: Vec<f64>,
    pub(crate) total_sweeps: usize,
    pub(crate) moves_evaluated: u64,
    pub(crate) restarts_aborted: usize,
    pub(crate) restarts_run: usize,
    pub(crate) time_to_best: Duration,
}

struct BestState {
    assignment: Vec<usize>,
    objective: f64,
    trajectory: Vec<f64>,
    converged: bool,
}

impl BcdSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: BcdConfig) -> Self {
        BcdSolver { config }
    }

    /// Creates a solver with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(BcdConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &BcdConfig {
        &self.config
    }

    /// Produces an initial assignment according to the configured strategy.
    pub fn initial_assignment(&self, problem: &HashingProblem, rng: &mut StdRng) -> Vec<usize> {
        let n = problem.len();
        let b = problem.buckets;
        match self.config.init {
            InitStrategy::Random => (0..n).map(|_| rng.gen_range(0..b)).collect(),
            InitStrategy::SortedSplit => {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&x, &y| {
                    problem.frequencies[x]
                        .partial_cmp(&problem.frequencies[y])
                        .unwrap()
                });
                let chunk = n.div_ceil(b).max(1);
                let mut assignment = vec![0usize; n];
                for (rank, &i) in order.iter().enumerate() {
                    assignment[i] = (rank / chunk).min(b - 1);
                }
                assignment
            }
            InitStrategy::HeavyHitter => {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&x, &y| {
                    problem.frequencies[y]
                        .partial_cmp(&problem.frequencies[x])
                        .unwrap()
                });
                let own_buckets = (b - 1).min(n);
                let mut assignment = vec![0usize; n];
                for (rank, &i) in order.iter().enumerate() {
                    if rank < own_buckets {
                        assignment[i] = rank;
                    } else if own_buckets < b {
                        assignment[i] = rng.gen_range(own_buckets..b);
                    } else {
                        assignment[i] = rng.gen_range(0..b);
                    }
                }
                assignment
            }
            InitStrategy::DpWarmStart => {
                kmedian_dp_with(
                    &problem.frequencies,
                    b,
                    // Use the mean-absolute-deviation cost so the warm start is
                    // exactly the solution `solve_frequency_only` would return.
                    ClusterCost::MeanAbs,
                    DpStrategy::DivideAndConquer,
                )
                .assignment
            }
        }
    }

    /// Runs block coordinate descent and returns the best solution across
    /// restarts.
    pub fn solve(&self, problem: &HashingProblem) -> HashingSolution {
        self.solve_inner(problem, None, None)
    }

    /// Runs block coordinate descent warm-started from `initial`: restart 0
    /// descends from the given assignment (bucket indices are clamped into
    /// the problem's range, so an incumbent solved for more buckets still
    /// seeds legally) and any further restarts use the configured
    /// [`InitStrategy`] as usual. `initial` must have one entry per problem
    /// element — callers re-solving after the element set changed map their
    /// incumbent onto the new universe first.
    pub fn solve_from(&self, problem: &HashingProblem, initial: &[usize]) -> HashingSolution {
        self.solve_inner(problem, Some(Self::clamp_warm(problem, initial)), None)
    }

    /// Runs block coordinate descent warm-started from an incumbent
    /// [`HashingSolution`] over the same element set (the re-training path:
    /// frequencies drifted, the universe did not).
    pub fn solve_warm(
        &self,
        problem: &HashingProblem,
        incumbent: &HashingSolution,
    ) -> HashingSolution {
        self.solve_from(problem, &incumbent.assignment)
    }

    /// Like [`BcdSolver::solve`] / [`BcdSolver::solve_from`] but
    /// cooperatively cancellable: the descent checks `cancel` at every sweep
    /// boundary and returns its best-so-far solution as soon as the flag is
    /// raised. This is the entry point the racing
    /// [`crate::portfolio::PortfolioSolver`] uses for its BCD workers.
    pub fn solve_cancellable(
        &self,
        problem: &HashingProblem,
        warm: Option<&[usize]>,
        cancel: &AtomicBool,
    ) -> HashingSolution {
        self.solve_inner(
            problem,
            warm.map(|initial| Self::clamp_warm(problem, initial)),
            Some(cancel),
        )
    }

    pub(crate) fn clamp_warm(problem: &HashingProblem, initial: &[usize]) -> Vec<usize> {
        assert_eq!(
            initial.len(),
            problem.len(),
            "warm-start assignment must cover every element"
        );
        initial
            .iter()
            .map(|&j| j.min(problem.buckets - 1))
            .collect()
    }

    fn solve_inner(
        &self,
        problem: &HashingProblem,
        warm: Option<Vec<usize>>,
        cancel: Option<&AtomicBool>,
    ) -> HashingSolution {
        assert!(!problem.is_empty(), "cannot solve an empty problem");
        let start = Instant::now();
        let warm_started = warm.is_some();
        let restarts = self.config.restarts.max(1);
        let outcome = self.run_restarts(problem, warm, 0..restarts, cancel, true);
        let stats = SolverStats {
            elapsed: start.elapsed(),
            iterations: outcome.total_sweeps,
            proven_optimal: false,
            restarts,
            initial_objective: outcome.trajectory.first().copied().unwrap_or(0.0),
            cost_trajectory: outcome.trajectory,
            warm_started,
            moves_evaluated: outcome.moves_evaluated,
            restarts_aborted: outcome.restarts_aborted,
            time_to_best: outcome.time_to_best,
        };
        problem.solution_from_assignment(outcome.assignment, stats)
    }

    /// Runs the restarts `range` (restart `r` seeds its RNG with
    /// `seed + r`, so any partition of the full range across workers visits
    /// the same initial assignments as a sequential run). `warm` seeds the
    /// first restart of the range. With `allow_abort`, restarts after the
    /// first may be EMA-aborted and their leftover budget continues the
    /// incumbent's descent; the portfolio workers disable it so a raced
    /// partition is never worse than the same restarts run sequentially.
    pub(crate) fn run_restarts(
        &self,
        problem: &HashingProblem,
        mut warm: Option<Vec<usize>>,
        range: Range<usize>,
        cancel: Option<&AtomicBool>,
        allow_abort: bool,
    ) -> RestartsOutcome {
        let start = Instant::now();
        let mut best: Option<BestState> = None;
        let mut total_sweeps = 0usize;
        let mut moves_evaluated = 0u64;
        let mut restarts_aborted = 0usize;
        let mut restarts_run = 0usize;
        let mut budget_pool = 0usize;
        let mut time_to_best = Duration::ZERO;
        let mut cancelled = false;
        // Pairwise feature distances are assignment-independent: build them
        // once and share them across every restart of this solve.
        let pairs = (problem.uses_features() && problem.len() <= PAIR_CACHE_LIMIT)
            .then(|| PairwiseDistances::new(problem));

        for restart in range.clone() {
            // Always run at least one descent so there is a result to return,
            // even if the cancellation flag was raised before we started.
            if restart != range.start {
                if let Some(flag) = cancel {
                    if flag.load(Ordering::Relaxed) {
                        cancelled = true;
                        break;
                    }
                }
            }
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(restart as u64));
            let assignment = match warm.take() {
                // The first restart of the range descends from the incumbent.
                Some(initial) => initial,
                None => self.initial_assignment(problem, &mut rng),
            };
            let abort_against = if allow_abort {
                best.as_ref().map(|b| b.objective)
            } else {
                None
            };
            let result = self.descend(
                problem,
                assignment,
                &mut rng,
                DescendControl {
                    max_sweeps: self.config.max_iterations,
                    cancel,
                    abort_against,
                    abort_after: self.config.abort_after,
                    pairs: pairs.as_ref(),
                },
            );
            restarts_run += 1;
            total_sweeps += result.sweeps;
            moves_evaluated += result.moves_evaluated;
            if result.aborted {
                restarts_aborted += 1;
                budget_pool += self.config.max_iterations.saturating_sub(result.sweeps);
            }
            if result.cancelled {
                cancelled = true;
            }
            if best
                .as_ref()
                .map_or(true, |b| result.objective < b.objective)
            {
                time_to_best = start.elapsed();
                best = Some(BestState {
                    assignment: result.assignment,
                    objective: result.objective,
                    trajectory: result.trajectory,
                    converged: result.converged,
                });
            }
            if cancelled {
                break;
            }
        }

        // Reallocate the budget freed by aborted restarts to the incumbent:
        // if its descent ran out of sweeps before converging, let it continue.
        if allow_abort && budget_pool > 0 && !cancelled {
            if let Some(incumbent) = best.take() {
                if incumbent.converged {
                    best = Some(incumbent);
                } else {
                    let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9e37_79b9_7f4a_7c15);
                    let result = self.descend(
                        problem,
                        incumbent.assignment,
                        &mut rng,
                        DescendControl {
                            max_sweeps: budget_pool,
                            cancel,
                            abort_against: None,
                            abort_after: usize::MAX,
                            pairs: pairs.as_ref(),
                        },
                    );
                    total_sweeps += result.sweeps;
                    moves_evaluated += result.moves_evaluated;
                    let mut trajectory = incumbent.trajectory;
                    trajectory.extend_from_slice(&result.trajectory[1..]);
                    if result.objective < incumbent.objective {
                        time_to_best = start.elapsed();
                    }
                    best = Some(BestState {
                        assignment: result.assignment,
                        objective: result.objective,
                        trajectory,
                        converged: result.converged,
                    });
                }
            }
        }

        let best = best.expect("at least one restart runs");
        RestartsOutcome {
            assignment: best.assignment,
            objective: best.objective,
            trajectory: best.trajectory,
            total_sweeps,
            moves_evaluated,
            restarts_aborted,
            restarts_run,
            time_to_best,
        }
    }

    /// One descent run from a given initial assignment.
    fn descend(
        &self,
        problem: &HashingProblem,
        assignment: Vec<usize>,
        rng: &mut StdRng,
        control: DescendControl<'_>,
    ) -> DescentResult {
        let n = problem.len();
        let mut inc = IncrementalObjective::with_pair_distances(problem, assignment, control.pairs);
        let mut objective = inc.objective();
        let mut trajectory = vec![objective];
        let mut order: Vec<usize> = (0..n).collect();
        let mut ema = Ema2::new(EMA_FAST_WINDOW, EMA_SLOW_WINDOW);
        let mut prev_improvement: Option<f64> = None;
        let mut sweeps = 0usize;
        let mut converged = false;
        let mut aborted = false;
        let mut cancelled = false;

        for sweep in 0..control.max_sweeps {
            if let Some(flag) = control.cancel {
                if flag.load(Ordering::Relaxed) {
                    cancelled = true;
                    break;
                }
            }
            order.shuffle(rng);
            for &i in &order {
                let (bucket, _delta) = inc.best_move(i);
                // Commit whenever the cheapest re-insertion bucket differs
                // from the current one — including zero-delta plateau moves,
                // which keep the sweep order's tie-breaking identical to the
                // classic remove-then-reinsert descent.
                if bucket != inc.assignment()[i] {
                    inc.commit(i, bucket);
                }
            }
            inc.debug_assert_consistent();
            let new_objective = inc.objective();
            let improvement = objective - new_objective;
            objective = new_objective;
            trajectory.push(objective);
            sweeps = sweep + 1;
            if improvement < self.config.tolerance {
                converged = true;
                break;
            }
            // Feed the EMA the sweep-over-sweep improvement decay ratio, not
            // the raw improvement: BCD improvements shrink roughly
            // geometrically, and a ratio EMA is responsive from the second
            // sweep while an absolute EMA stays poisoned by the huge first
            // sweep until long after the descent has converged.
            if let Some(prev) = prev_improvement {
                if prev > 0.0 {
                    ema.update((improvement / prev).clamp(0.0, 1.0));
                }
            }
            prev_improvement = Some(improvement);
            if let Some(best_known) = control.abort_against {
                // Predictive stagnation check: model the remaining descent as
                // a geometric series with the EMA-estimated decay ratio and
                // abort once even that projection cannot close the gap to the
                // incumbent. Requires at least one ratio sample (sweep ≥ 2).
                let ratio = ema.get();
                if sweeps >= control.abort_after.max(2) && ratio < 1.0 {
                    let projected = improvement * ratio / (1.0 - ratio);
                    if objective - best_known > projected {
                        aborted = true;
                        break;
                    }
                }
            }
        }

        DescentResult {
            moves_evaluated: inc.moves_evaluated(),
            assignment: inc.into_assignment(),
            objective,
            trajectory,
            sweeps,
            converged,
            aborted,
            cancelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmedian::solve_frequency_only;
    use opthash_stream::Features;

    fn clustered_problem(lambda: f64) -> HashingProblem {
        // Two frequency groups and two feature groups that coincide.
        let frequencies = vec![1.0, 2.0, 1.5, 100.0, 101.0, 99.0];
        let features = vec![
            Features::new(vec![0.0, 0.0]),
            Features::new(vec![0.2, 0.1]),
            Features::new(vec![0.1, 0.3]),
            Features::new(vec![10.0, 10.0]),
            Features::new(vec![10.2, 9.9]),
            Features::new(vec![9.8, 10.1]),
        ];
        HashingProblem::new(frequencies, features, 2, lambda)
    }

    #[test]
    fn recovers_obvious_two_cluster_structure() {
        for &lambda in &[0.0, 0.5, 1.0] {
            let p = clustered_problem(lambda);
            let sol = BcdSolver::with_defaults().solve(&p);
            assert_eq!(sol.assignment[0], sol.assignment[1]);
            assert_eq!(sol.assignment[1], sol.assignment[2]);
            assert_eq!(sol.assignment[3], sol.assignment[4]);
            assert_eq!(sol.assignment[4], sol.assignment[5]);
            assert_ne!(sol.assignment[0], sol.assignment[3], "lambda={lambda}");
        }
    }

    #[test]
    fn objective_never_worse_than_initial_assignment() {
        let p = clustered_problem(0.5);
        let solver = BcdSolver::with_defaults();
        let mut rng = StdRng::seed_from_u64(3);
        let init = solver.initial_assignment(&p, &mut rng);
        let init_obj = p.objective(&init);
        let sol = solver.solve(&p);
        assert!(
            sol.objective <= init_obj + 1e-9,
            "bcd {} worse than init {init_obj}",
            sol.objective
        );
    }

    #[test]
    fn lambda_one_is_close_to_dp_optimum() {
        let frequencies: Vec<f64> = vec![
            1.0, 2.0, 3.0, 2.0, 1.0, 50.0, 52.0, 49.0, 51.0, 100.0, 101.0, 99.0, 10.0, 11.0, 9.0,
        ];
        let p = HashingProblem::frequency_only(frequencies, 4);
        let dp = solve_frequency_only(&p);
        let bcd = BcdSolver::new(BcdConfig {
            restarts: 5,
            ..BcdConfig::default()
        })
        .solve(&p);
        assert!(
            bcd.estimation_error <= dp.estimation_error * 1.10 + 1e-9,
            "bcd {} far above dp optimum {}",
            bcd.estimation_error,
            dp.estimation_error
        );
        assert!(bcd.estimation_error + 1e-9 >= dp.estimation_error * 0.9);
    }

    #[test]
    fn all_init_strategies_produce_valid_assignments() {
        let p = clustered_problem(0.7);
        for init in [
            InitStrategy::Random,
            InitStrategy::SortedSplit,
            InitStrategy::HeavyHitter,
            InitStrategy::DpWarmStart,
        ] {
            let solver = BcdSolver::new(BcdConfig {
                init,
                ..BcdConfig::default()
            });
            let mut rng = StdRng::seed_from_u64(1);
            let a = solver.initial_assignment(&p, &mut rng);
            assert_eq!(a.len(), p.len());
            assert!(a.iter().all(|&j| j < p.buckets), "{init:?} out of range");
            let sol = solver.solve(&p);
            assert_eq!(sol.assignment.len(), p.len());
        }
    }

    #[test]
    fn heavy_hitter_init_isolates_heaviest_elements() {
        let frequencies = vec![1.0, 2.0, 3.0, 1000.0, 900.0];
        let p = HashingProblem::frequency_only(frequencies, 3);
        let solver = BcdSolver::new(BcdConfig {
            init: InitStrategy::HeavyHitter,
            ..BcdConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let a = solver.initial_assignment(&p, &mut rng);
        // heaviest two get buckets 0 and 1, the rest go to bucket 2
        assert_eq!(a[3], 0);
        assert_eq!(a[4], 1);
        for &light in &a[0..3] {
            assert_eq!(light, 2);
        }
    }

    #[test]
    fn sorted_split_init_balances_bucket_sizes() {
        let frequencies: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let p = HashingProblem::frequency_only(frequencies, 3);
        let solver = BcdSolver::new(BcdConfig {
            init: InitStrategy::SortedSplit,
            ..BcdConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let a = solver.initial_assignment(&p, &mut rng);
        let mut sizes = vec![0usize; 3];
        for &j in &a {
            sizes[j] += 1;
        }
        assert_eq!(sizes, vec![4, 4, 4]);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = clustered_problem(0.5);
        let cfg = BcdConfig {
            seed: 99,
            ..BcdConfig::default()
        };
        let a = BcdSolver::new(cfg).solve(&p);
        let b = BcdSolver::new(cfg).solve(&p);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn multiple_restarts_never_hurt() {
        let p = clustered_problem(0.5);
        let single = BcdSolver::new(BcdConfig {
            restarts: 1,
            seed: 7,
            ..BcdConfig::default()
        })
        .solve(&p);
        let multi = BcdSolver::new(BcdConfig {
            restarts: 5,
            seed: 7,
            ..BcdConfig::default()
        })
        .solve(&p);
        assert!(multi.objective <= single.objective + 1e-9);
        assert_eq!(multi.stats.restarts, 5);
    }

    #[test]
    fn single_bucket_puts_everything_together() {
        let p = HashingProblem::frequency_only(vec![1.0, 5.0, 9.0], 1);
        let sol = BcdSolver::with_defaults().solve(&p);
        assert_eq!(sol.assignment, vec![0, 0, 0]);
        // est error = |1-5|+|5-5|+|9-5| = 8
        assert!((sol.estimation_error - 8.0).abs() < 1e-9);
    }

    #[test]
    fn solve_populates_trajectory_stats() {
        let p = clustered_problem(0.5);
        let sol = BcdSolver::with_defaults().solve(&p);
        assert!(!sol.stats.warm_started);
        // restarts = 1, so the winning trajectory accounts for every sweep.
        assert_eq!(sol.stats.cost_trajectory.len(), sol.stats.iterations + 1);
        assert_eq!(sol.stats.initial_objective, sol.stats.cost_trajectory[0]);
        assert!(sol.stats.moves_evaluated > 0);
        assert!(sol.stats.time_to_best <= sol.stats.elapsed);
        let last = *sol.stats.cost_trajectory.last().unwrap();
        assert!(
            (last - sol.objective).abs() < 1e-6,
            "trajectory end {last} vs objective {}",
            sol.objective
        );
        for pair in sol.stats.cost_trajectory.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-9,
                "descent must not increase the objective"
            );
        }
    }

    #[test]
    fn solve_from_clamps_out_of_range_buckets() {
        let p = clustered_problem(0.5);
        let incumbent = vec![7usize; p.len()]; // solved for more buckets than p has
        let sol = BcdSolver::with_defaults().solve_from(&p, &incumbent);
        assert!(sol.stats.warm_started);
        assert!(sol.assignment.iter().all(|&j| j < p.buckets));
    }

    #[test]
    fn warm_start_from_optimum_converges_in_one_sweep() {
        let p = clustered_problem(1.0);
        let cold = BcdSolver::new(BcdConfig {
            restarts: 4,
            ..BcdConfig::default()
        })
        .solve(&p);
        let warm = BcdSolver::with_defaults().solve_warm(&p, &cold);
        assert!(warm.stats.warm_started);
        assert_eq!(warm.stats.iterations, 1, "no move should survive one sweep");
        assert!(warm.objective <= cold.objective + 1e-9);
        assert_eq!(warm.stats.initial_objective, cold.objective);
    }

    #[test]
    #[should_panic(expected = "cover every element")]
    fn solve_from_rejects_wrong_length() {
        let p = clustered_problem(0.5);
        let _ = BcdSolver::with_defaults().solve_from(&p, &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "empty problem")]
    fn empty_problem_panics() {
        let p = HashingProblem::frequency_only(vec![], 2);
        let _ = BcdSolver::with_defaults().solve(&p);
    }

    #[test]
    fn more_buckets_never_increase_optimal_objective() {
        let frequencies: Vec<f64> = vec![3.0, 8.0, 1.0, 9.0, 4.0, 7.0, 2.0, 6.0];
        let mut last = f64::INFINITY;
        for b in 1..=4 {
            let p = HashingProblem::frequency_only(frequencies.clone(), b);
            let sol = BcdSolver::new(BcdConfig {
                restarts: 8,
                ..BcdConfig::default()
            })
            .solve(&p);
            assert!(
                sol.objective <= last + 1e-9,
                "objective should not grow with more buckets"
            );
            last = sol.objective;
        }
    }

    /// A larger random instance where stragglers exist, so the EMA abort has
    /// something to cut.
    fn noisy_problem(n: usize, b: usize, seed: u64) -> HashingProblem {
        let mut state = seed.max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64
        };
        HashingProblem::frequency_only((0..n).map(|_| next()).collect(), b)
    }

    /// Like [`noisy_problem`] but with a similarity term. Feature distances
    /// are continuous, so descents improve in long shrinking tails — exactly
    /// the regime the predictive abort is designed to cut short (pure
    /// frequency instances converge too abruptly to ever look hopeless).
    fn noisy_feature_problem(n: usize, b: usize, lambda: f64, seed: u64) -> HashingProblem {
        let mut state = seed.max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64
        };
        let frequencies: Vec<f64> = (0..n).map(|_| next()).collect();
        let features: Vec<Features> = (0..n)
            .map(|_| Features::new(vec![next() / 50.0, next() / 50.0]))
            .collect();
        HashingProblem::new(frequencies, features, b, lambda)
    }

    #[test]
    fn ema_abort_is_recorded_and_never_hurts_the_incumbent() {
        let p = noisy_feature_problem(150, 8, 0.5, 11);
        let eager = BcdSolver::new(BcdConfig {
            restarts: 8,
            abort_after: 1,
            seed: 3,
            ..BcdConfig::default()
        })
        .solve(&p);
        let patient = BcdSolver::new(BcdConfig {
            restarts: 1,
            seed: 3,
            ..BcdConfig::default()
        })
        .solve(&p);
        // Restart 0 never aborts, so the multi-start run keeps its result.
        assert!(eager.objective <= patient.objective + 1e-9);
        assert!(
            eager.stats.restarts_aborted > 0,
            "abort_after=1 on 8 restarts should cut at least one straggler"
        );
        // Aborted restarts must free budget: fewer sweeps than the full run.
        let full = BcdSolver::new(BcdConfig {
            restarts: 8,
            seed: 3,
            abort_after: usize::MAX,
            ..BcdConfig::default()
        })
        .solve(&p);
        assert_eq!(full.stats.restarts_aborted, 0);
        assert!(eager.stats.iterations <= full.stats.iterations);
    }

    #[test]
    fn disabled_aborts_run_every_restart_to_convergence() {
        let p = noisy_problem(80, 4, 5);
        let sol = BcdSolver::new(BcdConfig {
            restarts: 6,
            ..BcdConfig::default().without_aborts()
        })
        .solve(&p);
        assert_eq!(sol.stats.restarts_aborted, 0);
    }

    #[test]
    fn cancellation_returns_a_valid_solution_immediately() {
        let p = noisy_problem(150, 8, 9);
        let cancel = AtomicBool::new(true); // raised before the solve starts
        let sol = BcdSolver::new(BcdConfig {
            restarts: 16,
            ..BcdConfig::default()
        })
        .solve_cancellable(&p, None, &cancel);
        // The first descent still runs (a result must exist), but no further
        // restarts are attempted.
        assert_eq!(sol.assignment.len(), p.len());
        assert!(sol.assignment.iter().all(|&j| j < p.buckets));
        let uncancelled = BcdSolver::new(BcdConfig {
            restarts: 16,
            ..BcdConfig::default()
        })
        .solve(&p);
        assert!(sol.stats.iterations <= uncancelled.stats.iterations);
    }

    #[test]
    fn solve_cancellable_matches_solve_when_never_cancelled() {
        let p = clustered_problem(0.5);
        let cfg = BcdConfig {
            restarts: 3,
            seed: 21,
            ..BcdConfig::default()
        };
        let cancel = AtomicBool::new(false);
        let raced = BcdSolver::new(cfg).solve_cancellable(&p, None, &cancel);
        let plain = BcdSolver::new(cfg).solve(&p);
        assert_eq!(raced.assignment, plain.assignment);
        assert_eq!(raced.objective, plain.objective);
    }
}
