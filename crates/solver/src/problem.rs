//! Problem and solution types shared by all solvers.

use opthash_stream::{assignment_errors, AssignmentErrors, Features};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// An instance of the optimal-hashing problem (Problem (1) of the paper).
///
/// * `frequencies[i]` — the observed prefix frequency `f⁰_i` of element `i`,
/// * `features[i]` — the feature vector `x_i` (may be empty when `λ = 1`),
/// * `buckets` — the number of buckets `b`,
/// * `lambda` — the weight trading off estimation vs. similarity error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HashingProblem {
    /// Observed prefix frequencies `f⁰`, one entry per element.
    pub frequencies: Vec<f64>,
    /// Feature vectors aligned with `frequencies`; may be empty when only the
    /// estimation error matters (`λ = 1`).
    pub features: Vec<Features>,
    /// Number of buckets `b`.
    pub buckets: usize,
    /// Trade-off weight `λ ∈ [0, 1]`.
    pub lambda: f64,
}

impl HashingProblem {
    /// Creates a problem instance, validating its shape.
    ///
    /// # Panics
    /// Panics if `buckets == 0`, `lambda ∉ [0, 1]`, any frequency is negative
    /// or non-finite, or `features` is non-empty but misaligned with
    /// `frequencies`.
    pub fn new(
        frequencies: Vec<f64>,
        features: Vec<Features>,
        buckets: usize,
        lambda: f64,
    ) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(
            (0.0..=1.0).contains(&lambda),
            "lambda must lie in [0, 1], got {lambda}"
        );
        assert!(
            frequencies.iter().all(|f| f.is_finite() && *f >= 0.0),
            "frequencies must be finite and non-negative"
        );
        if !features.is_empty() {
            assert_eq!(
                features.len(),
                frequencies.len(),
                "features must align with frequencies"
            );
        }
        HashingProblem {
            frequencies,
            features,
            buckets,
            lambda,
        }
    }

    /// A pure estimation-error instance (`λ = 1`, no features).
    pub fn frequency_only(frequencies: Vec<f64>, buckets: usize) -> Self {
        Self::new(frequencies, Vec::new(), buckets, 1.0)
    }

    /// Number of elements `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.frequencies.len()
    }

    /// Returns `true` if there are no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.frequencies.is_empty()
    }

    /// `true` when the similarity term is active (`λ < 1` and features are
    /// present).
    pub fn uses_features(&self) -> bool {
        self.lambda < 1.0 && !self.features.is_empty()
    }

    /// Evaluates the two objective terms of an assignment.
    pub fn evaluate(&self, assignment: &[usize]) -> AssignmentErrors {
        assignment_errors(
            &self.frequencies,
            if self.uses_features() {
                &self.features
            } else {
                &[]
            },
            assignment,
            self.buckets,
            self.lambda,
        )
    }

    /// Evaluates the scalar objective of an assignment.
    pub fn objective(&self, assignment: &[usize]) -> f64 {
        self.evaluate(assignment).overall_error()
    }

    /// Wraps an assignment into a [`HashingSolution`], computing its errors.
    pub fn solution_from_assignment(
        &self,
        assignment: Vec<usize>,
        stats: SolverStats,
    ) -> HashingSolution {
        assert_eq!(assignment.len(), self.len(), "assignment length mismatch");
        let errors = self.evaluate(&assignment);
        HashingSolution {
            assignment,
            buckets: self.buckets,
            lambda: self.lambda,
            estimation_error: errors.estimation_error,
            similarity_error: errors.similarity_error,
            objective: errors.overall_error(),
            stats,
        }
    }

    /// Upper bound `M ≥ max_i f⁰_i` used by the MILP reformulation
    /// (Theorem 1). Exposed so the exact solver and tests can reference the
    /// same constant the paper defines.
    pub fn big_m(&self) -> f64 {
        self.frequencies.iter().copied().fold(0.0, f64::max)
    }
}

/// Execution statistics attached to a solution.
///
/// Iterative solvers (BCD) additionally report the objective trajectory of
/// the winning restart so callers can see *how* the solve converged — the
/// warm-start machinery uses this to prove that re-solving a perturbed
/// problem from the incumbent assignment converges faster than from scratch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Wall-clock time spent solving.
    pub elapsed: Duration,
    /// Iterations (BCD sweeps, B&B nodes, or DP table cells depending on the
    /// solver).
    pub iterations: usize,
    /// Whether the solver proved optimality of the returned assignment.
    pub proven_optimal: bool,
    /// Number of restarts performed (multi-start BCD).
    pub restarts: usize,
    /// Objective of the initial assignment of the restart that produced the
    /// returned solution (equals `cost_trajectory[0]` when the trajectory is
    /// recorded; `0.0` for non-iterative solvers).
    pub initial_objective: f64,
    /// Objective after the initial assignment and after every subsequent
    /// sweep of the winning restart. Empty for non-iterative solvers.
    pub cost_trajectory: Vec<f64>,
    /// Whether the solve was warm-started from a caller-provided assignment
    /// (e.g. the incumbent scheme during online re-training).
    pub warm_started: bool,
    /// Candidate moves (BCD), DP cells, or enumeration nodes evaluated —
    /// the cheap always-on work counter every solver maintains.
    pub moves_evaluated: u64,
    /// Restarts cut short by the EMA stagnation check (multi-start BCD);
    /// their leftover sweep budget is reallocated to the incumbent.
    pub restarts_aborted: usize,
    /// Wall-clock time from the start of the solve until the returned
    /// solution was first discovered (≤ `elapsed`; the tail is spent proving
    /// nothing better exists or letting other restarts/racers finish).
    pub time_to_best: Duration,
}

/// A learned hashing scheme: the assignment `Z` of Problem (1) in dense form
/// (`assignment[i]` is the bucket of element `i`) plus its objective terms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HashingSolution {
    /// Bucket index of each element.
    pub assignment: Vec<usize>,
    /// Number of buckets the assignment targets.
    pub buckets: usize,
    /// The λ the problem was solved with.
    pub lambda: f64,
    /// Estimation error term of the objective.
    pub estimation_error: f64,
    /// Similarity error term of the objective.
    pub similarity_error: f64,
    /// Overall objective `λ·est + (1−λ)·sim`.
    pub objective: f64,
    /// Execution statistics.
    pub stats: SolverStats,
}

impl HashingSolution {
    /// Per-bucket statistics (members, mean frequency, errors) of this
    /// solution for the given problem. This is the data the frequency
    /// estimator needs to answer queries (bucket means) and that experiments
    /// report.
    pub fn bucket_stats(&self, problem: &HashingProblem) -> Vec<BucketStats> {
        let mut stats: Vec<BucketStats> = (0..self.buckets)
            .map(|j| BucketStats {
                bucket: j,
                members: Vec::new(),
                mean_frequency: 0.0,
                estimation_error: 0.0,
            })
            .collect();
        for (i, &j) in self.assignment.iter().enumerate() {
            stats[j].members.push(i);
        }
        for s in &mut stats {
            if s.members.is_empty() {
                continue;
            }
            let sum: f64 = s.members.iter().map(|&i| problem.frequencies[i]).sum();
            s.mean_frequency = sum / s.members.len() as f64;
            s.estimation_error = s
                .members
                .iter()
                .map(|&i| (problem.frequencies[i] - s.mean_frequency).abs())
                .sum();
        }
        stats
    }

    /// Number of non-empty buckets.
    pub fn used_buckets(&self) -> usize {
        let mut used = vec![false; self.buckets];
        for &j in &self.assignment {
            used[j] = true;
        }
        used.iter().filter(|&&u| u).count()
    }

    /// The integer hash code `h_i ∈ [b]` of each element (Section 5.1) —
    /// simply the assignment vector, exposed under the paper's name.
    pub fn hash_codes(&self) -> &[usize] {
        &self.assignment
    }
}

/// Summary of one bucket of a solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketStats {
    /// Bucket index `j`.
    pub bucket: usize,
    /// Element indices mapped to this bucket (`I_j`).
    pub members: Vec<usize>,
    /// Mean prefix frequency `μ_j` of the members.
    pub mean_frequency: f64,
    /// Estimation error `Σ_{i∈I_j} |f⁰_i − μ_j|` of the bucket.
    pub estimation_error: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problem() -> HashingProblem {
        HashingProblem::new(
            vec![1.0, 2.0, 10.0, 11.0],
            vec![
                Features::new(vec![0.0]),
                Features::new(vec![0.1]),
                Features::new(vec![5.0]),
                Features::new(vec![5.1]),
            ],
            2,
            0.5,
        )
    }

    #[test]
    fn objective_matches_manual_computation() {
        let p = small_problem();
        // buckets {0,1} and {2,3}: est err = (0.5+0.5)+(0.5+0.5) = 2
        // sim err = 2*0.1 + 2*0.1 = 0.4 ; objective = 0.5*2 + 0.5*0.4 = 1.2
        let obj = p.objective(&[0, 0, 1, 1]);
        assert!((obj - 1.2).abs() < 1e-9, "objective {obj}");
    }

    #[test]
    fn frequency_only_ignores_similarity() {
        let p = HashingProblem::frequency_only(vec![1.0, 5.0, 9.0], 2);
        assert!(!p.uses_features());
        let errs = p.evaluate(&[0, 0, 1]);
        assert_eq!(errs.similarity_error, 0.0);
        assert!((errs.estimation_error - 4.0).abs() < 1e-12);
    }

    #[test]
    fn solution_records_errors_and_bucket_stats() {
        let p = small_problem();
        let sol = p.solution_from_assignment(vec![0, 0, 1, 1], SolverStats::default());
        assert!((sol.objective - 1.2).abs() < 1e-9);
        assert_eq!(sol.used_buckets(), 2);
        assert_eq!(sol.hash_codes(), &[0, 0, 1, 1]);
        let stats = sol.bucket_stats(&p);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].members, vec![0, 1]);
        assert!((stats[0].mean_frequency - 1.5).abs() < 1e-12);
        assert!((stats[1].mean_frequency - 10.5).abs() < 1e-12);
        assert!((stats[0].estimation_error - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_stats_handles_empty_buckets() {
        let p = HashingProblem::frequency_only(vec![3.0, 3.0], 4);
        let sol = p.solution_from_assignment(vec![2, 2], SolverStats::default());
        let stats = sol.bucket_stats(&p);
        assert_eq!(stats.len(), 4);
        assert_eq!(stats[0].members.len(), 0);
        assert_eq!(stats[0].mean_frequency, 0.0);
        assert_eq!(sol.used_buckets(), 1);
    }

    #[test]
    fn big_m_is_max_frequency() {
        let p = HashingProblem::frequency_only(vec![4.0, 17.0, 2.0], 2);
        assert_eq!(p.big_m(), 17.0);
        assert_eq!(HashingProblem::frequency_only(vec![], 1).big_m(), 0.0);
    }

    #[test]
    #[should_panic(expected = "lambda must lie in [0, 1]")]
    fn invalid_lambda_panics() {
        let _ = HashingProblem::new(vec![1.0], vec![], 1, 1.5);
    }

    #[test]
    #[should_panic(expected = "need at least one bucket")]
    fn zero_buckets_panics() {
        let _ = HashingProblem::frequency_only(vec![1.0], 0);
    }

    #[test]
    #[should_panic(expected = "features must align")]
    fn misaligned_features_panic() {
        let _ = HashingProblem::new(vec![1.0, 2.0], vec![Features::new(vec![1.0])], 2, 0.5);
    }

    #[test]
    #[should_panic(expected = "assignment length mismatch")]
    fn wrong_assignment_length_panics() {
        let p = HashingProblem::frequency_only(vec![1.0, 2.0], 2);
        let _ = p.solution_from_assignment(vec![0], SolverStats::default());
    }
}
