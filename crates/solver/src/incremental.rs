//! Incrementally maintained objective for local-search solvers.
//!
//! The BCD sweep of [`crate::bcd`] evaluates, for every element, the
//! objective change of moving it into each of the `b` buckets. Doing that
//! with from-scratch bucket recomputation costs `O(|I_j|)` per candidate
//! bucket (and `O(|I_j|·d)` when features are active), which made each sweep
//! quadratic in `n`. [`IncrementalObjective`] maintains per-bucket
//! *sufficient statistics* so that
//!
//! * evaluating a move costs `O(log |I_j|)` — the estimation-error change of
//!   inserting (or removing) a frequency is computed in closed form from the
//!   bucket's sorted frequencies and their prefix sums, and the
//!   similarity-error change is a single lookup in a maintained
//!   element × bucket distance-sum matrix;
//! * committing a move costs `O(|I_j|)` for the bucket bookkeeping plus
//!   `O(n·d)` for the distance-matrix column updates (features active only),
//!   and is paid **per committed move**, not per candidate.
//!
//! The estimation error of a bucket with mean `μ` splits around the mean:
//! `Σ|f − μ| = (μ·cnt≤ − sum≤) + (sum> − μ·cnt>)`, so it is a function of
//! the member count, the member sum, and the count/sum of members below the
//! candidate mean — all available from the sorted-frequency prefix sums with
//! one binary search.
//!
//! Every maintained quantity can be cross-checked against a from-scratch
//! recompute via [`IncrementalObjective::recomputed_objective`]; debug
//! builds of the BCD solver assert the two agree after every sweep.

use crate::problem::HashingProblem;

/// Largest `n` for which the full `n × n` pairwise-distance matrix is
/// materialised (32 MB of `f64` at the limit); beyond it distances are
/// recomputed on demand.
pub const PAIR_CACHE_LIMIT: usize = 2_048;

/// Precomputed symmetric pairwise feature distances `‖x_i − x_k‖₂`.
///
/// The distances depend only on the problem — not on any assignment — so a
/// multi-restart descent builds this once and every restart's
/// [`IncrementalObjective`] turns its `O(n²·d)` initialisation and its
/// `O(n·d)` per-commit column updates into table lookups. Construction costs
/// `O(n²·d)` once and `n²` doubles of memory; callers should gate on
/// [`PAIR_CACHE_LIMIT`].
#[derive(Debug, Clone)]
pub struct PairwiseDistances {
    n: usize,
    data: Vec<f64>,
}

impl PairwiseDistances {
    /// Builds the matrix for `problem`'s features. Panics if features are
    /// inactive (there is nothing to cache).
    pub fn new(problem: &HashingProblem) -> Self {
        assert!(
            problem.uses_features(),
            "pairwise distances only exist for feature-active problems"
        );
        let n = problem.len();
        let features = &problem.features;
        let mut data = vec![0.0f64; n * n];
        for i in 0..n {
            for k in (i + 1)..n {
                let d = features[i].l2_distance(&features[k]);
                data[i * n + k] = d;
                data[k * n + i] = d;
            }
        }
        PairwiseDistances { n, data }
    }

    /// The row of distances from element `i` to every element.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }
}

/// Sufficient statistics of one bucket.
#[derive(Debug, Clone)]
struct BucketStats {
    /// Member frequencies, sorted ascending (duplicates kept).
    sorted: Vec<f64>,
    /// Prefix sums over `sorted`: `prefix[k] = Σ sorted[0..k]`, rebuilt
    /// exactly on every commit so it never accumulates incremental drift.
    prefix: Vec<f64>,
    /// Maintained estimation error `Σ |f − μ|` of the current members.
    est: f64,
    /// Maintained similarity error `Σ_{(i,k)∈I×I} ‖x_i − x_k‖` (ordered
    /// pairs), zero when features are inactive.
    sim: f64,
}

impl BucketStats {
    fn new() -> Self {
        BucketStats {
            sorted: Vec::new(),
            prefix: vec![0.0],
            est: 0.0,
            sim: 0.0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.sorted.len()
    }

    #[inline]
    fn sum(&self) -> f64 {
        self.prefix[self.sorted.len()]
    }

    fn rebuild_prefix(&mut self) {
        self.prefix.clear();
        self.prefix.push(0.0);
        let mut acc = 0.0;
        for &v in &self.sorted {
            acc += v;
            self.prefix.push(acc);
        }
    }

    /// Estimation error the bucket would have with `f` inserted.
    fn est_with(&self, f: f64) -> f64 {
        let m = self.len();
        let sum = self.sum() + f;
        let count = (m + 1) as f64;
        let mean = sum / count;
        let split = self.sorted.partition_point(|&v| v <= mean);
        let mut below_cnt = split as f64;
        let mut below_sum = self.prefix[split];
        if f <= mean {
            below_cnt += 1.0;
            below_sum += f;
        }
        let above_cnt = count - below_cnt;
        let above_sum = sum - below_sum;
        (mean * below_cnt - below_sum) + (above_sum - mean * above_cnt)
    }

    /// Estimation error the bucket would have with one occurrence of the
    /// member frequency `f` removed.
    fn est_without(&self, f: f64) -> f64 {
        let m = self.len();
        debug_assert!(m >= 1, "cannot remove from an empty bucket");
        if m <= 1 {
            return 0.0;
        }
        let sum = self.sum() - f;
        let count = (m - 1) as f64;
        let mean = sum / count;
        let split = self.sorted.partition_point(|&v| v <= mean);
        let mut below_cnt = split as f64;
        let mut below_sum = self.prefix[split];
        if f <= mean {
            // One of the counted below-mean occurrences is the removed one
            // (all occurrences of `f` are interchangeable).
            below_cnt -= 1.0;
            below_sum -= f;
        }
        let above_cnt = count - below_cnt;
        let above_sum = sum - below_sum;
        (mean * below_cnt - below_sum) + (above_sum - mean * above_cnt)
    }

    fn insert(&mut self, f: f64) {
        let pos = self.sorted.partition_point(|&v| v <= f);
        self.sorted.insert(pos, f);
        self.rebuild_prefix();
    }

    fn remove(&mut self, f: f64) {
        let pos = self.sorted.partition_point(|&v| v < f);
        debug_assert!(
            pos < self.sorted.len() && (self.sorted[pos] - f).abs() < 1e-12,
            "removed frequency must be a member"
        );
        self.sorted.remove(pos);
        self.rebuild_prefix();
    }
}

/// Incrementally maintained Problem (1) objective over a mutable assignment.
///
/// Construct it from a [`HashingProblem`] and an initial assignment, then
/// alternate [`IncrementalObjective::best_move`] /
/// [`IncrementalObjective::eval_move`] (read-only, cheap) with
/// [`IncrementalObjective::commit`] (applies one move). The maintained
/// objective is available in `O(b)` via
/// [`IncrementalObjective::objective`] and provably matches a from-scratch
/// recompute (see [`IncrementalObjective::recomputed_objective`]).
#[derive(Debug)]
pub struct IncrementalObjective<'a> {
    problem: &'a HashingProblem,
    assignment: Vec<usize>,
    buckets: Vec<BucketStats>,
    /// Flattened `n × b` matrix; entry `[i·b + j]` is
    /// `Σ_{k ∈ I_j} ‖x_i − x_k‖`. Empty when features are inactive.
    dist_sums: Vec<f64>,
    use_features: bool,
    pairs: Option<&'a PairwiseDistances>,
    moves_evaluated: u64,
}

impl<'a> IncrementalObjective<'a> {
    /// Builds the sufficient statistics for `assignment`.
    ///
    /// Costs `O(n log n)` for the frequency structures plus `O(n²·d)` for the
    /// pairwise distance matrix when features are active — paid once per
    /// descent, after which every sweep is subquadratic.
    pub fn new(problem: &'a HashingProblem, assignment: Vec<usize>) -> Self {
        Self::with_pair_distances(problem, assignment, None)
    }

    /// Like [`IncrementalObjective::new`], but reuses a prebuilt
    /// [`PairwiseDistances`] table (shared across restarts by the descent),
    /// replacing the `O(n²·d)` distance computation of initialisation and
    /// the `O(n·d)` distance work per committed move with lookups.
    pub fn with_pair_distances(
        problem: &'a HashingProblem,
        assignment: Vec<usize>,
        pairs: Option<&'a PairwiseDistances>,
    ) -> Self {
        let n = problem.len();
        let b = problem.buckets;
        assert_eq!(assignment.len(), n, "assignment must cover every element");
        debug_assert!(assignment.iter().all(|&j| j < b));
        let use_features = problem.uses_features();

        let mut buckets: Vec<BucketStats> = (0..b).map(|_| BucketStats::new()).collect();
        for (i, &j) in assignment.iter().enumerate() {
            let pos = buckets[j]
                .sorted
                .partition_point(|&v| v <= problem.frequencies[i]);
            buckets[j].sorted.insert(pos, problem.frequencies[i]);
        }
        for bucket in &mut buckets {
            bucket.rebuild_prefix();
            let m = bucket.len();
            if m > 0 {
                let mean = bucket.sum() / m as f64;
                bucket.est = bucket.sorted.iter().map(|&v| (v - mean).abs()).sum();
            }
        }

        let mut dist_sums = Vec::new();
        if use_features {
            let features = &problem.features;
            dist_sums = vec![0.0f64; n * b];
            if let Some(pairs) = pairs {
                for i in 0..n {
                    let row = pairs.row(i);
                    let dest = &mut dist_sums[i * b..(i + 1) * b];
                    for (k, &j) in assignment.iter().enumerate() {
                        dest[j] += row[k];
                    }
                }
            } else {
                for i in 0..n {
                    for k in (i + 1)..n {
                        let d = features[i].l2_distance(&features[k]);
                        dist_sums[i * b + assignment[k]] += d;
                        dist_sums[k * b + assignment[i]] += d;
                    }
                }
            }
            // sim_j = Σ over ordered member pairs = Σ_{i∈I_j} dist_sums[i][j].
            for (i, &j) in assignment.iter().enumerate() {
                buckets[j].sim += dist_sums[i * b + j];
            }
        }

        IncrementalObjective {
            problem,
            assignment,
            buckets,
            dist_sums,
            use_features,
            pairs,
            moves_evaluated: 0,
        }
    }

    /// The current assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Consumes the evaluator, returning the assignment.
    pub fn into_assignment(self) -> Vec<usize> {
        self.assignment
    }

    /// Number of candidate moves evaluated so far.
    pub fn moves_evaluated(&self) -> u64 {
        self.moves_evaluated
    }

    /// The maintained objective, `O(b)`.
    pub fn objective(&self) -> f64 {
        let lambda = self.problem.lambda;
        self.buckets
            .iter()
            .map(|bk| lambda * bk.est + (1.0 - lambda) * bk.sim)
            .sum()
    }

    /// Objective change of moving element `i` into bucket `j`
    /// (exactly `0.0` when `j` is already its bucket).
    pub fn eval_move(&mut self, i: usize, j: usize) -> f64 {
        let a = self.assignment[i];
        if a == j {
            return 0.0;
        }
        self.moves_evaluated += 1;
        let f = self.problem.frequencies[i];
        let lambda = self.problem.lambda;
        let est_delta = (self.buckets[a].est_without(f) - self.buckets[a].est)
            + (self.buckets[j].est_with(f) - self.buckets[j].est);
        let sim_delta = if self.use_features {
            let b = self.problem.buckets;
            2.0 * (self.dist_sums[i * b + j] - self.dist_sums[i * b + a])
        } else {
            0.0
        };
        lambda * est_delta + (1.0 - lambda) * sim_delta
    }

    /// The best move for element `i`: conceptually removes `i` from its
    /// bucket and returns the bucket with the cheapest re-insertion cost,
    /// together with the net objective change of moving there (`<= 0` up to
    /// rounding; exactly `0.0` when the best bucket is the current one).
    ///
    /// All buckets — including the current one — compete on re-insertion
    /// cost, and ties resolve to the lowest bucket index. This mirrors the
    /// classic remove-then-reinsert BCD sweep and permits zero-delta
    /// "plateau" moves, which help later sweeps escape shallow local optima.
    pub fn best_move(&mut self, i: usize) -> (usize, f64) {
        let a = self.assignment[i];
        let f = self.problem.frequencies[i];
        let lambda = self.problem.lambda;
        let b = self.problem.buckets;
        // Insertion costs are measured against the bucket states with `i`
        // removed; re-inserting into the current bucket costs exactly what
        // the removal saved, so "stay" competes on equal terms.
        let est_without_a = self.buckets[a].est_without(f);
        let stay_est = self.buckets[a].est - est_without_a;
        let stay_sim = if self.use_features {
            2.0 * self.dist_sums[i * b + a]
        } else {
            0.0
        };
        let mut best_bucket = a;
        let mut best_cost = f64::INFINITY;
        for j in 0..b {
            self.moves_evaluated += 1;
            let est_insert = if j == a {
                stay_est
            } else {
                self.buckets[j].est_with(f) - self.buckets[j].est
            };
            let sim_insert = if self.use_features {
                2.0 * self.dist_sums[i * b + j]
            } else {
                0.0
            };
            let cost = lambda * est_insert + (1.0 - lambda) * sim_insert;
            if cost < best_cost {
                best_cost = cost;
                best_bucket = j;
            }
        }
        let stay_cost = lambda * stay_est + (1.0 - lambda) * stay_sim;
        (best_bucket, best_cost - stay_cost)
    }

    /// Moves element `i` into bucket `j`, updating every maintained
    /// statistic. No-op if `j` is already its bucket.
    pub fn commit(&mut self, i: usize, j: usize) {
        let a = self.assignment[i];
        if a == j {
            return;
        }
        let f = self.problem.frequencies[i];
        // Estimation errors are refreshed from the closed-form evaluation —
        // the committed value is identical to the evaluated one, so a
        // committed move changes the objective by exactly its reported delta.
        let new_est_a = self.buckets[a].est_without(f);
        let new_est_j = self.buckets[j].est_with(f);
        self.buckets[a].remove(f);
        self.buckets[j].insert(f);
        self.buckets[a].est = new_est_a;
        self.buckets[j].est = new_est_j;
        self.assignment[i] = j;

        if self.use_features {
            let b = self.problem.buckets;
            self.buckets[a].sim -= 2.0 * self.dist_sums[i * b + a];
            self.buckets[j].sim += 2.0 * self.dist_sums[i * b + j];
            if self.buckets[a].sim < 0.0 {
                // guard against floating-point drift below zero
                self.buckets[a].sim = 0.0;
            }
            // Every element's distance sum shifts d(·, i) from column a to j.
            if let Some(pairs) = self.pairs {
                let dist_row = pairs.row(i);
                for (k, row) in self.dist_sums.chunks_exact_mut(b).enumerate() {
                    let d = dist_row[k];
                    row[a] -= d;
                    row[j] += d;
                }
            } else {
                let features = &self.problem.features;
                let fi = &features[i];
                for (k, row) in self.dist_sums.chunks_exact_mut(b).enumerate() {
                    let d = fi.l2_distance(&features[k]);
                    row[a] -= d;
                    row[j] += d;
                }
            }
        }
    }

    /// The objective recomputed from scratch off the current assignment —
    /// the ground truth the maintained value is asserted against.
    pub fn recomputed_objective(&self) -> f64 {
        self.problem.objective(&self.assignment)
    }

    /// Debug-asserts that the maintained objective matches a from-scratch
    /// recompute (relative tolerance `1e-6`). Compiled out in release.
    #[inline]
    pub fn debug_assert_consistent(&self) {
        #[cfg(debug_assertions)]
        {
            let maintained = self.objective();
            let truth = self.recomputed_objective();
            let scale = truth.abs().max(1.0);
            debug_assert!(
                (maintained - truth).abs() <= 1e-6 * scale,
                "incremental objective {maintained} drifted from recompute {truth}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opthash_stream::Features;

    fn feature_problem() -> HashingProblem {
        let frequencies = vec![1.0, 2.0, 1.5, 100.0, 101.0, 99.0, 50.0, 51.0];
        let features = frequencies
            .iter()
            .map(|&f| Features::new(vec![f / 10.0, -f / 20.0]))
            .collect();
        HashingProblem::new(frequencies, features, 3, 0.5)
    }

    #[test]
    fn initial_statistics_match_recompute() {
        let p = feature_problem();
        let assignment = vec![0, 1, 2, 0, 1, 2, 0, 1];
        let inc = IncrementalObjective::new(&p, assignment.clone());
        let truth = p.objective(&assignment);
        assert!(
            (inc.objective() - truth).abs() < 1e-9,
            "maintained {} vs truth {truth}",
            inc.objective()
        );
    }

    #[test]
    fn eval_move_predicts_commit_exactly() {
        let p = feature_problem();
        let mut inc = IncrementalObjective::new(&p, vec![0, 0, 1, 1, 2, 2, 0, 1]);
        for (i, j) in [(0usize, 2usize), (3, 0), (5, 1), (7, 2), (2, 2)] {
            let before = inc.objective();
            let predicted = inc.eval_move(i, j);
            inc.commit(i, j);
            let actual = inc.objective() - before;
            assert!(
                (predicted - actual).abs() < 1e-9,
                "move {i}->{j}: predicted {predicted} actual {actual}"
            );
            inc.debug_assert_consistent();
        }
    }

    #[test]
    fn stays_consistent_over_many_random_moves() {
        let p = feature_problem();
        let mut inc = IncrementalObjective::new(&p, vec![0; 8]);
        let mut state = 7u64;
        for _ in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let i = (state % 8) as usize;
            let j = ((state >> 8) % 3) as usize;
            inc.commit(i, j);
        }
        let truth = inc.recomputed_objective();
        assert!(
            (inc.objective() - truth).abs() < 1e-6 * truth.max(1.0),
            "maintained {} vs truth {truth}",
            inc.objective()
        );
    }

    #[test]
    fn best_move_finds_the_obvious_improvement() {
        // Element 3 (freq 100) sits with the small frequencies; moving it to
        // the heavy bucket must be the best move.
        let frequencies = vec![1.0, 2.0, 1.5, 100.0, 101.0, 99.0];
        let p = HashingProblem::frequency_only(frequencies, 2);
        let mut inc = IncrementalObjective::new(&p, vec![0, 0, 0, 0, 1, 1]);
        let (bucket, delta) = inc.best_move(3);
        assert_eq!(bucket, 1);
        assert!(delta < 0.0, "delta {delta}");
        inc.commit(3, bucket);
        assert!(inc.objective() < 10.0);
        assert!(inc.moves_evaluated() >= 1);
    }

    #[test]
    fn staying_put_scores_zero() {
        let p = feature_problem();
        let mut inc = IncrementalObjective::new(&p, vec![0, 1, 2, 0, 1, 2, 0, 1]);
        for i in 0..8 {
            let a = inc.assignment()[i];
            assert_eq!(inc.eval_move(i, a), 0.0);
        }
    }

    #[test]
    fn duplicate_frequencies_are_handled() {
        let p = HashingProblem::frequency_only(vec![5.0, 5.0, 5.0, 5.0, 9.0], 2);
        let mut inc = IncrementalObjective::new(&p, vec![0, 0, 1, 1, 0]);
        for (i, j) in [(0usize, 1usize), (1, 1), (2, 0), (0, 0), (4, 1)] {
            inc.commit(i, j);
            let truth = inc.recomputed_objective();
            assert!(
                (inc.objective() - truth).abs() < 1e-9,
                "maintained {} vs truth {truth}",
                inc.objective()
            );
        }
    }
}
