//! k-fold cross-validation and hyper-parameter grid search.
//!
//! The paper tunes every classifier with 10-fold cross-validation
//! (Section 6.2): the ridge weight for `logreg`, minimum impurity decrease
//! and maximum depth for `cart`, and per-split feature count and maximum
//! depth for `rf`. [`tune`] reproduces that protocol with small built-in
//! grids and returns the winning configuration's model retrained on the full
//! training set.

use crate::cart::{CartConfig, DecisionTree};
use crate::classifier::{Classifier, ClassifierKind, TrainedClassifier};
use crate::dataset::Dataset;
use crate::forest::{ForestConfig, RandomForest};
use crate::logreg::{LogRegConfig, LogisticRegression};
use serde::{Deserialize, Serialize};

/// Result of evaluating one hyper-parameter configuration by cross-validation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CvResult {
    /// Human-readable description of the configuration.
    pub description: String,
    /// Mean validation accuracy across the folds.
    pub mean_accuracy: f64,
    /// Standard deviation of the validation accuracy across the folds.
    pub std_accuracy: f64,
    /// Number of folds actually evaluated.
    pub folds: usize,
}

/// Cross-validates a model-fitting closure over `k` folds, returning the mean
/// and standard deviation of the validation accuracy.
pub fn cross_validate<F, M>(data: &Dataset, k: usize, seed: u64, fit: F) -> (f64, f64, usize)
where
    F: Fn(&Dataset) -> M,
    M: Classifier,
{
    let folds = data.k_folds(k, seed);
    let accuracies: Vec<f64> = folds
        .iter()
        .map(|(train, val)| fit(train).accuracy(val))
        .collect();
    let n = accuracies.len();
    if n == 0 {
        return (0.0, 0.0, 0);
    }
    let mean = accuracies.iter().sum::<f64>() / n as f64;
    let var = accuracies
        .iter()
        .map(|a| (a - mean) * (a - mean))
        .sum::<f64>()
        / n as f64;
    (mean, var.sqrt(), n)
}

/// Grid-searches the hyper-parameters of the requested model family with
/// `k`-fold cross-validation, then retrains the best configuration on all of
/// `data`. Returns the trained model and the per-configuration CV results
/// (best first).
pub fn tune(
    kind: ClassifierKind,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> (TrainedClassifier, Vec<CvResult>) {
    let mut results: Vec<(CvResult, TrainedClassifier)> = Vec::new();
    match kind {
        ClassifierKind::LogisticRegression => {
            for &l2 in &[1e-4, 1e-3, 1e-2, 1e-1] {
                let config = LogRegConfig {
                    l2,
                    ..LogRegConfig::default()
                };
                let (mean, std, folds) = cross_validate(data, k, seed, |train| {
                    LogisticRegression::fit(train, &config)
                });
                results.push((
                    CvResult {
                        description: format!("logreg(l2={l2})"),
                        mean_accuracy: mean,
                        std_accuracy: std,
                        folds,
                    },
                    TrainedClassifier::LogReg(LogisticRegression::fit(data, &config)),
                ));
            }
        }
        ClassifierKind::Cart => {
            for &max_depth in &[4usize, 8, 12] {
                for &min_impurity_decrease in &[1e-7, 1e-3, 1e-2] {
                    let config = CartConfig {
                        max_depth,
                        min_impurity_decrease,
                        ..CartConfig::default()
                    };
                    let (mean, std, folds) =
                        cross_validate(data, k, seed, |train| DecisionTree::fit(train, &config));
                    results.push((
                        CvResult {
                            description: format!(
                                "cart(max_depth={max_depth}, min_impurity_decrease={min_impurity_decrease})"
                            ),
                            mean_accuracy: mean,
                            std_accuracy: std,
                            folds,
                        },
                        TrainedClassifier::Cart(DecisionTree::fit(data, &config)),
                    ));
                }
            }
        }
        ClassifierKind::RandomForest => {
            let d = data.num_features().max(1);
            let sqrt_d = (d as f64).sqrt().ceil() as usize;
            let mut feature_options = vec![sqrt_d, d];
            feature_options.dedup();
            for &max_depth in &[8usize, 14] {
                for &max_features in &feature_options {
                    let config = ForestConfig {
                        max_depth,
                        max_features: Some(max_features),
                        num_trees: 20,
                        seed,
                        ..ForestConfig::default()
                    };
                    let (mean, std, folds) =
                        cross_validate(data, k, seed, |train| RandomForest::fit(train, &config));
                    results.push((
                        CvResult {
                            description: format!(
                                "rf(max_depth={max_depth}, max_features={max_features})"
                            ),
                            mean_accuracy: mean,
                            std_accuracy: std,
                            folds,
                        },
                        TrainedClassifier::Forest(RandomForest::fit(data, &config)),
                    ));
                }
            }
        }
    }

    results.sort_by(|a, b| {
        b.0.mean_accuracy
            .partial_cmp(&a.0.mean_accuracy)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let best_model = results
        .first()
        .map(|(_, m)| m.clone())
        .expect("every grid has at least one configuration");
    let cv_results = results.into_iter().map(|(r, _)| r).collect();
    (best_model, cv_results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for i in 0..30 {
                let jitter = (i % 10) as f64 * 0.05;
                rows.push(vec![c as f64 * 4.0 + jitter, c as f64 * 4.0 - jitter]);
                labels.push(c);
            }
        }
        Dataset::from_rows(rows, labels)
    }

    #[test]
    fn cross_validate_reports_high_accuracy_on_easy_data() {
        let data = blobs();
        let (mean, std, folds) = cross_validate(&data, 5, 1, |train| {
            DecisionTree::fit(train, &CartConfig::default())
        });
        assert_eq!(folds, 5);
        assert!(mean > 0.9, "mean accuracy {mean}");
        assert!(std < 0.2);
    }

    #[test]
    fn tune_returns_sorted_results_and_strong_model() {
        let data = blobs();
        for kind in ClassifierKind::all() {
            let (model, results) = tune(kind, &data, 3, 1);
            assert!(!results.is_empty(), "{kind} produced no results");
            for w in results.windows(2) {
                assert!(w[0].mean_accuracy >= w[1].mean_accuracy - 1e-12);
            }
            assert!(
                model.accuracy(&data) > 0.9,
                "{kind} tuned accuracy {}",
                model.accuracy(&data)
            );
        }
    }

    #[test]
    fn cv_result_counts_folds_with_small_datasets() {
        let data = Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]],
            vec![0, 0, 1, 1],
        );
        let (_, _, folds) = cross_validate(&data, 10, 3, |train| {
            DecisionTree::fit(train, &CartConfig::default())
        });
        assert!(folds <= 4);
        assert!(folds >= 2);
    }
}
