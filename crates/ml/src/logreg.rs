//! Ridge-regularized multinomial logistic regression (`logreg`).
//!
//! A linear softmax classifier trained by full-batch gradient descent on the
//! cross-entropy loss with an L2 ("ridge") penalty on the weights — the
//! hyper-parameter the paper tunes for this model (Section 6.2). Features are
//! standardized internally so the fixed learning rate behaves across the very
//! different feature scales produced by the synthetic generator and the text
//! featurizer.

use crate::classifier::Classifier;
use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogRegConfig {
    /// Weight of the ridge (L2) penalty.
    pub l2: f64,
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Number of full-batch gradient steps.
    pub iterations: usize,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            l2: 1e-3,
            learning_rate: 0.5,
            iterations: 300,
        }
    }
}

/// A trained multinomial logistic regression model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// `num_classes × num_features` weight matrix (row-major).
    weights: Vec<f64>,
    /// Per-class bias terms.
    biases: Vec<f64>,
    /// Per-feature means used for standardization.
    feature_means: Vec<f64>,
    /// Per-feature standard deviations used for standardization.
    feature_stds: Vec<f64>,
    num_classes: usize,
    num_features: usize,
    /// Fallback class for degenerate inputs.
    majority_class: usize,
}

impl LogisticRegression {
    /// Trains the model on a dataset.
    pub fn fit(data: &Dataset, config: &LogRegConfig) -> Self {
        let num_classes = data.num_classes().max(1);
        let num_features = data.num_features();
        let majority_class = data.majority_class();
        let n = data.len();
        if n == 0 || num_features == 0 {
            return LogisticRegression {
                weights: vec![0.0; num_classes * num_features],
                biases: vec![0.0; num_classes],
                feature_means: vec![0.0; num_features],
                feature_stds: vec![1.0; num_features],
                num_classes,
                num_features,
                majority_class,
            };
        }

        // Standardize features.
        let mut means = vec![0.0f64; num_features];
        for row in data.rows() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        let mut stds = vec![0.0f64; num_features];
        for row in data.rows() {
            for ((s, &v), &m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        let standardized: Vec<Vec<f64>> = data
            .rows()
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&means)
                    .zip(&stds)
                    .map(|((&v, &m), &s)| (v - m) / s)
                    .collect()
            })
            .collect();

        let mut weights = vec![0.0f64; num_classes * num_features];
        let mut biases = vec![0.0f64; num_classes];
        let mut probs = vec![0.0f64; num_classes];
        let inv_n = 1.0 / n as f64;

        for _ in 0..config.iterations {
            let mut grad_w = vec![0.0f64; num_classes * num_features];
            let mut grad_b = vec![0.0f64; num_classes];
            for (row, &label) in standardized.iter().zip(data.labels()) {
                // softmax logits
                let mut max_logit = f64::NEG_INFINITY;
                for c in 0..num_classes {
                    let mut z = biases[c];
                    let w = &weights[c * num_features..(c + 1) * num_features];
                    for (wi, xi) in w.iter().zip(row) {
                        z += wi * xi;
                    }
                    probs[c] = z;
                    if z > max_logit {
                        max_logit = z;
                    }
                }
                let mut sum = 0.0;
                for p in probs.iter_mut() {
                    *p = (*p - max_logit).exp();
                    sum += *p;
                }
                for (c, p) in probs.iter_mut().enumerate() {
                    *p /= sum;
                    let err = *p - if c == label { 1.0 } else { 0.0 };
                    grad_b[c] += err * inv_n;
                    let gw = &mut grad_w[c * num_features..(c + 1) * num_features];
                    for (g, xi) in gw.iter_mut().zip(row) {
                        *g += err * xi * inv_n;
                    }
                }
            }
            // Ridge update with the decay factor clamped at zero so very
            // large penalties cannot make the step overshoot and diverge.
            let decay = (1.0 - config.learning_rate * config.l2).max(0.0);
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w = *w * decay - config.learning_rate * g;
            }
            for (b, g) in biases.iter_mut().zip(&grad_b) {
                *b -= config.learning_rate * g;
            }
        }

        LogisticRegression {
            weights,
            biases,
            feature_means: means,
            feature_stds: stds,
            num_classes,
            num_features,
            majority_class,
        }
    }

    /// Per-class scores (unnormalized logits) of a feature row.
    pub fn decision_function(&self, row: &[f64]) -> Vec<f64> {
        (0..self.num_classes)
            .map(|c| {
                let w = &self.weights[c * self.num_features..(c + 1) * self.num_features];
                let mut z = self.biases[c];
                for i in 0..self.num_features {
                    let x = row.get(i).copied().unwrap_or(0.0);
                    let standardized = (x - self.feature_means[i]) / self.feature_stds[i];
                    z += w[i] * standardized;
                }
                z
            })
            .collect()
    }

    /// Class-probability estimates (softmax of the decision function).
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let logits = self.decision_function(row);
        let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|z| (z - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Predicts the most likely class.
    pub fn predict(&self, row: &[f64]) -> usize {
        if self.num_features == 0 {
            return self.majority_class;
        }
        // Argmax with ties broken toward the smallest class index so
        // degenerate inputs (e.g. an untrained model) behave deterministically.
        let scores = self.decision_function(row);
        let mut best = self.majority_class.min(scores.len().saturating_sub(1));
        let mut best_score = f64::NEG_INFINITY;
        for (c, &s) in scores.iter().enumerate() {
            if s > best_score {
                best_score = s;
                best = c;
            }
        }
        best
    }

    /// Model-family name.
    pub fn name(&self) -> &'static str {
        "logreg"
    }
}

impl Classifier for LogisticRegression {
    fn predict(&self, row: &[f64]) -> usize {
        LogisticRegression::predict(self, row)
    }

    fn name(&self) -> &'static str {
        LogisticRegression::name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(num_classes: usize, per_class: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..num_classes {
            let center = (c as f64) * 10.0;
            for i in 0..per_class {
                let jitter = (i as f64 % 7.0) * 0.1;
                rows.push(vec![center + jitter, center - jitter]);
                labels.push(c);
            }
        }
        Dataset::from_rows(rows, labels)
    }

    #[test]
    fn fits_binary_separable_data() {
        let data = linearly_separable(2, 30);
        let model = LogisticRegression::fit(&data, &LogRegConfig::default());
        assert!(model.accuracy(&data) > 0.98);
    }

    #[test]
    fn fits_multiclass_separable_data() {
        let data = linearly_separable(5, 20);
        let model = LogisticRegression::fit(&data, &LogRegConfig::default());
        assert!(model.accuracy(&data) > 0.95);
    }

    #[test]
    fn probabilities_sum_to_one_and_favor_true_class() {
        let data = linearly_separable(3, 20);
        let model = LogisticRegression::fit(&data, &LogRegConfig::default());
        let probs = model.predict_proba(&[0.0, 0.0]);
        assert_eq!(probs.len(), 3);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs[0] > probs[1] && probs[0] > probs[2]);
    }

    #[test]
    fn strong_regularization_shrinks_weights() {
        let data = linearly_separable(2, 30);
        let loose = LogisticRegression::fit(
            &data,
            &LogRegConfig {
                l2: 1e-6,
                ..LogRegConfig::default()
            },
        );
        let tight = LogisticRegression::fit(
            &data,
            &LogRegConfig {
                l2: 10.0,
                ..LogRegConfig::default()
            },
        );
        let norm = |m: &LogisticRegression| m.weights.iter().map(|w| w * w).sum::<f64>();
        assert!(norm(&tight) < norm(&loose));
    }

    #[test]
    fn handles_constant_features_without_nan() {
        let data = Dataset::from_rows(
            vec![vec![1.0, 5.0], vec![1.0, 5.0], vec![1.0, 5.0]],
            vec![0, 0, 1],
        );
        let model = LogisticRegression::fit(&data, &LogRegConfig::default());
        let probs = model.predict_proba(&[1.0, 5.0]);
        assert!(probs.iter().all(|p| p.is_finite()));
        // ambiguous input: prediction still valid class
        assert!(model.predict(&[1.0, 5.0]) < 2);
    }

    #[test]
    fn empty_dataset_predicts_majority_class_zero() {
        let data = Dataset::new(3, 4);
        let model = LogisticRegression::fit(&data, &LogRegConfig::default());
        assert_eq!(model.predict(&[1.0, 2.0, 3.0]), 0);
    }

    #[test]
    fn short_rows_are_padded_with_zeros_at_prediction_time() {
        let data = linearly_separable(2, 10);
        let model = LogisticRegression::fit(&data, &LogRegConfig::default());
        // prediction with a 1-D row: missing feature treated as 0
        let p = model.predict(&[0.0]);
        assert!(p < 2);
    }
}
