//! Classification evaluation metrics.
//!
//! The bucket classifier's quality directly controls how well unseen
//! elements are estimated (Section 5.2), so the experiments report more than
//! raw accuracy: a confusion matrix over buckets, per-class precision and
//! recall, and the macro-averaged F1 score. These utilities are shared by the
//! tuning module and the benchmark harness.

use crate::classifier::Classifier;
use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// A confusion matrix over `num_classes` classes.
///
/// Entry `(true_class, predicted_class)` counts the examples of
/// `true_class` that the model predicted as `predicted_class`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
    num_classes: usize,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes > 0, "need at least one class");
        ConfusionMatrix {
            counts: vec![vec![0; num_classes]; num_classes],
            num_classes,
        }
    }

    /// Evaluates a trained classifier on a dataset.
    pub fn evaluate<C: Classifier>(model: &C, data: &Dataset) -> Self {
        let mut matrix = ConfusionMatrix::new(data.num_classes().max(1));
        for (row, &label) in data.rows().iter().zip(data.labels()) {
            let predicted = model.predict(row).min(matrix.num_classes - 1);
            matrix.record(label, predicted);
        }
        matrix
    }

    /// Records one `(true, predicted)` observation.
    pub fn record(&mut self, true_class: usize, predicted_class: usize) {
        assert!(true_class < self.num_classes, "true class out of range");
        assert!(
            predicted_class < self.num_classes,
            "predicted class out of range"
        );
        self.counts[true_class][predicted_class] += 1;
    }

    /// Number of classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Count of examples with the given true and predicted classes.
    pub fn count(&self, true_class: usize, predicted_class: usize) -> usize {
        self.counts[true_class][predicted_class]
    }

    /// Total number of recorded examples.
    pub fn total(&self) -> usize {
        self.counts
            .iter()
            .map(|row| row.iter().sum::<usize>())
            .sum()
    }

    /// Overall accuracy (diagonal mass over total); 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.num_classes).map(|c| self.counts[c][c]).sum();
        correct as f64 / total as f64
    }

    /// Precision of one class: `TP / (TP + FP)`; 0 when the class is never
    /// predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.counts[class][class];
        let predicted: usize = (0..self.num_classes).map(|t| self.counts[t][class]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of one class: `TP / (TP + FN)`; 0 when the class never occurs.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.counts[class][class];
        let actual: usize = self.counts[class].iter().sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 score of one class (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 over the classes that actually occur in the data.
    pub fn macro_f1(&self) -> f64 {
        let present: Vec<usize> = (0..self.num_classes)
            .filter(|&c| self.counts[c].iter().sum::<usize>() > 0)
            .collect();
        if present.is_empty() {
            return 0.0;
        }
        present.iter().map(|&c| self.f1(c)).sum::<f64>() / present.len() as f64
    }

    /// Classes ranked by how often they are confused (off-diagonal mass),
    /// useful for inspecting which buckets the classifier mixes up.
    pub fn most_confused_pairs(&self, top: usize) -> Vec<(usize, usize, usize)> {
        let mut pairs = Vec::new();
        for t in 0..self.num_classes {
            for p in 0..self.num_classes {
                if t != p && self.counts[t][p] > 0 {
                    pairs.push((t, p, self.counts[t][p]));
                }
            }
        }
        pairs.sort_by(|a, b| b.2.cmp(&a.2));
        pairs.truncate(top);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cart::{CartConfig, DecisionTree};

    fn matrix_from(pairs: &[(usize, usize)], classes: usize) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(classes);
        for &(t, p) in pairs {
            m.record(t, p);
        }
        m
    }

    #[test]
    fn accuracy_precision_recall_hand_checked() {
        // true 0 predicted 0 ×3, true 0 predicted 1 ×1, true 1 predicted 1 ×2
        let m = matrix_from(&[(0, 0), (0, 0), (0, 0), (0, 1), (1, 1), (1, 1)], 2);
        assert_eq!(m.total(), 6);
        assert!((m.accuracy() - 5.0 / 6.0).abs() < 1e-12);
        assert!((m.precision(0) - 1.0).abs() < 1e-12);
        assert!((m.recall(0) - 0.75).abs() < 1e-12);
        assert!((m.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall(1) - 1.0).abs() < 1e-12);
        let f1_0 = 2.0 * 1.0 * 0.75 / 1.75;
        assert!((m.f1(0) - f1_0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_absent_classes_are_zero_not_nan() {
        let m = ConfusionMatrix::new(3);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(2), 0.0);
        assert_eq!(m.recall(2), 0.0);
        assert_eq!(m.f1(2), 0.0);
        assert_eq!(m.macro_f1(), 0.0);
    }

    #[test]
    fn macro_f1_ignores_classes_with_no_examples() {
        // class 2 never occurs; macro-F1 averages classes 0 and 1 only
        let m = matrix_from(&[(0, 0), (1, 1)], 3);
        assert!((m.macro_f1() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn most_confused_pairs_are_sorted() {
        let m = matrix_from(&[(0, 1), (0, 1), (1, 2), (2, 0), (2, 0), (2, 0)], 3);
        let pairs = m.most_confused_pairs(2);
        assert_eq!(pairs[0], (2, 0, 3));
        assert_eq!(pairs[1], (0, 1, 2));
    }

    #[test]
    fn evaluate_wires_up_a_real_classifier() {
        let data = Dataset::from_rows(
            vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]],
            vec![0, 0, 1, 1],
        );
        let tree = DecisionTree::fit(&data, &CartConfig::default());
        let matrix = ConfusionMatrix::evaluate(&tree, &data);
        assert_eq!(matrix.total(), 4);
        assert!((matrix.accuracy() - 1.0).abs() < 1e-12);
        assert_eq!(matrix.count(0, 0), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn recording_out_of_range_class_panics() {
        let mut m = ConfusionMatrix::new(2);
        m.record(0, 5);
    }
}
