//! The common classifier interface and the model-family selector.

use crate::cart::{CartConfig, DecisionTree};
use crate::dataset::Dataset;
use crate::forest::{ForestConfig, RandomForest};
use crate::logreg::{LogRegConfig, LogisticRegression};
use serde::{Deserialize, Serialize};

/// A trained multi-class classifier mapping dense feature rows to class
/// labels (buckets).
pub trait Classifier {
    /// Predicts the class of one feature row.
    fn predict(&self, row: &[f64]) -> usize;

    /// Predicts the classes of many rows.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Fraction of correctly classified examples of a dataset.
    fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .rows()
            .iter()
            .zip(data.labels())
            .filter(|(row, &label)| self.predict(row) == label)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Human-readable model-family name (`logreg`, `cart`, `rf`).
    fn name(&self) -> &'static str;
}

/// Which model family to train — the axis Experiment 5 of the paper varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ClassifierKind {
    /// Multinomial logistic regression (`logreg`).
    LogisticRegression,
    /// CART decision tree (`cart`) — the paper's default for synthetic data.
    #[default]
    Cart,
    /// Random forest (`rf`) — the paper's choice for the query-log study.
    RandomForest,
}

impl ClassifierKind {
    /// All supported kinds, in the order the paper lists them.
    pub fn all() -> [ClassifierKind; 3] {
        [
            ClassifierKind::LogisticRegression,
            ClassifierKind::Cart,
            ClassifierKind::RandomForest,
        ]
    }

    /// The short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ClassifierKind::LogisticRegression => "logreg",
            ClassifierKind::Cart => "cart",
            ClassifierKind::RandomForest => "rf",
        }
    }

    /// Trains a classifier of this kind with its default hyper-parameters.
    pub fn fit(&self, data: &Dataset, seed: u64) -> TrainedClassifier {
        match self {
            ClassifierKind::LogisticRegression => {
                TrainedClassifier::LogReg(LogisticRegression::fit(data, &LogRegConfig::default()))
            }
            ClassifierKind::Cart => {
                TrainedClassifier::Cart(DecisionTree::fit(data, &CartConfig::default()))
            }
            ClassifierKind::RandomForest => TrainedClassifier::Forest(RandomForest::fit(
                data,
                &ForestConfig {
                    seed,
                    ..ForestConfig::default()
                },
            )),
        }
    }
}

impl std::fmt::Display for ClassifierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A trained classifier of any supported family, usable behind one type so
/// the `opt-hash` estimator does not need generics over the model family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TrainedClassifier {
    /// A trained multinomial logistic regression.
    LogReg(LogisticRegression),
    /// A trained CART decision tree.
    Cart(DecisionTree),
    /// A trained random forest.
    Forest(RandomForest),
}

impl Classifier for TrainedClassifier {
    fn predict(&self, row: &[f64]) -> usize {
        match self {
            TrainedClassifier::LogReg(m) => m.predict(row),
            TrainedClassifier::Cart(m) => m.predict(row),
            TrainedClassifier::Forest(m) => m.predict(row),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            TrainedClassifier::LogReg(m) => m.name(),
            TrainedClassifier::Cart(m) => m.name(),
            TrainedClassifier::Forest(m) => m.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let x = i as f64 * 0.05;
            rows.push(vec![x, x]);
            labels.push(0);
            rows.push(vec![x + 10.0, x + 10.0]);
            labels.push(1);
        }
        Dataset::from_rows(rows, labels)
    }

    #[test]
    fn every_kind_learns_a_separable_problem() {
        let data = separable();
        for kind in ClassifierKind::all() {
            let model = kind.fit(&data, 7);
            let acc = model.accuracy(&data);
            assert!(acc > 0.95, "{kind} accuracy {acc}");
            assert_eq!(model.name(), kind.name());
        }
    }

    #[test]
    fn predict_batch_matches_predict() {
        let data = separable();
        let model = ClassifierKind::Cart.fit(&data, 1);
        let batch = model.predict_batch(data.rows());
        for (i, &p) in batch.iter().enumerate() {
            assert_eq!(p, model.predict(&data.rows()[i]));
        }
    }

    #[test]
    fn accuracy_of_empty_dataset_is_zero() {
        let data = separable();
        let model = ClassifierKind::Cart.fit(&data, 1);
        let empty = Dataset::new(2, 2);
        assert_eq!(model.accuracy(&empty), 0.0);
    }

    #[test]
    fn kind_names_and_display() {
        assert_eq!(ClassifierKind::LogisticRegression.name(), "logreg");
        assert_eq!(ClassifierKind::Cart.to_string(), "cart");
        assert_eq!(ClassifierKind::RandomForest.to_string(), "rf");
        assert_eq!(ClassifierKind::all().len(), 3);
    }
}
