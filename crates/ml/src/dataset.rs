//! Dense training-set representation and splitting utilities.

use opthash_stream::Features;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A supervised multi-class dataset: one dense feature row and one integer
/// label per example.
///
/// In the `opt-hash` pipeline the rows are element features and the labels
/// are the buckets the solver assigned them to, so `num_classes` equals the
/// number of buckets `b`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
    num_classes: usize,
    num_features: usize,
}

impl Dataset {
    /// Creates an empty dataset expecting `num_features`-dimensional rows and
    /// labels in `[0, num_classes)`.
    pub fn new(num_features: usize, num_classes: usize) -> Self {
        Dataset {
            rows: Vec::new(),
            labels: Vec::new(),
            num_classes,
            num_features,
        }
    }

    /// Builds a dataset from parallel slices of feature vectors and labels.
    ///
    /// `num_classes` is inferred as `max(label) + 1` unless a larger value is
    /// given explicitly via [`Dataset::with_num_classes`].
    pub fn from_rows(rows: Vec<Vec<f64>>, labels: Vec<usize>) -> Self {
        assert_eq!(rows.len(), labels.len(), "rows and labels must align");
        let num_features = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|r| r.len() == num_features),
            "all rows must have the same dimension"
        );
        let num_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
        Dataset {
            rows,
            labels,
            num_classes,
            num_features,
        }
    }

    /// Builds a dataset from [`Features`] values (the representation used by
    /// the stream crate) and labels.
    pub fn from_features(features: &[Features], labels: &[usize]) -> Self {
        assert_eq!(
            features.len(),
            labels.len(),
            "features and labels must align"
        );
        let dim = features.iter().map(Features::dim).max().unwrap_or(0);
        let rows = features
            .iter()
            .map(|f| {
                let mut row = f.as_slice().to_vec();
                row.resize(dim, 0.0);
                row
            })
            .collect();
        Self::from_rows(rows, labels.to_vec())
    }

    /// Overrides the number of classes (useful when some buckets received no
    /// training example but must remain valid predictions).
    pub fn with_num_classes(mut self, num_classes: usize) -> Self {
        assert!(
            num_classes >= self.num_classes,
            "cannot shrink the class count below the observed labels"
        );
        self.num_classes = num_classes;
        self
    }

    /// Appends one example.
    pub fn push(&mut self, row: Vec<f64>, label: usize) {
        if self.rows.is_empty() && self.num_features == 0 {
            self.num_features = row.len();
        }
        assert_eq!(row.len(), self.num_features, "row dimension mismatch");
        self.rows.push(row);
        self.labels.push(label);
        if label >= self.num_classes {
            self.num_classes = label + 1;
        }
    }

    /// Number of examples.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the dataset has no examples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature dimensionality.
    #[inline]
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of classes (at least `max(label) + 1`).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The feature rows.
    #[inline]
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// The labels.
    #[inline]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// One example.
    pub fn example(&self, i: usize) -> (&[f64], usize) {
        (&self.rows[i], self.labels[i])
    }

    /// Builds a new dataset from a subset of example indices (with
    /// repetition allowed, supporting bootstrap sampling).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let rows = indices.iter().map(|&i| self.rows[i].clone()).collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset {
            rows,
            labels,
            num_classes: self.num_classes,
            num_features: self.num_features,
        }
    }

    /// Splits into `(train, test)` with the given `test_fraction`, shuffling
    /// deterministically with `seed`.
    pub fn train_test_split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            (0.0..1.0).contains(&test_fraction),
            "test fraction must lie in [0, 1)"
        );
        let mut indices: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let test_len = (self.len() as f64 * test_fraction).round() as usize;
        let (test_idx, train_idx) = indices.split_at(test_len);
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// Produces `k` cross-validation folds as `(train, validation)` pairs.
    pub fn k_folds(&self, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
        assert!(k >= 2, "need at least two folds");
        let mut indices: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let k = k.min(self.len().max(2));
        let fold_size = self.len().div_ceil(k);
        let mut folds = Vec::with_capacity(k);
        for f in 0..k {
            let start = f * fold_size;
            if start >= self.len() {
                break;
            }
            let end = ((f + 1) * fold_size).min(self.len());
            let val_idx: Vec<usize> = indices[start..end].to_vec();
            let train_idx: Vec<usize> = indices[..start]
                .iter()
                .chain(&indices[end..])
                .copied()
                .collect();
            folds.push((self.subset(&train_idx), self.subset(&val_idx)));
        }
        folds
    }

    /// Per-class example counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// The most frequent class (ties broken by the smaller label), or 0 for
    /// an empty dataset. Used as the fallback prediction.
    pub fn majority_class(&self) -> usize {
        self.class_counts()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(label, _)| label)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_rows(
            vec![
                vec![0.0, 0.0],
                vec![0.1, 0.2],
                vec![5.0, 5.0],
                vec![5.1, 4.9],
                vec![5.2, 5.1],
            ],
            vec![0, 0, 1, 1, 1],
        )
    }

    #[test]
    fn from_rows_infers_shape() {
        let d = toy();
        assert_eq!(d.len(), 5);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.example(2), (&[5.0, 5.0][..], 1));
        assert!(!d.is_empty());
    }

    #[test]
    fn from_features_pads_to_common_dimension() {
        let feats = vec![Features::new(vec![1.0]), Features::new(vec![2.0, 3.0])];
        let d = Dataset::from_features(&feats, &[0, 1]);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.rows()[0], vec![1.0, 0.0]);
    }

    #[test]
    fn push_grows_class_count() {
        let mut d = Dataset::new(2, 1);
        d.push(vec![1.0, 2.0], 0);
        d.push(vec![2.0, 3.0], 4);
        assert_eq!(d.num_classes(), 5);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn with_num_classes_extends_but_never_shrinks() {
        let d = toy().with_num_classes(7);
        assert_eq!(d.num_classes(), 7);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn with_num_classes_rejects_shrinking() {
        let _ = toy().with_num_classes(1);
    }

    #[test]
    fn subset_supports_bootstrap_repetition() {
        let d = toy();
        let s = d.subset(&[0, 0, 4]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels(), &[0, 0, 1]);
        assert_eq!(s.num_classes(), 2);
    }

    #[test]
    fn train_test_split_partitions_every_example() {
        let d = toy();
        let (train, test) = d.train_test_split(0.4, 3);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 2);
    }

    #[test]
    fn k_folds_cover_all_examples_exactly_once_as_validation() {
        let d = toy();
        let folds = d.k_folds(5, 1);
        let total_val: usize = folds.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total_val, d.len());
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), d.len());
        }
    }

    #[test]
    fn class_counts_and_majority() {
        let d = toy();
        assert_eq!(d.class_counts(), vec![2, 3]);
        assert_eq!(d.majority_class(), 1);
        assert_eq!(Dataset::new(2, 3).majority_class(), 0);
    }

    #[test]
    #[should_panic(expected = "rows and labels must align")]
    fn mismatched_lengths_panic() {
        let _ = Dataset::from_rows(vec![vec![1.0]], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "same dimension")]
    fn ragged_rows_panic() {
        let _ = Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }
}
