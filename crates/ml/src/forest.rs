//! Random-forest classifier (`rf`).
//!
//! A bagged ensemble of CART trees: each tree is trained on a bootstrap
//! resample of the training set and examines only a random subset of the
//! features at every split (`max_features`, defaulting to ⌈√d⌉). Predictions
//! are made by majority vote. The paper tunes the maximum depth and the
//! per-split feature count for this model (Section 6.2) and selects it as the
//! classifier for the search-query study (Section 7.3).

use crate::cart::{CartConfig, DecisionTree};
use crate::classifier::Classifier;
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees in the ensemble.
    pub num_trees: usize,
    /// Maximum depth of each tree.
    pub max_depth: usize,
    /// Features examined per split; `None` = ⌈√(num_features)⌉.
    pub max_features: Option<usize>,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// RNG seed controlling bootstrap resampling and feature subsampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            num_trees: 30,
            max_depth: 14,
            max_features: None,
            min_samples_split: 2,
            seed: 0,
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    num_classes: usize,
}

impl RandomForest {
    /// Trains the forest on a dataset.
    pub fn fit(data: &Dataset, config: &ForestConfig) -> Self {
        assert!(config.num_trees > 0, "forest needs at least one tree");
        let num_classes = data.num_classes().max(1);
        if data.is_empty() {
            return RandomForest {
                trees: vec![DecisionTree::fit(data, &CartConfig::default())],
                num_classes,
            };
        }
        let max_features = config
            .max_features
            .unwrap_or_else(|| (data.num_features() as f64).sqrt().ceil().max(1.0) as usize);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = data.len();
        let trees = (0..config.num_trees)
            .map(|t| {
                let bootstrap: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                let sample = data.subset(&bootstrap).with_num_classes(num_classes);
                let cart_config = CartConfig {
                    max_depth: config.max_depth,
                    min_samples_split: config.min_samples_split,
                    min_impurity_decrease: 0.0,
                    max_features: Some(max_features),
                    seed: config.seed.wrapping_add(t as u64 + 1),
                };
                DecisionTree::fit(&sample, &cart_config)
            })
            .collect();
        RandomForest { trees, num_classes }
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Per-class vote fractions for a row.
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut votes = vec![0usize; self.num_classes];
        for tree in &self.trees {
            let class = tree.predict(row);
            if class < self.num_classes {
                votes[class] += 1;
            }
        }
        let total = self.trees.len() as f64;
        votes.into_iter().map(|v| v as f64 / total).collect()
    }

    /// Predicts the majority-vote class.
    pub fn predict(&self, row: &[f64]) -> usize {
        let probs = self.predict_proba(row);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    /// Model-family name.
    pub fn name(&self) -> &'static str {
        "rf"
    }
}

impl Classifier for RandomForest {
    fn predict(&self, row: &[f64]) -> usize {
        RandomForest::predict(self, row)
    }

    fn name(&self) -> &'static str {
        RandomForest::name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_clusters(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..4usize {
            let cx = (c % 2) as f64 * 8.0;
            let cy = (c / 2) as f64 * 8.0;
            for _ in 0..40 {
                rows.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    cy + rng.gen_range(-1.0..1.0),
                ]);
                labels.push(c);
            }
        }
        Dataset::from_rows(rows, labels)
    }

    #[test]
    fn learns_clustered_data_well() {
        let data = noisy_clusters(1);
        let forest = RandomForest::fit(&data, &ForestConfig::default());
        assert!(forest.accuracy(&data) > 0.95);
        assert_eq!(forest.num_trees(), 30);
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let data = noisy_clusters(2);
        let (train, test) = data.train_test_split(0.3, 7);
        let forest = RandomForest::fit(&train, &ForestConfig::default());
        assert!(
            forest.accuracy(&test) > 0.9,
            "accuracy {}",
            forest.accuracy(&test)
        );
    }

    #[test]
    fn vote_fractions_sum_to_one() {
        let data = noisy_clusters(3);
        let forest = RandomForest::fit(&data, &ForestConfig::default());
        let probs = forest.predict_proba(&[0.0, 0.0]);
        assert_eq!(probs.len(), 4);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = noisy_clusters(4);
        let a = RandomForest::fit(
            &data,
            &ForestConfig {
                seed: 9,
                ..ForestConfig::default()
            },
        );
        let b = RandomForest::fit(
            &data,
            &ForestConfig {
                seed: 9,
                ..ForestConfig::default()
            },
        );
        for row in data.rows().iter().take(20) {
            assert_eq!(a.predict(row), b.predict(row));
        }
    }

    #[test]
    fn single_tree_forest_works() {
        let data = noisy_clusters(5);
        let forest = RandomForest::fit(
            &data,
            &ForestConfig {
                num_trees: 1,
                ..ForestConfig::default()
            },
        );
        assert_eq!(forest.num_trees(), 1);
        assert!(forest.accuracy(&data) > 0.8);
    }

    #[test]
    fn empty_dataset_predicts_class_zero() {
        let data = Dataset::new(2, 3);
        let forest = RandomForest::fit(&data, &ForestConfig::default());
        assert_eq!(forest.predict(&[1.0, 1.0]), 0);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let data = noisy_clusters(6);
        let _ = RandomForest::fit(
            &data,
            &ForestConfig {
                num_trees: 0,
                ..ForestConfig::default()
            },
        );
    }
}
