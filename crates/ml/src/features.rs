//! Text featurization for search queries (Section 7.3).
//!
//! The paper builds a simple, interpretable feature vector per query:
//!
//! * a bag-of-words over the 500 most common words of the training queries,
//! * the number of ASCII characters in the query text,
//! * the number of punctuation marks,
//! * the number of dots, and
//! * the number of whitespace characters.
//!
//! [`TextFeaturizer`] fits the vocabulary on the training queries and
//! transforms any query string into that representation; the raw character
//! counts are also exposed as [`QueryFeatures`] so experiments can report
//! feature importances in the paper's terms.

use opthash_stream::Features;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The four character-count features the paper appends to the bag-of-words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryFeatures {
    /// Number of ASCII characters in the query text.
    pub ascii_chars: usize,
    /// Number of ASCII punctuation marks.
    pub punctuation: usize,
    /// Number of dots.
    pub dots: usize,
    /// Number of whitespace characters.
    pub whitespace: usize,
}

impl QueryFeatures {
    /// Computes the character-count features of a query string.
    pub fn of(query: &str) -> Self {
        let mut ascii_chars = 0;
        let mut punctuation = 0;
        let mut dots = 0;
        let mut whitespace = 0;
        for ch in query.chars() {
            if ch.is_ascii() {
                ascii_chars += 1;
            }
            if ch.is_ascii_punctuation() {
                punctuation += 1;
            }
            if ch == '.' {
                dots += 1;
            }
            if ch.is_whitespace() {
                whitespace += 1;
            }
        }
        QueryFeatures {
            ascii_chars,
            punctuation,
            dots,
            whitespace,
        }
    }

    /// The counts as a fixed-order `f64` vector
    /// (`[ascii, punctuation, dots, whitespace]`).
    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.ascii_chars as f64,
            self.punctuation as f64,
            self.dots as f64,
            self.whitespace as f64,
        ]
    }
}

/// Splits a query into lowercase word tokens, treating any non-alphanumeric
/// character as a separator (so `"www.google.com"` yields `www`, `google`,
/// `com`).
pub fn tokenize(query: &str) -> Vec<String> {
    query
        .to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect()
}

/// Bag-of-words + character-count featurizer for query strings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TextFeaturizer {
    /// Vocabulary words in frequency order; index in this list = feature
    /// index.
    vocabulary: Vec<String>,
    /// Word → feature index.
    index: HashMap<String, usize>,
}

impl TextFeaturizer {
    /// Fits a featurizer on training queries, keeping the `vocab_size` most
    /// common words (ties broken lexicographically for determinism). The
    /// paper uses `vocab_size = 500`.
    pub fn fit<'a, I>(queries: I, vocab_size: usize) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for q in queries {
            for token in tokenize(q) {
                *counts.entry(token).or_insert(0) += 1;
            }
        }
        let mut words: Vec<(String, usize)> = counts.into_iter().collect();
        words.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        words.truncate(vocab_size);
        let vocabulary: Vec<String> = words.into_iter().map(|(w, _)| w).collect();
        let index = vocabulary
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        TextFeaturizer { vocabulary, index }
    }

    /// Number of bag-of-words dimensions.
    pub fn vocab_size(&self) -> usize {
        self.vocabulary.len()
    }

    /// Total feature dimensionality (vocabulary + 4 count features).
    pub fn dim(&self) -> usize {
        self.vocabulary.len() + 4
    }

    /// The fitted vocabulary, most common word first.
    pub fn vocabulary(&self) -> &[String] {
        &self.vocabulary
    }

    /// Transforms one query into its feature vector: word counts over the
    /// vocabulary followed by the four character counts.
    pub fn transform(&self, query: &str) -> Features {
        let mut values = vec![0.0f64; self.dim()];
        for token in tokenize(query) {
            if let Some(&i) = self.index.get(&token) {
                values[i] += 1.0;
            }
        }
        let counts = QueryFeatures::of(query).to_vec();
        let offset = self.vocabulary.len();
        values[offset..offset + 4].copy_from_slice(&counts);
        Features::new(values)
    }

    /// Transforms many queries.
    pub fn transform_batch<'a, I>(&self, queries: I) -> Vec<Features>
    where
        I: IntoIterator<Item = &'a str>,
    {
        queries.into_iter().map(|q| self.transform(q)).collect()
    }

    /// Human-readable name of a feature index (a vocabulary word or one of
    /// the count features), useful for the interpretability discussion of
    /// Section 7.4.
    pub fn feature_name(&self, index: usize) -> String {
        if index < self.vocabulary.len() {
            format!("word:{}", self.vocabulary[index])
        } else {
            match index - self.vocabulary.len() {
                0 => "count:ascii_chars".to_owned(),
                1 => "count:punctuation".to_owned(),
                2 => "count:dots".to_owned(),
                3 => "count:whitespace".to_owned(),
                _ => format!("feature:{index}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_features_count_characters() {
        let f = QueryFeatures::of("www.google.com search");
        assert_eq!(f.dots, 2);
        assert_eq!(f.whitespace, 1);
        assert_eq!(f.punctuation, 2); // the two dots
        assert_eq!(f.ascii_chars, "www.google.com search".len());
        assert_eq!(f.to_vec().len(), 4);
    }

    #[test]
    fn tokenize_splits_on_non_alphanumeric_and_lowercases() {
        assert_eq!(tokenize("WWW.Google.com"), vec!["www", "google", "com"]);
        assert_eq!(tokenize("sharon stone"), vec!["sharon", "stone"]);
        assert!(tokenize("...").is_empty());
    }

    #[test]
    fn fit_keeps_most_common_words() {
        let queries = [
            "google maps",
            "google mail",
            "google",
            "yahoo mail",
            "weather",
        ];
        let tf = TextFeaturizer::fit(queries.iter().copied(), 3);
        assert_eq!(tf.vocab_size(), 3);
        assert_eq!(tf.vocabulary()[0], "google");
        assert_eq!(tf.vocabulary()[1], "mail");
        assert_eq!(tf.dim(), 7);
    }

    #[test]
    fn transform_counts_vocabulary_words_and_appends_counts() {
        let tf = TextFeaturizer::fit(["google google mail", "yahoo"].iter().copied(), 10);
        let f = tf.transform("google mail google.com");
        // "google" appears twice, "mail" once
        let google_idx = tf.vocabulary().iter().position(|w| w == "google").unwrap();
        let mail_idx = tf.vocabulary().iter().position(|w| w == "mail").unwrap();
        assert_eq!(f[google_idx], 2.0);
        assert_eq!(f[mail_idx], 1.0);
        // the last four entries are the character counts
        let dim = tf.dim();
        assert_eq!(f[dim - 2], 1.0); // one dot
        assert_eq!(f[dim - 1], 2.0); // two whitespace characters
    }

    #[test]
    fn out_of_vocabulary_words_are_ignored() {
        let tf = TextFeaturizer::fit(["alpha beta"].iter().copied(), 10);
        let f = tf.transform("gamma delta");
        let word_part: f64 = f.as_slice()[..tf.vocab_size()].iter().sum();
        assert_eq!(word_part, 0.0);
    }

    #[test]
    fn feature_names_cover_words_and_counts() {
        let tf = TextFeaturizer::fit(["hello world"].iter().copied(), 10);
        assert!(tf.feature_name(0).starts_with("word:"));
        assert_eq!(tf.feature_name(tf.vocab_size()), "count:ascii_chars");
        assert_eq!(tf.feature_name(tf.vocab_size() + 3), "count:whitespace");
    }

    #[test]
    fn transform_batch_is_elementwise_transform() {
        let tf = TextFeaturizer::fit(["a b", "a c"].iter().copied(), 5);
        let batch = tf.transform_batch(["a b", "c"].iter().copied());
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], tf.transform("a b"));
    }

    #[test]
    fn empty_training_set_produces_count_only_features() {
        let tf = TextFeaturizer::fit(std::iter::empty(), 500);
        assert_eq!(tf.vocab_size(), 0);
        assert_eq!(tf.dim(), 4);
        let f = tf.transform("whatever query.");
        assert_eq!(f.dim(), 4);
        assert!(f[0] > 0.0);
    }
}
