//! # opthash-ml
//!
//! From-scratch machine-learning components used by the learned hashing
//! scheme. Once the solver has assigned the prefix elements to buckets, a
//! multi-class classifier is trained on `(features, bucket)` pairs so that
//! *unseen* elements can be routed to the bucket of similar elements
//! (Section 5.2 of the paper). Three model families are provided, matching
//! the paper's experiments (Section 6.2):
//!
//! * [`LogisticRegression`] — ridge-regularized multinomial logistic
//!   regression trained with full-batch gradient descent (`logreg`),
//! * [`DecisionTree`] — a CART classifier with Gini impurity, maximum depth
//!   and minimum-impurity-decrease pruning (`cart`),
//! * [`RandomForest`] — a bagged ensemble of CART trees with per-split
//!   feature subsampling (`rf`).
//!
//! Supporting modules:
//!
//! * [`dataset`] — the dense `(features, label)` training-set representation
//!   plus splitting utilities,
//! * [`tuning`] — k-fold cross-validation and grid search over each model's
//!   hyper-parameters, mirroring the 10-fold tuning of the paper,
//! * [`features`] — the bag-of-words + character-count text featurizer used
//!   for search-query experiments (Section 7.3).
//!
//! ```
//! use opthash_ml::{Classifier, ClassifierKind, Dataset};
//!
//! // Two linearly separable classes in one dimension.
//! let rows = vec![vec![0.1], vec![0.2], vec![0.9], vec![1.0]];
//! let labels = vec![0, 0, 1, 1];
//! let data = Dataset::from_rows(rows, labels);
//! let model = ClassifierKind::Cart.fit(&data, 1);
//! assert_eq!(model.predict(&[0.15]), 0);
//! assert_eq!(model.predict(&[0.95]), 1);
//! assert!(model.accuracy(&data) > 0.99);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cart;
pub mod classifier;
pub mod dataset;
pub mod features;
pub mod forest;
pub mod logreg;
pub mod metrics;
pub mod tuning;

pub use cart::{CartConfig, DecisionTree};
pub use classifier::{Classifier, ClassifierKind, TrainedClassifier};
pub use dataset::Dataset;
pub use features::{QueryFeatures, TextFeaturizer};
pub use forest::{ForestConfig, RandomForest};
pub use logreg::{LogRegConfig, LogisticRegression};
pub use metrics::ConfusionMatrix;
pub use tuning::{cross_validate, tune, CvResult};
