//! CART decision-tree classifier (`cart`).
//!
//! A binary classification tree grown by recursively choosing the
//! axis-aligned split that maximizes the Gini impurity decrease. Growth stops
//! at a maximum depth, a minimum number of samples per split, or when the
//! best split's impurity decrease falls below a threshold — the two
//! hyper-parameters the paper tunes for this model (Section 6.2).

use crate::classifier::Classifier;
use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CartConfig {
    /// Maximum tree depth (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of examples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum weighted Gini impurity decrease required to accept a split.
    pub min_impurity_decrease: f64,
    /// Optional cap on the number of features examined per split
    /// (`None` = all features). Random forests set this to √d.
    pub max_features: Option<usize>,
    /// Seed for the feature subsampling (only used when `max_features` is
    /// set).
    pub seed: u64,
}

impl Default for CartConfig {
    fn default() -> Self {
        CartConfig {
            max_depth: 12,
            min_samples_split: 2,
            min_impurity_decrease: 0.0,
            max_features: None,
            seed: 0,
        }
    }
}

/// One node of the tree, stored in a flat arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Arena index of the subtree for `row[feature] <= threshold`.
        left: usize,
        /// Arena index of the subtree for `row[feature] > threshold`.
        right: usize,
    },
}

/// A trained CART decision tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    num_classes: usize,
    depth: usize,
}

/// Gini impurity of a label multiset given per-class counts and the total.
fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

fn majority(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(c, _)| c)
        .unwrap_or(0)
}

impl DecisionTree {
    /// Trains a tree on a dataset.
    pub fn fit(data: &Dataset, config: &CartConfig) -> Self {
        let num_classes = data.num_classes().max(1);
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            num_classes,
            depth: 0,
        };
        if data.is_empty() {
            tree.nodes.push(Node::Leaf { class: 0 });
            return tree;
        }
        let indices: Vec<usize> = (0..data.len()).collect();
        // Simple xorshift for feature subsampling, seeded per tree.
        let mut rng_state = config.seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        tree.build(data, indices, 0, config, &mut rng_state);
        tree
    }

    fn build(
        &mut self,
        data: &Dataset,
        indices: Vec<usize>,
        depth: usize,
        config: &CartConfig,
        rng_state: &mut u64,
    ) -> usize {
        self.depth = self.depth.max(depth);
        let mut counts = vec![0usize; self.num_classes];
        for &i in &indices {
            counts[data.labels()[i]] += 1;
        }
        let node_impurity = gini(&counts, indices.len());
        let leaf_class = majority(&counts);

        let stop = depth >= config.max_depth
            || indices.len() < config.min_samples_split
            || node_impurity == 0.0;
        if stop {
            self.nodes.push(Node::Leaf { class: leaf_class });
            return self.nodes.len() - 1;
        }

        let best = self.best_split(data, &indices, &counts, node_impurity, config, rng_state);
        match best {
            None => {
                self.nodes.push(Node::Leaf { class: leaf_class });
                self.nodes.len() - 1
            }
            Some((feature, threshold, _decrease)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .into_iter()
                    .partition(|&i| data.rows()[i][feature] <= threshold);
                // Guard against degenerate splits (shouldn't happen given the
                // threshold is a midpoint of two distinct values).
                if left_idx.is_empty() || right_idx.is_empty() {
                    self.nodes.push(Node::Leaf { class: leaf_class });
                    return self.nodes.len() - 1;
                }
                // Reserve this node's slot before recursing so the arena
                // index is stable.
                let my_index = self.nodes.len();
                self.nodes.push(Node::Leaf { class: leaf_class });
                let left = self.build(data, left_idx, depth + 1, config, rng_state);
                let right = self.build(data, right_idx, depth + 1, config, rng_state);
                self.nodes[my_index] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                my_index
            }
        }
    }

    /// Finds the best (feature, threshold) split, returning the impurity
    /// decrease, or `None` if no split clears `min_impurity_decrease`.
    fn best_split(
        &self,
        data: &Dataset,
        indices: &[usize],
        parent_counts: &[usize],
        parent_impurity: f64,
        config: &CartConfig,
        rng_state: &mut u64,
    ) -> Option<(usize, f64, f64)> {
        let num_features = data.num_features();
        let n = indices.len() as f64;

        // Choose which features to examine.
        let features: Vec<usize> = match config.max_features {
            None => (0..num_features).collect(),
            Some(k) if k >= num_features => (0..num_features).collect(),
            Some(k) => {
                // Partial Fisher-Yates using the xorshift state.
                let mut all: Vec<usize> = (0..num_features).collect();
                for pos in 0..k {
                    *rng_state ^= *rng_state << 13;
                    *rng_state ^= *rng_state >> 7;
                    *rng_state ^= *rng_state << 17;
                    let swap = pos + (*rng_state as usize) % (num_features - pos);
                    all.swap(pos, swap);
                }
                all.truncate(k);
                all
            }
        };

        let mut best: Option<(usize, f64, f64)> = None;
        for &feature in &features {
            // Sort the node's examples by this feature value.
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|&a, &b| {
                data.rows()[a][feature]
                    .partial_cmp(&data.rows()[b][feature])
                    .unwrap()
            });
            let mut left_counts = vec![0usize; self.num_classes];
            let mut right_counts = parent_counts.to_vec();
            for w in 0..order.len() - 1 {
                let i = order[w];
                let label = data.labels()[i];
                left_counts[label] += 1;
                right_counts[label] -= 1;
                let v = data.rows()[i][feature];
                let v_next = data.rows()[order[w + 1]][feature];
                if v == v_next {
                    continue; // cannot split between equal values
                }
                let left_n = w + 1;
                let right_n = order.len() - left_n;
                let weighted = (left_n as f64 / n) * gini(&left_counts, left_n)
                    + (right_n as f64 / n) * gini(&right_counts, right_n);
                let decrease = parent_impurity - weighted;
                if decrease >= config.min_impurity_decrease
                    && best.map_or(true, |(_, _, d)| decrease > d)
                {
                    best = Some((feature, 0.5 * (v + v_next), decrease));
                }
            }
        }
        best
    }

    /// Predicts the class of one feature row.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let value = row.get(*feature).copied().unwrap_or(0.0);
                    node = if value <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the deepest node.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Model-family name.
    pub fn name(&self) -> &'static str {
        "cart"
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, row: &[f64]) -> usize {
        DecisionTree::predict(self, row)
    }

    fn name(&self) -> &'static str {
        DecisionTree::name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        // Nonlinear problem a linear model cannot solve but a depth-2 tree can.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            let jitter = i as f64 * 0.01;
            rows.push(vec![0.0 + jitter, 0.0 + jitter]);
            labels.push(0);
            rows.push(vec![1.0 + jitter, 1.0 + jitter]);
            labels.push(0);
            rows.push(vec![0.0 + jitter, 1.0 + jitter]);
            labels.push(1);
            rows.push(vec![1.0 + jitter, 0.0 + jitter]);
            labels.push(1);
        }
        Dataset::from_rows(rows, labels)
    }

    #[test]
    fn learns_xor_perfectly() {
        let data = xor_dataset();
        let tree = DecisionTree::fit(&data, &CartConfig::default());
        assert_eq!(tree.accuracy(&data), 1.0);
    }

    #[test]
    fn depth_limit_is_respected() {
        let data = xor_dataset();
        let stump = DecisionTree::fit(
            &data,
            &CartConfig {
                max_depth: 1,
                ..CartConfig::default()
            },
        );
        assert!(stump.depth() <= 1);
        // A depth-1 stump cannot solve XOR
        assert!(stump.accuracy(&data) < 0.8);
    }

    #[test]
    fn pure_node_becomes_leaf_immediately() {
        let data = Dataset::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]], vec![1, 1, 1]);
        let tree = DecisionTree::fit(&data, &CartConfig::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[42.0]), 1);
    }

    #[test]
    fn min_impurity_decrease_prunes_marginal_splits() {
        // Nearly pure data: one lone minority example.
        let mut rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let mut labels = vec![0usize; 50];
        rows.push(vec![25.5]);
        labels.push(1);
        let data = Dataset::from_rows(rows, labels);
        let aggressive = DecisionTree::fit(
            &data,
            &CartConfig {
                min_impurity_decrease: 0.2,
                ..CartConfig::default()
            },
        );
        assert_eq!(aggressive.node_count(), 1, "should collapse to a leaf");
        let lenient = DecisionTree::fit(&data, &CartConfig::default());
        assert!(lenient.node_count() > 1);
    }

    #[test]
    fn multiclass_separable_is_learned() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..6usize {
            for i in 0..15 {
                rows.push(vec![c as f64 * 5.0 + (i as f64) * 0.05, (i % 3) as f64]);
                labels.push(c);
            }
        }
        let data = Dataset::from_rows(rows, labels);
        let tree = DecisionTree::fit(&data, &CartConfig::default());
        assert!(tree.accuracy(&data) > 0.98);
    }

    #[test]
    fn empty_dataset_yields_single_leaf() {
        let data = Dataset::new(3, 2);
        let tree = DecisionTree::fit(&data, &CartConfig::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[0.0, 0.0, 0.0]), 0);
    }

    #[test]
    fn identical_rows_with_conflicting_labels_fall_back_to_majority() {
        let data = Dataset::from_rows(vec![vec![1.0, 1.0]; 5], vec![0, 1, 1, 1, 0]);
        let tree = DecisionTree::fit(&data, &CartConfig::default());
        assert_eq!(tree.predict(&[1.0, 1.0]), 1);
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn feature_subsampling_still_learns_reasonably() {
        let data = xor_dataset();
        let tree = DecisionTree::fit(
            &data,
            &CartConfig {
                max_features: Some(1),
                seed: 5,
                ..CartConfig::default()
            },
        );
        // With only one of two features per split it may need extra depth but
        // should still fit training data well.
        assert!(tree.accuracy(&data) > 0.9);
    }

    #[test]
    fn predictions_with_short_rows_use_zero_padding() {
        let data = xor_dataset();
        let tree = DecisionTree::fit(&data, &CartConfig::default());
        let p = tree.predict(&[0.0]);
        assert!(p < 2);
    }

    #[test]
    fn gini_helper_values() {
        assert_eq!(gini(&[0, 0], 0), 0.0);
        assert_eq!(gini(&[5, 0], 5), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert!((gini(&[1, 1, 1, 1], 4) - 0.75).abs() < 1e-12);
    }
}
