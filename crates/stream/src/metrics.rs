//! Evaluation metrics.
//!
//! Two families of metrics appear in the paper:
//!
//! * **Stream-level estimation quality** (Section 7.4): the *average
//!   per-element absolute error* `1/|U_t| Σ |f_u − f̃_u|` and the *expected
//!   magnitude of the absolute error* `1/Σf_u Σ f_u·|f_u − f̃_u|`. These are
//!   computed by [`ErrorMetrics`] over any set of query elements.
//! * **Prefix objective terms** (Section 4.1): the *estimation error*
//!   `Σ_j Σ_{i∈I_j} |f⁰_i − μ_j|` and the *similarity error*
//!   `Σ_j Σ_{(i,k)∈I_j×I_j} ‖x_i − x_k‖₂` of a bucket assignment, plus their
//!   λ-weighted combination. These are computed by [`assignment_errors`] and
//!   are exactly the quantities plotted in Figures 2–6.

use crate::element::Features;
use serde::{Deserialize, Serialize};

/// Aggregate error of an estimator over a set of query elements.
///
/// Build it incrementally with [`ErrorMetrics::observe`] (one call per
/// queried element with its true and estimated frequency) and read the two
/// paper metrics from [`ErrorMetrics::average_absolute_error`] and
/// [`ErrorMetrics::expected_absolute_error`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorMetrics {
    /// Number of observed (queried) elements.
    pub count: usize,
    /// Sum of absolute errors `Σ |f_u − f̃_u|`.
    pub sum_absolute_error: f64,
    /// Frequency-weighted sum of absolute errors `Σ f_u·|f_u − f̃_u|`.
    pub sum_weighted_error: f64,
    /// Sum of true frequencies `Σ f_u`.
    pub sum_true_frequency: f64,
    /// Sum of squared errors (not a paper metric; handy for variance checks).
    pub sum_squared_error: f64,
    /// Largest single absolute error observed.
    pub max_absolute_error: f64,
}

impl ErrorMetrics {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one queried element with true frequency `true_f` and estimate
    /// `estimated_f`.
    pub fn observe(&mut self, true_f: f64, estimated_f: f64) {
        let err = (true_f - estimated_f).abs();
        self.count += 1;
        self.sum_absolute_error += err;
        self.sum_weighted_error += true_f * err;
        self.sum_true_frequency += true_f;
        self.sum_squared_error += err * err;
        if err > self.max_absolute_error {
            self.max_absolute_error = err;
        }
    }

    /// Convenience constructor from parallel slices of true and estimated
    /// frequencies.
    pub fn from_slices(true_f: &[f64], estimated_f: &[f64]) -> Self {
        assert_eq!(
            true_f.len(),
            estimated_f.len(),
            "true and estimated frequency slices must have equal length"
        );
        let mut m = Self::new();
        for (&t, &e) in true_f.iter().zip(estimated_f) {
            m.observe(t, e);
        }
        m
    }

    /// Average per-element absolute error `1/|U| Σ |f_u − f̃_u|`
    /// (left column of Figures 7–8). Zero for an empty accumulator.
    pub fn average_absolute_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_absolute_error / self.count as f64
        }
    }

    /// Expected magnitude of the absolute error
    /// `1/Σf_u Σ f_u·|f_u − f̃_u|` (right column of Figures 7–8). Zero when no
    /// frequency mass has been observed.
    pub fn expected_absolute_error(&self) -> f64 {
        if self.sum_true_frequency == 0.0 {
            0.0
        } else {
            self.sum_weighted_error / self.sum_true_frequency
        }
    }

    /// Root mean squared error (supporting metric, not in the paper).
    pub fn rmse(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_squared_error / self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &ErrorMetrics) {
        self.count += other.count;
        self.sum_absolute_error += other.sum_absolute_error;
        self.sum_weighted_error += other.sum_weighted_error;
        self.sum_true_frequency += other.sum_true_frequency;
        self.sum_squared_error += other.sum_squared_error;
        self.max_absolute_error = self.max_absolute_error.max(other.max_absolute_error);
    }
}

/// The two objective terms of Problem (1) evaluated on a concrete bucket
/// assignment, plus their λ-weighted combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssignmentErrors {
    /// `Σ_j Σ_{i∈I_j} |f⁰_i − μ_j|` — the estimation error term.
    pub estimation_error: f64,
    /// `Σ_j Σ_{(i,k)∈I_j×I_j, i≠k} ‖x_i − x_k‖₂` — the similarity error term.
    ///
    /// Following Algorithm 1 of the paper the sum ranges over ordered pairs,
    /// so each unordered pair contributes twice.
    pub similarity_error: f64,
    /// The λ used to combine the two terms.
    pub lambda: f64,
}

impl AssignmentErrors {
    /// `λ·estimation + (1−λ)·similarity` — the objective of Problem (1).
    pub fn overall_error(&self) -> f64 {
        self.lambda * self.estimation_error + (1.0 - self.lambda) * self.similarity_error
    }

    /// Per-element estimation error (the scale used from Experiment 2 on).
    pub fn estimation_error_per_element(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.estimation_error / n as f64
        }
    }

    /// Per-ordered-pair similarity error (the scale used from Experiment 2
    /// on). `pairs` should be the number of ordered co-bucketed pairs; when 0
    /// the error is 0 by convention.
    pub fn similarity_error_per_pair(&self, pairs: usize) -> f64 {
        if pairs == 0 {
            0.0
        } else {
            self.similarity_error / pairs as f64
        }
    }
}

/// Evaluates the Problem (1) objective terms for an assignment of `n`
/// elements to buckets.
///
/// * `frequencies[i]` is `f⁰_i`,
/// * `features[i]` is `x_i` (pass an empty slice or empty features when
///   `lambda == 1.0`; the similarity term is then 0),
/// * `assignment[i] ∈ [0, buckets)` is the bucket of element `i`.
///
/// Returns the estimation error, similarity error and λ so callers can also
/// inspect the per-term values, exactly as the synthetic experiments report
/// them.
///
/// # Panics
/// Panics if the slice lengths disagree or an assignment index is out of
/// range.
pub fn assignment_errors(
    frequencies: &[f64],
    features: &[Features],
    assignment: &[usize],
    buckets: usize,
    lambda: f64,
) -> AssignmentErrors {
    assert_eq!(
        frequencies.len(),
        assignment.len(),
        "frequencies and assignment must align"
    );
    if !features.is_empty() {
        assert_eq!(
            features.len(),
            assignment.len(),
            "features and assignment must align"
        );
    }
    let n = frequencies.len();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); buckets];
    for (i, &j) in assignment.iter().enumerate() {
        assert!(
            j < buckets,
            "assignment[{i}] = {j} out of range ({buckets} buckets)"
        );
        members[j].push(i);
    }

    let mut estimation_error = 0.0;
    let mut similarity_error = 0.0;
    for bucket in &members {
        if bucket.is_empty() {
            continue;
        }
        let mean: f64 = bucket.iter().map(|&i| frequencies[i]).sum::<f64>() / bucket.len() as f64;
        for &i in bucket {
            estimation_error += (frequencies[i] - mean).abs();
        }
        if lambda < 1.0 && !features.is_empty() {
            for (a, &i) in bucket.iter().enumerate() {
                for &k in bucket.iter().skip(a + 1) {
                    // ordered pairs: count each unordered pair twice
                    similarity_error += 2.0 * features[i].l2_distance(&features[k]);
                }
            }
        }
    }
    let _ = n;
    AssignmentErrors {
        estimation_error,
        similarity_error,
        lambda,
    }
}

/// Number of ordered co-bucketed pairs `(i, k), i ≠ k` induced by an
/// assignment — the normalizer for the per-pair similarity error scale.
pub fn ordered_cobucket_pairs(assignment: &[usize], buckets: usize) -> usize {
    let mut sizes = vec![0usize; buckets];
    for &j in assignment {
        sizes[j] += 1;
    }
    sizes.iter().map(|&c| c * c.saturating_sub(1)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_and_expected_errors_match_hand_computation() {
        let mut m = ErrorMetrics::new();
        m.observe(10.0, 12.0); // err 2
        m.observe(100.0, 90.0); // err 10
        m.observe(1.0, 1.0); // err 0
        assert!((m.average_absolute_error() - 4.0).abs() < 1e-12);
        // expected = (10*2 + 100*10 + 1*0) / 111 = 1020/111
        assert!((m.expected_absolute_error() - 1020.0 / 111.0).abs() < 1e-12);
        assert_eq!(m.count, 3);
        assert_eq!(m.max_absolute_error, 10.0);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = ErrorMetrics::new();
        assert_eq!(m.average_absolute_error(), 0.0);
        assert_eq!(m.expected_absolute_error(), 0.0);
        assert_eq!(m.rmse(), 0.0);
    }

    #[test]
    fn merge_is_equivalent_to_observing_everything() {
        let mut a = ErrorMetrics::new();
        a.observe(5.0, 7.0);
        let mut b = ErrorMetrics::new();
        b.observe(3.0, 1.0);
        b.observe(8.0, 8.0);
        let mut merged = a;
        merged.merge(&b);
        let mut all = ErrorMetrics::new();
        all.observe(5.0, 7.0);
        all.observe(3.0, 1.0);
        all.observe(8.0, 8.0);
        assert_eq!(merged, all);
    }

    #[test]
    fn from_slices_matches_observe() {
        let m = ErrorMetrics::from_slices(&[1.0, 2.0], &[2.0, 2.0]);
        assert_eq!(m.count, 2);
        assert!((m.average_absolute_error() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_slices_panics_on_mismatch() {
        let _ = ErrorMetrics::from_slices(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn assignment_errors_single_bucket() {
        // all in one bucket: mean 2, estimation error |1-2|+|2-2|+|3-2| = 2
        let freqs = [1.0, 2.0, 3.0];
        let feats = vec![
            Features::new(vec![0.0]),
            Features::new(vec![0.0]),
            Features::new(vec![1.0]),
        ];
        let errs = assignment_errors(&freqs, &feats, &[0, 0, 0], 1, 0.5);
        assert!((errs.estimation_error - 2.0).abs() < 1e-12);
        // unordered distances: d(0,1)=0, d(0,2)=1, d(1,2)=1 => ordered sum = 4
        assert!((errs.similarity_error - 4.0).abs() < 1e-12);
        assert!((errs.overall_error() - (0.5 * 2.0 + 0.5 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn assignment_errors_perfect_split_is_zero() {
        let freqs = [5.0, 5.0, 9.0, 9.0];
        let errs = assignment_errors(&freqs, &[], &[0, 0, 1, 1], 2, 1.0);
        assert_eq!(errs.estimation_error, 0.0);
        assert_eq!(errs.similarity_error, 0.0);
        assert_eq!(errs.overall_error(), 0.0);
    }

    #[test]
    fn assignment_errors_ignores_empty_buckets() {
        let freqs = [1.0, 3.0];
        let errs = assignment_errors(&freqs, &[], &[2, 2], 4, 1.0);
        assert!((errs.estimation_error - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_one_skips_similarity_even_with_features() {
        let freqs = [1.0, 3.0];
        let feats = vec![Features::new(vec![0.0]), Features::new(vec![10.0])];
        let errs = assignment_errors(&freqs, &feats, &[0, 0], 1, 1.0);
        assert_eq!(errs.similarity_error, 0.0);
        assert!((errs.overall_error() - errs.estimation_error).abs() < 1e-12);
    }

    #[test]
    fn ordered_pair_count() {
        // bucket sizes 3 and 1 -> 3*2 + 0 = 6 ordered pairs
        assert_eq!(ordered_cobucket_pairs(&[0, 0, 0, 1], 2), 6);
        assert_eq!(ordered_cobucket_pairs(&[], 3), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assignment_errors_panics_on_bad_bucket() {
        let _ = assignment_errors(&[1.0], &[], &[3], 2, 1.0);
    }

    #[test]
    fn per_element_and_per_pair_scales() {
        let errs = AssignmentErrors {
            estimation_error: 10.0,
            similarity_error: 12.0,
            lambda: 0.5,
        };
        assert!((errs.estimation_error_per_element(5) - 2.0).abs() < 1e-12);
        assert!((errs.similarity_error_per_pair(6) - 2.0).abs() < 1e-12);
        assert_eq!(errs.estimation_error_per_element(0), 0.0);
        assert_eq!(errs.similarity_error_per_pair(0), 0.0);
    }
}
