//! Finite streams of element arrivals and prefix handling.
//!
//! A [`Stream`] is the ordered sequence `S = (u_1, …, u_|S|)` of Section 2.
//! The paper's approach always splits a stream into an observed prefix `S0`
//! used for learning the hashing scheme and the remaining suffix processed
//! online; [`Stream::split_prefix`] and [`StreamPrefix`] model that split.

use crate::element::{ElementId, Features, StreamElement};
use crate::frequency::FrequencyVector;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A finite, ordered stream of element arrivals.
///
/// Elements are stored by value; repeated arrivals of the same element repeat
/// its ID (and, for memory economy in large synthetic workloads, generators
/// may attach the features only to a side universe table and leave the
/// per-arrival features empty — both layouts are supported by the estimators,
/// which only need features at *training* time).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Stream {
    arrivals: Vec<StreamElement>,
}

impl Stream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Stream {
            arrivals: Vec::new(),
        }
    }

    /// Creates a stream from a vector of arrivals, preserving order.
    pub fn from_arrivals(arrivals: Vec<StreamElement>) -> Self {
        Stream { arrivals }
    }

    /// Creates a stream of bare IDs (no features), mainly for tests and
    /// `λ = 1` workloads.
    pub fn from_ids<I>(ids: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<ElementId>,
    {
        Stream {
            arrivals: ids
                .into_iter()
                .map(|id| StreamElement::without_features(id.into()))
                .collect(),
        }
    }

    /// Appends one arrival at the end of the stream.
    pub fn push(&mut self, element: StreamElement) {
        self.arrivals.push(element);
    }

    /// Number of arrivals `|S|` (with multiplicity).
    #[inline]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Returns `true` if the stream has no arrivals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Iterates over arrivals in order.
    pub fn iter(&self) -> impl Iterator<Item = &StreamElement> {
        self.arrivals.iter()
    }

    /// Immutable view of the underlying arrivals.
    pub fn as_slice(&self) -> &[StreamElement] {
        &self.arrivals
    }

    /// Exact frequency distribution of the whole stream.
    pub fn frequencies(&self) -> FrequencyVector {
        FrequencyVector::from_stream(self)
    }

    /// Splits the stream into an observed prefix of `prefix_len` arrivals and
    /// the remaining suffix. If `prefix_len >= len()` the suffix is empty.
    pub fn split_prefix(&self, prefix_len: usize) -> (StreamPrefix, Stream) {
        let cut = prefix_len.min(self.arrivals.len());
        let prefix = Stream {
            arrivals: self.arrivals[..cut].to_vec(),
        };
        let suffix = Stream {
            arrivals: self.arrivals[cut..].to_vec(),
        };
        (StreamPrefix::from_stream(prefix), suffix)
    }

    /// Summary statistics of the stream (length, distinct count, max
    /// frequency). Useful for sizing estimators and reporting experiments.
    pub fn stats(&self) -> StreamStats {
        let freqs = self.frequencies();
        StreamStats {
            arrivals: self.len(),
            distinct: freqs.support_size(),
            max_frequency: freqs.max_frequency(),
            total: freqs.total(),
        }
    }
}

impl FromIterator<StreamElement> for Stream {
    fn from_iter<T: IntoIterator<Item = StreamElement>>(iter: T) -> Self {
        Stream {
            arrivals: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Stream {
    type Item = StreamElement;
    type IntoIter = std::vec::IntoIter<StreamElement>;
    fn into_iter(self) -> Self::IntoIter {
        self.arrivals.into_iter()
    }
}

/// Summary statistics of a [`Stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Total number of arrivals `|S|`.
    pub arrivals: usize,
    /// Number of distinct elements observed.
    pub distinct: usize,
    /// Largest single-element frequency.
    pub max_frequency: u64,
    /// Sum of all frequencies (equals `arrivals` for exact counting).
    pub total: u64,
}

/// The observed stream prefix `S0` together with the derived quantities the
/// learning phase needs: the set `U0` of distinct elements, their empirical
/// frequencies `f⁰`, and one representative feature vector per element.
///
/// The prefix is the *training set* of the whole approach: the solver
/// consumes `(f⁰_i, x_i)` pairs and the classifier is trained on
/// `(x_i, bucket_i)` pairs (Sections 4 and 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamPrefix {
    stream: Stream,
    /// Distinct elements of the prefix in first-appearance order.
    elements: Vec<StreamElement>,
    /// Empirical frequency of each distinct element, aligned with `elements`.
    frequencies: Vec<u64>,
    /// Map from element ID to its dense index in `elements` / `frequencies`.
    index: HashMap<ElementId, usize>,
}

impl StreamPrefix {
    /// Builds a prefix view from a stream (consuming it as the prefix).
    pub fn from_stream(stream: Stream) -> Self {
        let mut elements: Vec<StreamElement> = Vec::new();
        let mut frequencies: Vec<u64> = Vec::new();
        let mut index: HashMap<ElementId, usize> = HashMap::new();
        for arrival in stream.iter() {
            match index.get(&arrival.id) {
                Some(&i) => {
                    frequencies[i] += 1;
                    // Prefer a non-empty feature vector if the first arrival
                    // carried none (generators may attach features lazily).
                    if elements[i].features.is_empty() && !arrival.features.is_empty() {
                        elements[i].features = arrival.features.clone();
                    }
                }
                None => {
                    index.insert(arrival.id, elements.len());
                    elements.push(arrival.clone());
                    frequencies.push(1);
                }
            }
        }
        StreamPrefix {
            stream,
            elements,
            frequencies,
            index,
        }
    }

    /// Builds a prefix directly from `(element, frequency)` pairs, e.g. when a
    /// dataset already aggregates day-0 counts (Section 7.3 uses the first
    /// day's aggregated query counts).
    pub fn from_counts(pairs: Vec<(StreamElement, u64)>) -> Self {
        let mut elements = Vec::with_capacity(pairs.len());
        let mut frequencies = Vec::with_capacity(pairs.len());
        let mut index = HashMap::with_capacity(pairs.len());
        let mut stream = Stream::new();
        for (element, count) in pairs {
            if count == 0 {
                continue;
            }
            if let Some(&i) = index.get(&element.id) {
                let i: usize = i;
                frequencies[i] += count;
                continue;
            }
            index.insert(element.id, elements.len());
            // Materialize a single arrival in the backing stream so that
            // `as_stream()` still reflects membership; frequencies come from
            // the aggregated counts.
            stream.push(element.clone());
            elements.push(element);
            frequencies.push(count);
        }
        StreamPrefix {
            stream,
            elements,
            frequencies,
            index,
        }
    }

    /// The raw prefix stream `S0`.
    pub fn as_stream(&self) -> &Stream {
        &self.stream
    }

    /// Number of distinct elements `n = |U0|`.
    #[inline]
    pub fn distinct_len(&self) -> usize {
        self.elements.len()
    }

    /// Total number of arrivals in the prefix `|S0|`.
    #[inline]
    pub fn arrival_len(&self) -> usize {
        self.stream.len()
    }

    /// Distinct elements in first-appearance order.
    pub fn elements(&self) -> &[StreamElement] {
        &self.elements
    }

    /// Empirical frequencies `f⁰`, aligned with [`Self::elements`].
    pub fn frequencies(&self) -> &[u64] {
        &self.frequencies
    }

    /// Empirical frequencies as `f64`, the representation the solver uses.
    pub fn frequencies_f64(&self) -> Vec<f64> {
        self.frequencies.iter().map(|&f| f as f64).collect()
    }

    /// Feature vectors aligned with [`Self::elements`].
    pub fn features(&self) -> Vec<Features> {
        self.elements.iter().map(|e| e.features.clone()).collect()
    }

    /// Dense index of an element ID inside the prefix, if it appeared.
    pub fn index_of(&self, id: ElementId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// Returns `true` if the element appeared in the prefix.
    pub fn contains(&self, id: ElementId) -> bool {
        self.index.contains_key(&id)
    }

    /// Empirical frequency of an element (0 if it did not appear).
    pub fn frequency_of(&self, id: ElementId) -> u64 {
        self.index_of(id).map(|i| self.frequencies[i]).unwrap_or(0)
    }

    /// Down-samples the prefix to at most `max_elements` distinct elements,
    /// sampling *without replacement with probability proportional to the
    /// observed frequency*, as done for the real-world experiments where the
    /// first day alone has hundreds of thousands of unique queries
    /// (Section 7.3). Deterministic given the same `seed`.
    pub fn sample_by_frequency(&self, max_elements: usize, seed: u64) -> StreamPrefix {
        if self.distinct_len() <= max_elements {
            return self.clone();
        }
        // Weighted sampling without replacement via the exponential-sort
        // (Efraimidis–Spirakis) trick with a deterministic xorshift RNG so the
        // crate does not need a `rand` dependency.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next_uniform = || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545F4914F6CDD1D);
            ((bits >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let mut keyed: Vec<(f64, usize)> = self
            .frequencies
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let u: f64 = next_uniform().max(f64::MIN_POSITIVE);
                // key = u^(1/w); larger keys are kept
                let key = u.powf(1.0 / (f as f64));
                (key, i)
            })
            .collect();
        keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        keyed.truncate(max_elements);
        let mut picked: Vec<usize> = keyed.into_iter().map(|(_, i)| i).collect();
        picked.sort_unstable();
        let pairs: Vec<(StreamElement, u64)> = picked
            .into_iter()
            .map(|i| (self.elements[i].clone(), self.frequencies[i]))
            .collect();
        StreamPrefix::from_counts(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc_stream() -> Stream {
        // a a b a c b
        Stream::from_ids([1u64, 1, 2, 1, 3, 2])
    }

    #[test]
    fn stream_len_and_stats() {
        let s = abc_stream();
        assert_eq!(s.len(), 6);
        let stats = s.stats();
        assert_eq!(stats.arrivals, 6);
        assert_eq!(stats.distinct, 3);
        assert_eq!(stats.max_frequency, 3);
        assert_eq!(stats.total, 6);
    }

    #[test]
    fn split_prefix_partitions_arrivals() {
        let s = abc_stream();
        let (prefix, suffix) = s.split_prefix(4);
        assert_eq!(prefix.arrival_len(), 4);
        assert_eq!(suffix.len(), 2);
        // prefix saw a(x3), b(x1)
        assert_eq!(prefix.distinct_len(), 2);
        assert_eq!(prefix.frequency_of(ElementId(1)), 3);
        assert_eq!(prefix.frequency_of(ElementId(2)), 1);
        assert_eq!(prefix.frequency_of(ElementId(3)), 0);
        assert!(!prefix.contains(ElementId(3)));
    }

    #[test]
    fn split_prefix_longer_than_stream_gives_empty_suffix() {
        let s = abc_stream();
        let (prefix, suffix) = s.split_prefix(100);
        assert_eq!(prefix.arrival_len(), 6);
        assert!(suffix.is_empty());
    }

    #[test]
    fn prefix_from_counts_aggregates_duplicates() {
        let pairs = vec![
            (StreamElement::without_features(1u64), 5),
            (StreamElement::without_features(2u64), 3),
            (StreamElement::without_features(1u64), 2),
            (StreamElement::without_features(4u64), 0),
        ];
        let p = StreamPrefix::from_counts(pairs);
        assert_eq!(p.distinct_len(), 2);
        assert_eq!(p.frequency_of(ElementId(1)), 7);
        assert_eq!(p.frequency_of(ElementId(2)), 3);
        assert_eq!(p.frequency_of(ElementId(4)), 0);
    }

    #[test]
    fn prefix_keeps_first_appearance_order_and_index() {
        let s = Stream::from_ids([5u64, 9, 5, 7]);
        let (p, _) = s.split_prefix(4);
        let ids: Vec<u64> = p.elements().iter().map(|e| e.id.raw()).collect();
        assert_eq!(ids, vec![5, 9, 7]);
        assert_eq!(p.index_of(ElementId(9)), Some(1));
        assert_eq!(p.index_of(ElementId(42)), None);
    }

    #[test]
    fn prefix_prefers_non_empty_features() {
        let mut s = Stream::new();
        s.push(StreamElement::without_features(1u64));
        s.push(StreamElement::new(1u64, vec![2.0, 3.0]));
        let p = StreamPrefix::from_stream(s);
        assert_eq!(p.elements()[0].features.dim(), 2);
    }

    #[test]
    fn sample_by_frequency_is_deterministic_and_bounded() {
        let pairs: Vec<(StreamElement, u64)> = (0..100u64)
            .map(|i| (StreamElement::without_features(i), i + 1))
            .collect();
        let p = StreamPrefix::from_counts(pairs);
        let s1 = p.sample_by_frequency(10, 7);
        let s2 = p.sample_by_frequency(10, 7);
        assert_eq!(s1.distinct_len(), 10);
        let ids1: Vec<u64> = s1.elements().iter().map(|e| e.id.raw()).collect();
        let ids2: Vec<u64> = s2.elements().iter().map(|e| e.id.raw()).collect();
        assert_eq!(ids1, ids2);
        // sampling proportional to frequency should prefer the heavy tail end
        let mean_id: f64 = ids1.iter().map(|&i| i as f64).sum::<f64>() / ids1.len() as f64;
        assert!(mean_id > 50.0, "expected heavy elements, mean id {mean_id}");
    }

    #[test]
    fn sample_by_frequency_noop_when_small() {
        let p = StreamPrefix::from_counts(vec![(StreamElement::without_features(1u64), 2)]);
        let s = p.sample_by_frequency(10, 1);
        assert_eq!(s.distinct_len(), 1);
    }

    #[test]
    fn stream_from_iterator_round_trips() {
        let elems = vec![
            StreamElement::new(1u64, vec![0.0]),
            StreamElement::new(2u64, vec![1.0]),
        ];
        let s: Stream = elems.clone().into_iter().collect();
        assert_eq!(s.as_slice(), elems.as_slice());
        let back: Vec<StreamElement> = s.into_iter().collect();
        assert_eq!(back, elems);
    }
}
