//! Memory accounting shared by all estimators.
//!
//! The paper compares estimators at equal memory: "each bucket consumes 4
//! bytes of memory and hence the total number of buckets used in each
//! experiment can be calculated as `b = m·10³/4` where `m` is the size of the
//! estimator in KB" (Section 7.4). For the learned Count-Min baseline, a
//! *unique* bucket reserved for a heavy hitter stores both a counter and a
//! (hashed) ID and therefore costs twice a normal bucket (Section 2.2). The
//! `opt-hash` estimator additionally stores the IDs of the prefix elements it
//! keeps in its hash table, which is what the ratio `c = b/n` of Section 7.3
//! accounts for.
//!
//! [`SpaceBudget`] converts between kilobytes and bucket counts under those
//! rules, and [`SpaceReport`] lets each estimator itemize its usage so
//! experiments can assert that all competitors stay within the same budget.

use serde::{Deserialize, Serialize};

/// Bytes occupied by one ordinary counter bucket (Section 7.4).
pub const BYTES_PER_BUCKET: usize = 4;

/// Bytes charged for storing one element ID in a hash table. The paper notes
/// that open addressing lets IDs be stored in `log b_heavy + t` bits, i.e.
/// comparable to a counter, so an ID is charged the same 4 bytes as a bucket.
pub const BYTES_PER_STORED_ID: usize = 4;

/// What a bucket is used for, which determines its cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BucketKind {
    /// A plain counter (Count-Min cell, opt-hash bucket sum).
    Counter,
    /// A heavy-hitter unique bucket that stores a counter *and* an ID; costs
    /// twice a plain counter (Section 2.2).
    Unique,
    /// A stored element ID (opt-hash hash-table key, charged like a counter).
    StoredId,
    /// One bit of a Bloom filter; 8 of them cost one byte.
    BloomBit,
}

impl BucketKind {
    /// Cost of one item of this kind, in bytes (Bloom bits return the cost of
    /// a single bit as a fraction of a byte, so use [`SpaceReport`] to sum).
    pub fn bytes(self) -> f64 {
        match self {
            BucketKind::Counter => BYTES_PER_BUCKET as f64,
            BucketKind::Unique => 2.0 * BYTES_PER_BUCKET as f64,
            BucketKind::StoredId => BYTES_PER_STORED_ID as f64,
            BucketKind::BloomBit => 1.0 / 8.0,
        }
    }
}

/// A memory budget for an estimator, expressed in bytes.
///
/// Construct from kilobytes with [`SpaceBudget::from_kb`] to follow the
/// paper's configurations (1.2 KB … 120 KB), then derive bucket counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpaceBudget {
    bytes: usize,
}

impl SpaceBudget {
    /// A budget of exactly `bytes` bytes.
    pub fn from_bytes(bytes: usize) -> Self {
        SpaceBudget { bytes }
    }

    /// A budget of `kb` kilobytes (decimal: 1 KB = 1000 bytes, matching the
    /// paper's `b = m·10³/4` formula).
    pub fn from_kb(kb: f64) -> Self {
        SpaceBudget {
            bytes: (kb * 1000.0).round() as usize,
        }
    }

    /// The budget in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The budget in (decimal) kilobytes.
    pub fn kb(&self) -> f64 {
        self.bytes as f64 / 1000.0
    }

    /// Total number of ordinary buckets that fit: `b = bytes / 4`.
    pub fn total_buckets(&self) -> usize {
        self.bytes / BYTES_PER_BUCKET
    }

    /// Splits the budget into a Count-Min style `width × depth` grid using
    /// all available buckets (rounding the width down).
    pub fn count_min_dimensions(&self, depth: usize) -> (usize, usize) {
        assert!(depth > 0, "depth must be positive");
        let width = (self.total_buckets() / depth).max(1);
        (width, depth)
    }

    /// Splits the budget for the learned Count-Min baseline: `b_heavy` unique
    /// buckets (double cost) and the rest as ordinary Count-Min buckets.
    /// Returns `(unique_buckets, remaining_ordinary_buckets)`; the number of
    /// unique buckets is clamped so that `b_heavy ≤ b/2` as in Section 7.2.
    pub fn learned_cms_split(&self, requested_heavy: usize) -> (usize, usize) {
        let total = self.total_buckets();
        let max_heavy = total / 2;
        let heavy = requested_heavy.min(max_heavy);
        let remaining = total - 2 * heavy;
        (heavy, remaining)
    }

    /// Splits the budget for `opt-hash` given the bucket-to-stored-ID ratio
    /// `c` of Section 7.3: with `n` stored IDs and `b` buckets, the paper
    /// picks `n = b_total/(1+c)` and `b = b_total − n`.
    /// Returns `(stored_ids_n, buckets_b)`; both are at least 1 whenever the
    /// budget allows at least two slots.
    pub fn opt_hash_split(&self, c: f64) -> (usize, usize) {
        assert!(c > 0.0, "bucket-to-ID ratio c must be positive");
        let total = self.total_buckets();
        if total < 2 {
            return (total, 0);
        }
        let n = ((total as f64) / (1.0 + c)).floor() as usize;
        let n = n.clamp(1, total - 1);
        let b = total - n;
        (n, b)
    }
}

/// Itemized memory usage of an estimator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpaceReport {
    /// Number of plain counter buckets.
    pub counters: usize,
    /// Number of heavy-hitter unique buckets.
    pub unique_buckets: usize,
    /// Number of stored element IDs.
    pub stored_ids: usize,
    /// Number of Bloom-filter bits.
    pub bloom_bits: usize,
    /// Auxiliary bytes that do not fit the categories above (e.g. per-bucket
    /// element-count fields of the adaptive extension).
    pub auxiliary_bytes: usize,
}

impl SpaceReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes under the paper's accounting (Bloom bits rounded up to
    /// whole bytes). Saturating: a fleet-wide aggregate built with
    /// [`SpaceReport::saturating_add`] can legitimately hold huge item
    /// counts, and an overflowing total must read as "too big", never wrap
    /// to a small number that would pass a budget check.
    pub fn total_bytes(&self) -> usize {
        self.counters
            .saturating_mul(BYTES_PER_BUCKET)
            .saturating_add(self.unique_buckets.saturating_mul(2 * BYTES_PER_BUCKET))
            .saturating_add(self.stored_ids.saturating_mul(BYTES_PER_STORED_ID))
            .saturating_add(self.bloom_bits.div_ceil(8))
            .saturating_add(self.auxiliary_bytes)
    }

    /// Returns `true` if the report fits inside `budget`.
    pub fn fits(&self, budget: SpaceBudget) -> bool {
        self.total_bytes() <= budget.bytes()
    }

    /// Element-wise saturating sum of two reports — the aggregation primitive
    /// a fleet-level memory governor uses to total thousands of per-tenant
    /// reports. Saturates at `usize::MAX` per field instead of wrapping, so a
    /// pathological aggregate fails a budget check rather than passing it.
    pub fn saturating_add(&self, other: &SpaceReport) -> SpaceReport {
        SpaceReport {
            counters: self.counters.saturating_add(other.counters),
            unique_buckets: self.unique_buckets.saturating_add(other.unique_buckets),
            stored_ids: self.stored_ids.saturating_add(other.stored_ids),
            bloom_bits: self.bloom_bits.saturating_add(other.bloom_bits),
            auxiliary_bytes: self.auxiliary_bytes.saturating_add(other.auxiliary_bytes),
        }
    }

    /// Saturating sum of an iterator of reports (fleet-wide totals).
    pub fn saturating_sum<'a>(reports: impl IntoIterator<Item = &'a SpaceReport>) -> SpaceReport {
        reports
            .into_iter()
            .fold(SpaceReport::new(), |acc, r| acc.saturating_add(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kb_to_buckets_matches_paper_formula() {
        // 120 KB -> 30,000 buckets; 4 KB -> 1,000 buckets
        assert_eq!(SpaceBudget::from_kb(120.0).total_buckets(), 30_000);
        assert_eq!(SpaceBudget::from_kb(4.0).total_buckets(), 1_000);
        assert_eq!(SpaceBudget::from_kb(1.2).total_buckets(), 300);
        assert!((SpaceBudget::from_kb(4.0).kb() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn count_min_dimensions_use_whole_budget() {
        let b = SpaceBudget::from_kb(4.0);
        let (w, d) = b.count_min_dimensions(4);
        assert_eq!(d, 4);
        assert_eq!(w, 250);
        // depth larger than buckets still yields width >= 1
        let tiny = SpaceBudget::from_bytes(8);
        assert_eq!(tiny.count_min_dimensions(6), (1, 6));
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn count_min_dimensions_rejects_zero_depth() {
        let _ = SpaceBudget::from_kb(1.0).count_min_dimensions(0);
    }

    #[test]
    fn learned_cms_split_charges_unique_buckets_double() {
        let b = SpaceBudget::from_kb(4.0); // 1000 buckets
        let (heavy, rest) = b.learned_cms_split(100);
        assert_eq!(heavy, 100);
        assert_eq!(rest, 800);
        // request more than b/2 heavy buckets -> clamped
        let (heavy, rest) = b.learned_cms_split(10_000);
        assert_eq!(heavy, 500);
        assert_eq!(rest, 0);
    }

    #[test]
    fn opt_hash_split_follows_ratio() {
        let b = SpaceBudget::from_kb(4.0); // 1000 slots
        let (n, buckets) = b.opt_hash_split(0.03);
        // n = 1000/1.03 = 970.8 -> 970, b = 30
        assert_eq!(n, 970);
        assert_eq!(buckets, 30);
        assert_eq!(n + buckets, 1000);
        let (n, buckets) = b.opt_hash_split(0.3);
        assert_eq!(n + buckets, 1000);
        assert!(buckets > 200 && buckets < 300);
    }

    #[test]
    fn opt_hash_split_tiny_budgets() {
        assert_eq!(SpaceBudget::from_bytes(4).opt_hash_split(0.3), (1, 0));
        let (n, b) = SpaceBudget::from_bytes(8).opt_hash_split(0.3);
        assert_eq!(n + b, 2);
        assert!(n >= 1 && b >= 1);
    }

    #[test]
    fn space_report_totals() {
        let report = SpaceReport {
            counters: 10,
            unique_buckets: 3,
            stored_ids: 5,
            bloom_bits: 17,
            auxiliary_bytes: 2,
        };
        // 40 + 24 + 20 + 3 + 2 = 89
        assert_eq!(report.total_bytes(), 89);
        assert!(report.fits(SpaceBudget::from_bytes(89)));
        assert!(!report.fits(SpaceBudget::from_bytes(88)));
    }

    #[test]
    fn saturating_add_sums_field_wise() {
        let a = SpaceReport {
            counters: 10,
            unique_buckets: 1,
            stored_ids: 2,
            bloom_bits: 9,
            auxiliary_bytes: 3,
        };
        let b = SpaceReport {
            counters: 5,
            unique_buckets: 4,
            stored_ids: 1,
            bloom_bits: 7,
            auxiliary_bytes: 0,
        };
        let sum = a.saturating_add(&b);
        assert_eq!(sum.counters, 15);
        assert_eq!(sum.unique_buckets, 5);
        assert_eq!(sum.stored_ids, 3);
        assert_eq!(sum.bloom_bits, 16);
        assert_eq!(sum.auxiliary_bytes, 3);
        // Identity element.
        assert_eq!(a.saturating_add(&SpaceReport::new()), a);
    }

    #[test]
    fn saturating_sum_totals_a_fleet() {
        let per_tenant = SpaceReport {
            counters: 1000,
            ..SpaceReport::default()
        };
        let fleet: Vec<SpaceReport> = (0..1_000).map(|_| per_tenant.clone()).collect();
        let total = SpaceReport::saturating_sum(&fleet);
        assert_eq!(total.counters, 1_000_000);
        assert_eq!(total.total_bytes(), 4_000_000);
        assert_eq!(
            SpaceReport::saturating_sum(std::iter::empty()),
            SpaceReport::new()
        );
    }

    #[test]
    fn aggregation_saturates_instead_of_wrapping() {
        let huge = SpaceReport {
            counters: usize::MAX - 1,
            unique_buckets: usize::MAX,
            stored_ids: 3,
            bloom_bits: usize::MAX,
            auxiliary_bytes: usize::MAX,
        };
        let sum = huge.saturating_add(&huge);
        assert_eq!(sum.counters, usize::MAX);
        assert_eq!(sum.unique_buckets, usize::MAX);
        assert_eq!(sum.stored_ids, 6);
        assert_eq!(sum.bloom_bits, usize::MAX);
        // An overflowing total reads as "too big" (saturated), so it can
        // never sneak under a budget check by wrapping.
        assert_eq!(sum.total_bytes(), usize::MAX);
        assert!(!sum.fits(SpaceBudget::from_bytes(usize::MAX - 1)));
    }

    #[test]
    fn bucket_kind_costs() {
        assert_eq!(BucketKind::Counter.bytes(), 4.0);
        assert_eq!(BucketKind::Unique.bytes(), 8.0);
        assert_eq!(BucketKind::StoredId.bytes(), 4.0);
        assert!((BucketKind::BloomBit.bytes() - 0.125).abs() < 1e-12);
    }
}
