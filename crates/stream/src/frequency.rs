//! Exact frequency distributions and the estimator trait.

use crate::element::{ElementId, StreamElement};
use crate::stream::Stream;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Exact frequency distribution `f` of a stream: a map from element ID to its
/// number of occurrences.
///
/// This is the ground truth against which every estimator is evaluated. It is
/// also what a "store everything" baseline would maintain, so its
/// [`FrequencyVector::support_size`] doubles as the space lower bound the
/// paper's compressed estimators are measured against.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencyVector {
    counts: HashMap<ElementId, u64>,
    total: u64,
}

impl FrequencyVector {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        FrequencyVector::default()
    }

    /// Builds the exact distribution of a stream.
    pub fn from_stream(stream: &Stream) -> Self {
        let mut fv = FrequencyVector::new();
        for arrival in stream.iter() {
            fv.increment(arrival.id);
        }
        fv
    }

    /// Builds a distribution from `(id, count)` pairs; zero counts are
    /// dropped and duplicate IDs are summed.
    pub fn from_counts<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (ElementId, u64)>,
    {
        let mut fv = FrequencyVector::new();
        for (id, count) in pairs {
            fv.add(id, count);
        }
        fv
    }

    /// Adds one occurrence of `id`.
    #[inline]
    pub fn increment(&mut self, id: ElementId) {
        self.add(id, 1);
    }

    /// Adds `count` occurrences of `id`.
    pub fn add(&mut self, id: ElementId, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry(id).or_insert(0) += count;
        self.total += count;
    }

    /// Merges another distribution into this one (used to accumulate
    /// frequencies across days in the query-log experiments).
    pub fn merge(&mut self, other: &FrequencyVector) {
        for (&id, &count) in &other.counts {
            self.add(id, count);
        }
    }

    /// Exact frequency of an element (0 if never seen).
    #[inline]
    pub fn frequency(&self, id: ElementId) -> u64 {
        self.counts.get(&id).copied().unwrap_or(0)
    }

    /// Number of distinct elements with non-zero frequency.
    #[inline]
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// Sum of all frequencies (`‖f‖₁`).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest single-element frequency.
    pub fn max_frequency(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Iterates over `(id, frequency)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ElementId, u64)> + '_ {
        self.counts.iter().map(|(&id, &c)| (id, c))
    }

    /// IDs sorted by decreasing frequency (ties broken by ID for
    /// determinism). Rank 1 is the most frequent element — the ordering used
    /// by Table 1 of the paper.
    pub fn ids_by_rank(&self) -> Vec<ElementId> {
        let mut ids: Vec<(ElementId, u64)> = self.iter().collect();
        ids.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ids.into_iter().map(|(id, _)| id).collect()
    }

    /// Frequency of the element at 1-based `rank` (None if fewer elements).
    pub fn frequency_at_rank(&self, rank: usize) -> Option<(ElementId, u64)> {
        if rank == 0 {
            return None;
        }
        let ids = self.ids_by_rank();
        ids.get(rank - 1).map(|&id| (id, self.frequency(id)))
    }
}

/// Common interface of every streaming frequency estimator in the workspace.
///
/// The lifecycle mirrors the paper's stream processing phase (Section 3 and
/// Appendix B): elements arrive one at a time via [`FrequencyEstimator::update`],
/// and point queries are answered at any time via
/// [`FrequencyEstimator::estimate`]. `space_bytes` reports the memory the
/// estimator would occupy under the paper's accounting (4 bytes per counter,
/// 8 bytes per stored ID), so different estimators can be compared at equal
/// size as in Figures 7–8.
pub trait FrequencyEstimator {
    /// Processes one arrival of `element`.
    fn update(&mut self, element: &StreamElement);

    /// Returns the estimated frequency of `element`.
    fn estimate(&self, element: &StreamElement) -> f64;

    /// Memory footprint of the estimator state in bytes, under the paper's
    /// accounting model (see [`crate::space`]).
    fn space_bytes(&self) -> usize;

    /// Human-readable name used in experiment output (e.g. `count-min`).
    fn name(&self) -> &'static str;

    /// Processes a whole stream in arrival order.
    fn update_stream(&mut self, stream: &Stream) {
        for arrival in stream.iter() {
            self.update(arrival);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::StreamElement;

    #[test]
    fn from_stream_counts_occurrences() {
        let s = Stream::from_ids([1u64, 2, 1, 1, 3]);
        let fv = FrequencyVector::from_stream(&s);
        assert_eq!(fv.frequency(ElementId(1)), 3);
        assert_eq!(fv.frequency(ElementId(2)), 1);
        assert_eq!(fv.frequency(ElementId(9)), 0);
        assert_eq!(fv.total(), 5);
        assert_eq!(fv.support_size(), 3);
        assert_eq!(fv.max_frequency(), 3);
    }

    #[test]
    fn from_counts_drops_zeros_and_sums_duplicates() {
        let fv =
            FrequencyVector::from_counts([(ElementId(1), 2), (ElementId(2), 0), (ElementId(1), 3)]);
        assert_eq!(fv.frequency(ElementId(1)), 5);
        assert_eq!(fv.support_size(), 1);
        assert_eq!(fv.total(), 5);
    }

    #[test]
    fn merge_accumulates_across_days() {
        let mut day0 = FrequencyVector::from_counts([(ElementId(1), 5), (ElementId(2), 1)]);
        let day1 = FrequencyVector::from_counts([(ElementId(1), 2), (ElementId(3), 4)]);
        day0.merge(&day1);
        assert_eq!(day0.frequency(ElementId(1)), 7);
        assert_eq!(day0.frequency(ElementId(3)), 4);
        assert_eq!(day0.total(), 12);
    }

    #[test]
    fn rank_ordering_is_by_decreasing_frequency_with_id_tiebreak() {
        let fv = FrequencyVector::from_counts([
            (ElementId(10), 5),
            (ElementId(3), 7),
            (ElementId(7), 5),
            (ElementId(1), 1),
        ]);
        let ranked = fv.ids_by_rank();
        assert_eq!(
            ranked,
            vec![ElementId(3), ElementId(7), ElementId(10), ElementId(1)]
        );
        assert_eq!(fv.frequency_at_rank(1), Some((ElementId(3), 7)));
        assert_eq!(fv.frequency_at_rank(4), Some((ElementId(1), 1)));
        assert_eq!(fv.frequency_at_rank(5), None);
        assert_eq!(fv.frequency_at_rank(0), None);
    }

    /// A trivial exact estimator used to exercise the trait's default method.
    struct Exact(FrequencyVector);
    impl FrequencyEstimator for Exact {
        fn update(&mut self, element: &StreamElement) {
            self.0.increment(element.id);
        }
        fn estimate(&self, element: &StreamElement) -> f64 {
            self.0.frequency(element.id) as f64
        }
        fn space_bytes(&self) -> usize {
            self.0.support_size() * 12
        }
        fn name(&self) -> &'static str {
            "exact"
        }
    }

    #[test]
    fn estimator_trait_default_update_stream() {
        let s = Stream::from_ids([4u64, 4, 5]);
        let mut est = Exact(FrequencyVector::new());
        est.update_stream(&s);
        assert_eq!(est.estimate(&StreamElement::without_features(4u64)), 2.0);
        assert_eq!(est.estimate(&StreamElement::without_features(5u64)), 1.0);
        assert_eq!(est.name(), "exact");
        assert_eq!(est.space_bytes(), 24);
    }
}
