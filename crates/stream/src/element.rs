//! Stream elements: unique IDs and feature vectors.
//!
//! The paper models every element of the universe as `u = (k, x)` where `k`
//! is a unique ID and `x ∈ X` is a feature vector (Section 2). Features are
//! what allow the learned hashing scheme to place *unseen* elements into a
//! bucket of similar elements (Section 5.2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of an element of the universe `U`.
///
/// IDs are dense `u64`s; generators in `opthash-datagen` assign them
/// contiguously, but nothing in the workspace relies on density. For
/// text-keyed universes (search queries) the ID is a stable hash of the key
/// maintained by the dataset, so equality of IDs coincides with equality of
/// keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ElementId(pub u64);

impl ElementId {
    /// Returns the raw `u64` value of the ID.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for ElementId {
    fn from(v: u64) -> Self {
        ElementId(v)
    }
}

impl From<usize> for ElementId {
    fn from(v: usize) -> Self {
        ElementId(v as u64)
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Dense feature vector `x ∈ X` associated with an element.
///
/// Both the similarity term of the hashing objective (Section 4.1) and the
/// bucket classifier for unseen elements (Section 5.2) consume features
/// through this type. Features are plain `f64`s; text features produced by
/// `opthash-ml::features` (bag-of-words counts plus character statistics) are
/// flattened into the same representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Features(pub Vec<f64>);

impl Features {
    /// Creates a feature vector from raw values.
    pub fn new(values: Vec<f64>) -> Self {
        Features(values)
    }

    /// Creates an empty (zero-dimensional) feature vector.
    ///
    /// Useful for the `λ = 1` regime where features are ignored entirely.
    pub fn empty() -> Self {
        Features(Vec::new())
    }

    /// Number of dimensions.
    #[inline]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the vector has no dimensions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Immutable view of the raw values.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Euclidean (L2) distance to another feature vector.
    ///
    /// This is the `‖x_i − x_k‖₂` term of the similarity error in
    /// Problem (1). If the two vectors have different dimensionality the
    /// missing coordinates are treated as zero, which lets callers mix
    /// elements whose sparse text features were truncated differently.
    pub fn l2_distance(&self, other: &Features) -> f64 {
        let (a, b) = (&self.0, &other.0);
        let n = a.len().max(b.len());
        let mut acc = 0.0;
        for i in 0..n {
            let x = a.get(i).copied().unwrap_or(0.0);
            let y = b.get(i).copied().unwrap_or(0.0);
            let d = x - y;
            acc += d * d;
        }
        acc.sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only ordering
    /// matters, e.g. nearest-centroid assignment inside the solver).
    pub fn l2_distance_sq(&self, other: &Features) -> f64 {
        let (a, b) = (&self.0, &other.0);
        let n = a.len().max(b.len());
        let mut acc = 0.0;
        for i in 0..n {
            let x = a.get(i).copied().unwrap_or(0.0);
            let y = b.get(i).copied().unwrap_or(0.0);
            let d = x - y;
            acc += d * d;
        }
        acc
    }
}

impl From<Vec<f64>> for Features {
    fn from(v: Vec<f64>) -> Self {
        Features(v)
    }
}

impl std::ops::Index<usize> for Features {
    type Output = f64;
    fn index(&self, idx: usize) -> &f64 {
        &self.0[idx]
    }
}

/// An element of the universe: a unique ID plus its feature vector.
///
/// `StreamElement` is the unit carried by a [`crate::Stream`]. The same
/// element (same ID) typically appears many times in a stream; its features
/// are identical across appearances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamElement {
    /// Unique ID `k` of the element.
    pub id: ElementId,
    /// Feature vector `x` of the element.
    pub features: Features,
}

impl StreamElement {
    /// Creates a new element.
    pub fn new(id: impl Into<ElementId>, features: impl Into<Features>) -> Self {
        StreamElement {
            id: id.into(),
            features: features.into(),
        }
    }

    /// Creates an element with no features (used in `λ = 1` workloads).
    pub fn without_features(id: impl Into<ElementId>) -> Self {
        StreamElement {
            id: id.into(),
            features: Features::empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_id_display_and_conversions() {
        let id: ElementId = 42u64.into();
        assert_eq!(id.raw(), 42);
        assert_eq!(id.to_string(), "e42");
        let id2: ElementId = 7usize.into();
        assert_eq!(id2, ElementId(7));
        assert!(id2 < id);
    }

    #[test]
    fn l2_distance_matches_hand_computation() {
        let a = Features::new(vec![0.0, 3.0]);
        let b = Features::new(vec![4.0, 0.0]);
        assert!((a.l2_distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.l2_distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn l2_distance_is_symmetric_and_zero_on_self() {
        let a = Features::new(vec![1.5, -2.0, 0.25]);
        let b = Features::new(vec![0.5, 1.0, -3.0]);
        assert_eq!(a.l2_distance(&b), b.l2_distance(&a));
        assert_eq!(a.l2_distance(&a), 0.0);
    }

    #[test]
    fn l2_distance_pads_shorter_vector_with_zeros() {
        let a = Features::new(vec![3.0]);
        let b = Features::new(vec![3.0, 4.0]);
        assert!((a.l2_distance(&b) - 4.0).abs() < 1e-12);
        // symmetric in argument order too
        assert!((b.l2_distance(&a) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn features_indexing_and_dim() {
        let f = Features::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(f.dim(), 3);
        assert_eq!(f[1], 2.0);
        assert!(!f.is_empty());
        assert!(Features::empty().is_empty());
    }

    #[test]
    fn stream_element_constructors() {
        let e = StreamElement::new(3u64, vec![1.0, 2.0]);
        assert_eq!(e.id, ElementId(3));
        assert_eq!(e.features.dim(), 2);
        let bare = StreamElement::without_features(9u64);
        assert!(bare.features.is_empty());
    }
}
