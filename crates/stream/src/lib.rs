//! # opthash-stream
//!
//! Streaming-model substrate shared by every other crate in the `opthash`
//! workspace. It defines the vocabulary of the paper's Section 2:
//!
//! * [`StreamElement`] — an element `u = (k, x)` with a unique ID `k` and a
//!   feature vector `x`,
//! * [`Stream`] — a finite ordered sequence of element arrivals, with support
//!   for splitting off an observed prefix `S0`,
//! * [`FrequencyVector`] — the exact frequency distribution `f` of a stream,
//! * [`FrequencyEstimator`] — the trait implemented by every estimator in the
//!   workspace (Count-Min, Count Sketch, Learned Count-Min, `opt-hash`),
//! * [`ErrorMetrics`] — the two evaluation metrics of Section 7.4 (average
//!   per-element absolute error and expected magnitude of absolute error) plus
//!   the prefix objective terms of Section 4.1 (estimation error and
//!   similarity error),
//! * [`SpaceBudget`] — bucket/byte accounting so all estimators are compared
//!   at equal memory, following Section 7.4 (4 bytes per bucket, double-width
//!   unique buckets for the heavy-hitter baseline).
//!
//! The crate is dependency-light on purpose: it holds plain data types and
//! pure functions that the solver, ML, sketch and core crates all build upon.
//!
//! ```
//! use opthash_stream::{ElementId, FrequencyVector, Stream};
//!
//! let stream = Stream::from_ids([1u64, 1, 2, 1, 3]);
//! let (prefix, continuation) = stream.split_prefix(3);
//! assert_eq!(prefix.arrival_len(), 3);
//! assert_eq!(continuation.len(), 2);
//!
//! let truth = FrequencyVector::from_stream(&stream);
//! assert_eq!(truth.frequency(ElementId(1)), 3);
//! assert_eq!(truth.support_size(), 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod element;
pub mod frequency;
pub mod metrics;
pub mod space;
pub mod stream;

pub use element::{ElementId, Features, StreamElement};
pub use frequency::{FrequencyEstimator, FrequencyVector};
pub use metrics::{assignment_errors, AssignmentErrors, ErrorMetrics};
pub use space::{BucketKind, SpaceBudget, SpaceReport, BYTES_PER_BUCKET};
pub use stream::{Stream, StreamPrefix, StreamStats};
