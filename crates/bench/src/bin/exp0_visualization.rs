//! Experiment 0 (Figure 1): visualization data for the learned hash codes.
//!
//! Reproduces the four panels of Figure 1 as CSV: element groups, prefix
//! frequencies (log scale), the learned hash code of elements that appeared
//! in the prefix (bcd), and the hash code predicted for unseen elements
//! (cart). Plotting is left to any external tool; the CSV has one row per
//! element.

use opthash::{OptHashBuilder, SolverKind};
use opthash_bench::ExperimentTable;
use opthash_datagen::groups::{GroupConfig, GroupDataset};
use opthash_ml::ClassifierKind;
use opthash_solver::BcdConfig;
use opthash_stream::StreamPrefix;

fn main() {
    // Figure 1 setup: G = 10 groups, prefix of 1,000 arrivals, a third of
    // each group eligible to appear in the prefix, 10 buckets.
    let dataset = GroupDataset::generate(GroupConfig {
        num_groups: 10,
        fraction_seen: 0.33,
        seed: 1,
        ..GroupConfig::default()
    });
    let prefix_stream = dataset.generate_prefix(1_000, 2);
    let prefix = StreamPrefix::from_stream(prefix_stream);
    let estimator = OptHashBuilder::new(10)
        .lambda(0.5)
        .solver(SolverKind::Bcd(BcdConfig::default()))
        .classifier(ClassifierKind::Cart)
        .train(&prefix);

    let mut table = ExperimentTable::new(
        "exp0_visualization",
        &[
            "element_id",
            "x0",
            "x1",
            "group",
            "prefix_log_frequency",
            "seen_in_prefix",
            "bucket",
        ],
    );
    for element in dataset.elements() {
        let stream_element = dataset.stream_element(element.id).unwrap();
        let seen = estimator.is_stored(element.id);
        let freq = prefix.frequency_of(element.id);
        let log_freq = if freq > 0 {
            (freq as f64).ln()
        } else {
            f64::NAN
        };
        let bucket = estimator.bucket_of(&stream_element);
        table.push_row(vec![
            element.id.raw().to_string(),
            format!("{:.4}", element.features[0]),
            format!("{:.4}", element.features[1]),
            element.group.to_string(),
            if log_freq.is_nan() {
                String::new()
            } else {
                format!("{log_freq:.4}")
            },
            (seen as u8).to_string(),
            bucket.to_string(),
        ]);
    }

    println!(
        "Figure 1 data: {} elements, {} appeared in the prefix, hash codes over {} buckets.",
        dataset.universe_size(),
        prefix.distinct_len(),
        estimator.buckets()
    );
    // Print a compact per-bucket summary instead of all rows.
    let mut per_bucket = vec![(0usize, 0usize); estimator.buckets()];
    for element in dataset.elements() {
        let e = dataset.stream_element(element.id).unwrap();
        let bucket = estimator.bucket_of(&e);
        if estimator.is_stored(element.id) {
            per_bucket[bucket].0 += 1;
        } else {
            per_bucket[bucket].1 += 1;
        }
    }
    println!("bucket  seen_elements  unseen_elements_routed_here");
    for (j, (seen, unseen)) in per_bucket.iter().enumerate() {
        println!("{j:>6}  {seen:>13}  {unseen:>27}");
    }
    match table.write_csv() {
        Ok(path) => println!("full per-element data written to {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
