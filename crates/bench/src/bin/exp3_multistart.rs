//! Experiment 3 (Figure 4): stability of `bcd` across random starting points
//! for λ = 0.5.
//!
//! For each problem size G, block coordinate descent is run from several
//! independent random initializations and the mean ± standard deviation of
//! every error term is reported — small deviations demonstrate that the
//! heuristic is robust to its initialization, the paper's takeaway.

use opthash::SolverKind;
use opthash_bench::{mean_std, ExperimentTable, SyntheticWorkload};
use opthash_solver::BcdConfig;

fn main() {
    let starts = 5u64;
    let group_range = 4usize..=10;
    let mut table = ExperimentTable::new(
        "exp3_multistart",
        &[
            "num_groups",
            "prefix_estimation_error_per_element",
            "prefix_similarity_error_per_pair",
            "prefix_overall_error",
            "elapsed_seconds",
        ],
    );

    for num_groups in group_range {
        let mut est = Vec::new();
        let mut sim = Vec::new();
        let mut overall = Vec::new();
        let mut time = Vec::new();
        for start in 0..starts {
            let workload = SyntheticWorkload::new(
                num_groups,
                0.5,
                SolverKind::Bcd(BcdConfig {
                    seed: start,
                    ..BcdConfig::default()
                }),
                // Same dataset seed for every start: only the initialization
                // of the descent varies, which is what Figure 4 isolates.
                7,
            );
            let run = workload.run();
            est.push(run.prefix_estimation_error_per_element);
            sim.push(run.prefix_similarity_error_per_pair);
            overall.push(run.prefix_overall_error);
            time.push(run.elapsed_seconds);
        }
        let fmt = |values: &[f64]| {
            let (m, s) = mean_std(values);
            format!("{m:.4} ± {s:.4}")
        };
        table.push_row(vec![
            num_groups.to_string(),
            fmt(&est),
            fmt(&sim),
            fmt(&overall),
            fmt(&time),
        ]);
    }

    table.print();
    if let Ok(path) = table.write_csv() {
        println!("\nwritten to {}", path.display());
    }
}
