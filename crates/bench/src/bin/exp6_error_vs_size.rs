//! Experiment 6 (Figure 7): estimation error as a function of the
//! estimator's size (in KB) on the query log, evaluated after two snapshot
//! days (the paper uses days 30 and 70).
//!
//! For every size the three methods are compared: `opt-hash`, the Learned
//! Count-Min Sketch with an ideal heavy-hitter oracle (`heavy-hitter`, best
//! hyper-parameters) and the Count-Min Sketch (`count-min`, best depth).
//!
//! Set `OPTHASH_SCALE=full` for the paper-scale log (90 days, 120 KB point).

use opthash_bench::{ExperimentTable, QueryLogHarness, QueryLogScale};
use opthash_stream::SpaceBudget;

fn main() {
    let scale = QueryLogScale::from_env();
    let (day_a, day_b) = scale.snapshot_days();
    println!("scale: {scale:?}; evaluating after days {day_a} and {day_b}");

    let mut table = ExperimentTable::new(
        "exp6_error_vs_size",
        &[
            "size_kb",
            "day",
            "method",
            "average_absolute_error",
            "expected_absolute_error",
        ],
    );

    for &size_kb in &scale.sizes_kb() {
        // A fresh harness per size keeps the runs independent (fresh RNG for
        // the baselines) while the underlying log stays identical (same seed).
        let mut harness = QueryLogHarness::new(scale, 17);
        let budget = SpaceBudget::from_kb(size_kb);
        let results = harness.run_budget(budget, 0.3, &[day_a, day_b]);
        for (day, methods) in results {
            for m in methods {
                table.push_row(vec![
                    format!("{size_kb}"),
                    day.to_string(),
                    m.method,
                    format!("{:.2}", m.average_error),
                    format!("{:.2}", m.expected_error),
                ]);
            }
        }
    }

    table.print();
    if let Ok(path) = table.write_csv() {
        println!("\nwritten to {}", path.display());
    }
}
