//! Experiment 7 (Figure 8): estimation error as a function of time (in days)
//! for two memory configurations (the paper uses 4 KB and 120 KB).
//!
//! Set `OPTHASH_SCALE=full` for the paper-scale log; the quick scale uses
//! 4 KB and 40 KB over 40 days.

use opthash_bench::{ExperimentTable, QueryLogHarness, QueryLogScale};
use opthash_stream::SpaceBudget;

fn main() {
    let scale = QueryLogScale::from_env();
    let sizes: Vec<f64> = match scale {
        QueryLogScale::Quick => vec![4.0, 12.0],
        QueryLogScale::Full => vec![4.0, 120.0],
    };
    // Evaluate roughly every fifth of the horizon.
    let last_day = match scale {
        QueryLogScale::Quick => 39usize,
        QueryLogScale::Full => 89usize,
    };
    let eval_days: Vec<usize> = (1..=5).map(|i| i * last_day / 5).collect();
    println!("scale: {scale:?}; evaluating at days {eval_days:?}");

    let mut table = ExperimentTable::new(
        "exp7_error_vs_time",
        &[
            "size_kb",
            "day",
            "method",
            "average_absolute_error",
            "expected_absolute_error",
        ],
    );

    for &size_kb in &sizes {
        let mut harness = QueryLogHarness::new(scale, 23);
        let budget = SpaceBudget::from_kb(size_kb);
        let results = harness.run_budget(budget, 0.3, &eval_days);
        for (day, methods) in results {
            for m in methods {
                table.push_row(vec![
                    format!("{size_kb}"),
                    day.to_string(),
                    m.method,
                    format!("{:.2}", m.average_error),
                    format!("{:.2}", m.expected_error),
                ]);
            }
        }
    }

    table.print();
    if let Ok(path) = table.write_csv() {
        println!("\nwritten to {}", path.display());
    }
}
