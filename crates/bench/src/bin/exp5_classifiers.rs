//! Experiment 5 (Figure 6): comparison between classification methods for
//! unseen elements (logreg vs cart vs rf), with g0 = 0.33 and λ = 0.5.
//!
//! Reports the estimation, similarity and overall error on elements that did
//! not appear in the prefix but did appear within `10·|S0|` further arrivals,
//! plus the end-to-end learning time.

use opthash::SolverKind;
use opthash_bench::{mean_std, ExperimentTable, SyntheticWorkload};
use opthash_ml::ClassifierKind;
use opthash_solver::BcdConfig;

fn main() {
    let repetitions = 3u64;
    let group_range = 4usize..=9;
    let mut table = ExperimentTable::new(
        "exp5_classifiers",
        &[
            "num_groups",
            "classifier",
            "unseen_estimation_error",
            "unseen_similarity_error",
            "unseen_overall_error",
            "elapsed_seconds",
        ],
    );

    for num_groups in group_range {
        for classifier in ClassifierKind::all() {
            let mut est = Vec::new();
            let mut sim = Vec::new();
            let mut overall = Vec::new();
            let mut time = Vec::new();
            for rep in 0..repetitions {
                let mut workload = SyntheticWorkload::new(
                    num_groups,
                    0.5,
                    SolverKind::Bcd(BcdConfig::default()),
                    300 + rep,
                );
                workload.fraction_seen = 0.33;
                workload.classifier = classifier;
                let run = workload.run();
                est.push(run.unseen_estimation_error);
                sim.push(run.unseen_similarity_error);
                overall.push(run.unseen_overall_error);
                time.push(run.elapsed_seconds);
            }
            table.push_row(vec![
                num_groups.to_string(),
                classifier.name().to_owned(),
                format!("{:.4}", mean_std(&est).0),
                format!("{:.4}", mean_std(&sim).0),
                format!("{:.4}", mean_std(&overall).0),
                format!("{:.3}", mean_std(&time).0),
            ]);
        }
    }

    table.print();
    if let Ok(path) = table.write_csv() {
        println!("\nwritten to {}", path.display());
    }
}
