//! Experiment 4 (Figure 5): impact of the fraction of elements seen in the
//! prefix (`g0`) for G = 10.
//!
//! Compares `bcd` (λ = 0.5) with `dp` (λ = 1) as `g0` varies, reporting the
//! errors both on the prefix and on elements that did not appear in the
//! prefix but did appear within `|S| = 10·|S0|` further arrivals.

use opthash::SolverKind;
use opthash_bench::{mean_std, ExperimentTable, SyntheticWorkload};
use opthash_solver::BcdConfig;

fn main() {
    let repetitions = 3u64;
    let fractions = [0.1, 0.3, 0.5, 0.7, 0.9];
    let mut table = ExperimentTable::new(
        "exp4_fraction_seen",
        &[
            "fraction_seen",
            "solver",
            "prefix_estimation_error_per_element",
            "prefix_similarity_error_per_pair",
            "unseen_estimation_error",
            "unseen_similarity_error",
        ],
    );

    for &fraction in &fractions {
        for (name, solver, lambda) in [
            ("bcd", SolverKind::Bcd(BcdConfig::default()), 0.5),
            ("dp", SolverKind::Dp, 1.0),
        ] {
            let mut prefix_est = Vec::new();
            let mut prefix_sim = Vec::new();
            let mut unseen_est = Vec::new();
            let mut unseen_sim = Vec::new();
            for rep in 0..repetitions {
                let mut workload = SyntheticWorkload::new(10, lambda, solver, 200 + rep);
                workload.fraction_seen = fraction;
                let run = workload.run();
                prefix_est.push(run.prefix_estimation_error_per_element);
                prefix_sim.push(run.prefix_similarity_error_per_pair);
                unseen_est.push(run.unseen_estimation_error);
                unseen_sim.push(run.unseen_similarity_error);
            }
            table.push_row(vec![
                format!("{fraction:.1}"),
                name.to_owned(),
                format!("{:.4}", mean_std(&prefix_est).0),
                format!("{:.4}", mean_std(&prefix_sim).0),
                format!("{:.4}", mean_std(&unseen_est).0),
                format!("{:.4}", mean_std(&unseen_sim).0),
            ]);
        }
    }

    table.print();
    if let Ok(path) = table.write_csv() {
        println!("\nwritten to {}", path.display());
    }
}
