//! Experiment 1 (Figure 2): impact of the hyper-parameter λ for G = 6.
//!
//! Runs the three solvers (`milp` = exact branch-and-bound, `bcd`, `dp`) for
//! λ ∈ {0, 0.2, …, 1} and reports the prefix estimation error, similarity
//! error, overall error (absolute scale, as in the paper's Figure 2) and the
//! elapsed learning time. The `dp` solver ignores λ by construction.

use opthash::SolverKind;
use opthash_bench::{mean_std, ExperimentTable, SyntheticWorkload};
use opthash_solver::{BcdConfig, ExactConfig};
use std::time::Duration;

fn main() {
    let repetitions = 3u64;
    let lambdas = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut table = ExperimentTable::new(
        "exp1_lambda",
        &[
            "lambda",
            "solver",
            "prefix_estimation_error",
            "prefix_similarity_error",
            "prefix_overall_error",
            "elapsed_seconds",
        ],
    );

    for &lambda in &lambdas {
        let solvers: Vec<(&str, SolverKind, f64)> = vec![
            (
                "milp",
                SolverKind::Exact(ExactConfig {
                    max_nodes: 200_000,
                    time_limit: Duration::from_secs(10),
                    ..ExactConfig::default()
                }),
                lambda,
            ),
            ("bcd", SolverKind::Bcd(BcdConfig::default()), lambda),
            // dp always optimizes the estimation error alone (λ = 1).
            ("dp", SolverKind::Dp, 1.0),
        ];
        for (name, solver, solver_lambda) in solvers {
            let mut est = Vec::new();
            let mut sim = Vec::new();
            let mut overall = Vec::new();
            let mut time = Vec::new();
            for rep in 0..repetitions {
                let mut workload = SyntheticWorkload::new(6, solver_lambda, solver, rep);
                workload.fraction_seen = 0.5;
                let run = workload.run();
                // Report the error terms under the *sweep's* λ so the three
                // solvers are compared on the same objective, as in Figure 2.
                est.push(run.prefix_estimation_error);
                sim.push(run.prefix_similarity_error);
                overall.push(
                    lambda * run.prefix_estimation_error
                        + (1.0 - lambda) * run.prefix_similarity_error,
                );
                time.push(run.elapsed_seconds);
            }
            let (est_mean, _) = mean_std(&est);
            let (sim_mean, _) = mean_std(&sim);
            let (overall_mean, _) = mean_std(&overall);
            let (time_mean, _) = mean_std(&time);
            table.push_row(vec![
                format!("{lambda:.1}"),
                name.to_owned(),
                format!("{est_mean:.2}"),
                format!("{sim_mean:.2}"),
                format!("{overall_mean:.2}"),
                format!("{time_mean:.3}"),
            ]);
        }
    }

    table.print();
    if let Ok(path) = table.write_csv() {
        println!("\nwritten to {}", path.display());
    }
}
