//! Experiment 8 (Table 1): average `opt-hash` error after the whole log as a
//! percentage of each query's true frequency, for the 1st, 10th, 100th,
//! 1,000th and 10,000th most common queries.
//!
//! Set `OPTHASH_SCALE=full` for the paper-scale log (which actually contains
//! a 10,000th-ranked query; the quick log reports up to its own tail).

use opthash_bench::{ExperimentTable, QueryLogHarness, QueryLogScale};
use opthash_stream::SpaceBudget;

fn main() {
    let scale = QueryLogScale::from_env();
    let mut harness = QueryLogHarness::new(scale, 31);
    // The paper's Table 1 accompanies the larger memory configurations; use
    // the biggest size of the scale's sweep.
    let size_kb = *scale.sizes_kb().last().unwrap();
    let budget = SpaceBudget::from_kb(size_kb);
    println!(
        "scale: {scale:?}; opt-hash size {size_kb} KB over {} days",
        harness.days()
    );

    let ranks = [1usize, 10, 100, 1_000, 10_000];
    let rows = harness.rank_table(budget, 0.3, &ranks);

    let mut table = ExperimentTable::new(
        "exp8_rank_table",
        &["query_rank", "query_frequency", "average_error_percentage"],
    );
    for (rank, frequency, pct) in rows {
        table.push_row(vec![
            rank.to_string(),
            frequency.to_string(),
            format!("{pct:.2}"),
        ]);
    }

    table.print();
    if let Ok(path) = table.write_csv() {
        println!("\nwritten to {}", path.display());
    }
}
