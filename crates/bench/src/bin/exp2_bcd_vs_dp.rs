//! Experiment 2 (Figure 3): `bcd` vs `dp` in the λ = 1 case.
//!
//! Sweeps the number of groups G (problem size grows exponentially in G) and
//! reports per-element estimation error, per-pair similarity error, overall
//! error and elapsed time for both solvers; `dp` is provably optimal here.

use opthash::SolverKind;
use opthash_bench::{mean_std, ExperimentTable, SyntheticWorkload};
use opthash_solver::BcdConfig;

fn main() {
    let repetitions = 3u64;
    let group_range = 4usize..=10;
    let mut table = ExperimentTable::new(
        "exp2_bcd_vs_dp",
        &[
            "num_groups",
            "solver",
            "prefix_estimation_error_per_element",
            "prefix_similarity_error_per_pair",
            "prefix_overall_error_per_element",
            "elapsed_seconds",
        ],
    );

    for num_groups in group_range {
        for (name, solver) in [
            ("bcd", SolverKind::Bcd(BcdConfig::default())),
            ("dp", SolverKind::Dp),
        ] {
            let mut est = Vec::new();
            let mut sim = Vec::new();
            let mut time = Vec::new();
            for rep in 0..repetitions {
                let workload = SyntheticWorkload::new(num_groups, 1.0, solver, 100 + rep);
                let run = workload.run();
                est.push(run.prefix_estimation_error_per_element);
                sim.push(run.prefix_similarity_error_per_pair);
                time.push(run.elapsed_seconds);
            }
            let (est_mean, est_std) = mean_std(&est);
            let (sim_mean, _) = mean_std(&sim);
            let (time_mean, _) = mean_std(&time);
            table.push_row(vec![
                num_groups.to_string(),
                name.to_owned(),
                format!("{est_mean:.4} ± {est_std:.4}"),
                format!("{sim_mean:.4}"),
                // with λ = 1 the overall error equals the estimation error
                format!("{est_mean:.4}"),
                format!("{time_mean:.3}"),
            ]);
        }
    }

    table.print();
    if let Ok(path) = table.write_csv() {
        println!("\nwritten to {}", path.display());
    }
}
