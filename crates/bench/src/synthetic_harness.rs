//! Harness for the synthetic-data experiments (Section 6 / Figures 1–6).
//!
//! Wraps the group generator, the three solvers and the classifiers behind a
//! single [`SyntheticWorkload::run`] call that returns exactly the error
//! terms the paper's plots show: prefix estimation/similarity/overall error,
//! the same errors on unseen elements after `10·|S0|` further arrivals, and
//! the elapsed time.

use opthash::{OptHash, OptHashBuilder, SolverKind};
use opthash_datagen::groups::{GroupConfig, GroupDataset};
use opthash_ml::ClassifierKind;
use opthash_stream::{assignment_errors, FrequencyEstimator, StreamElement, StreamPrefix};
use std::time::Instant;

/// A synthetic experiment configuration (one point of a sweep).
#[derive(Debug, Clone, Copy)]
pub struct SyntheticWorkload {
    /// Number of groups `G`.
    pub num_groups: usize,
    /// Fraction of each group visible in the prefix (`g0`).
    pub fraction_seen: f64,
    /// Trade-off weight λ.
    pub lambda: f64,
    /// Number of buckets `b`.
    pub buckets: usize,
    /// Solver choice.
    pub solver: SolverKind,
    /// Classifier for unseen elements.
    pub classifier: ClassifierKind,
    /// Seed of this repetition.
    pub seed: u64,
}

impl SyntheticWorkload {
    /// The paper's base configuration: 10 buckets, CART classifier.
    pub fn new(num_groups: usize, lambda: f64, solver: SolverKind, seed: u64) -> Self {
        SyntheticWorkload {
            num_groups,
            fraction_seen: 0.5,
            lambda,
            buckets: 10,
            solver,
            classifier: ClassifierKind::Cart,
            seed,
        }
    }
}

/// The measurements a single run produces — one point in Figures 2–6.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyntheticRun {
    /// Estimation error on the prefix (absolute scale).
    pub prefix_estimation_error: f64,
    /// Similarity error on the prefix (absolute scale).
    pub prefix_similarity_error: f64,
    /// Overall objective on the prefix (absolute scale).
    pub prefix_overall_error: f64,
    /// Estimation error on the prefix, per element.
    pub prefix_estimation_error_per_element: f64,
    /// Similarity error on the prefix, per ordered co-bucketed pair.
    pub prefix_similarity_error_per_pair: f64,
    /// Estimation error on unseen elements after `10·|S0|` arrivals, per
    /// element.
    pub unseen_estimation_error: f64,
    /// Similarity error on unseen elements (per pair, against the learned
    /// scheme's buckets).
    pub unseen_similarity_error: f64,
    /// Overall error on unseen elements.
    pub unseen_overall_error: f64,
    /// Wall-clock seconds spent learning (solver + classifier).
    pub elapsed_seconds: f64,
    /// Number of distinct prefix elements.
    pub prefix_elements: usize,
}

impl SyntheticWorkload {
    /// Runs the workload once and collects every metric.
    pub fn run(&self) -> SyntheticRun {
        let dataset = GroupDataset::generate(GroupConfig {
            num_groups: self.num_groups,
            fraction_seen: self.fraction_seen,
            seed: self.seed,
            ..GroupConfig::default()
        });
        let (prefix_stream, continuation) = dataset.generate_experiment_streams(self.seed + 7);
        let prefix = StreamPrefix::from_stream(prefix_stream.clone());

        let start = Instant::now();
        let mut estimator = OptHashBuilder::new(self.buckets)
            .lambda(self.lambda)
            .solver(self.solver)
            .classifier(self.classifier)
            .seed(self.seed)
            .train(&prefix);
        let elapsed_seconds = start.elapsed().as_secs_f64();

        // Prefix-side errors. The λ = 1 solvers ignore features, but the
        // paper's plots still report the *similarity* error of the resulting
        // assignment, so both terms are re-evaluated here on the actual
        // prefix features regardless of λ.
        let stats = estimator.stats().clone();
        let n = stats.stored_elements.max(1);
        let solution = estimator.solution().clone();
        let prefix_frequencies = prefix.frequencies_f64();
        let prefix_features = prefix.features();
        let prefix_errors = assignment_errors(
            &prefix_frequencies,
            &prefix_features,
            &solution.assignment,
            self.buckets,
            0.5, // λ < 1 forces both terms to be evaluated; weighting is done below
        );
        let pairs =
            opthash_stream::metrics::ordered_cobucket_pairs(&solution.assignment, self.buckets)
                .max(1);

        // Stream the continuation; collect which unseen elements appeared.
        for arrival in continuation.iter() {
            estimator.update(arrival);
        }
        let continuation_freqs = continuation.frequencies();
        let unseen: Vec<(StreamElement, f64)> = continuation_freqs
            .iter()
            .filter(|(id, _)| !estimator.is_stored(*id))
            .map(|(id, f)| (dataset.stream_element(id).expect("exists"), f as f64))
            .collect();

        let (unseen_est, unseen_sim, unseen_overall) =
            unseen_errors(&estimator, &unseen, self.lambda, self.buckets);

        let prefix_estimation_error = prefix_errors.estimation_error;
        let prefix_similarity_error = prefix_errors.similarity_error;
        SyntheticRun {
            prefix_estimation_error,
            prefix_similarity_error,
            prefix_overall_error: self.lambda * prefix_estimation_error
                + (1.0 - self.lambda) * prefix_similarity_error,
            prefix_estimation_error_per_element: prefix_estimation_error / n as f64,
            prefix_similarity_error_per_pair: prefix_similarity_error / pairs as f64,
            unseen_estimation_error: unseen_est,
            unseen_similarity_error: unseen_sim,
            unseen_overall_error: unseen_overall,
            elapsed_seconds,
            prefix_elements: stats.stored_elements,
        }
    }
}

/// Computes the paper's unseen-element error terms: the estimation error is
/// the average |true − estimate| over unseen elements; the similarity error
/// is the per-pair feature distance of the buckets those elements are routed
/// into, re-evaluated over the unseen population.
fn unseen_errors(
    estimator: &OptHash,
    unseen: &[(StreamElement, f64)],
    lambda: f64,
    buckets: usize,
) -> (f64, f64, f64) {
    if unseen.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut abs_error_sum = 0.0;
    let mut assignment = Vec::with_capacity(unseen.len());
    let mut frequencies = Vec::with_capacity(unseen.len());
    let mut features = Vec::with_capacity(unseen.len());
    for (element, true_f) in unseen {
        let estimate = estimator.estimate(element);
        abs_error_sum += (estimate - true_f).abs();
        assignment.push(estimator.bucket_of(element));
        frequencies.push(*true_f);
        features.push(element.features.clone());
    }
    let estimation = abs_error_sum / unseen.len() as f64;
    let errors = assignment_errors(&frequencies, &features, &assignment, buckets, lambda);
    let pairs = opthash_stream::metrics::ordered_cobucket_pairs(&assignment, buckets).max(1);
    let similarity = errors.similarity_error / pairs as f64;
    let overall = lambda * estimation + (1.0 - lambda) * similarity;
    (estimation, similarity, overall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opthash_solver::BcdConfig;

    #[test]
    fn run_produces_finite_metrics() {
        let workload = SyntheticWorkload::new(4, 0.5, SolverKind::Bcd(BcdConfig::default()), 1);
        let run = workload.run();
        assert!(run.prefix_estimation_error.is_finite());
        assert!(run.prefix_similarity_error >= 0.0);
        assert!(run.prefix_overall_error >= 0.0);
        assert!(run.unseen_estimation_error >= 0.0);
        assert!(run.elapsed_seconds >= 0.0);
        assert!(run.prefix_elements > 0);
    }

    #[test]
    fn dp_runs_with_lambda_one() {
        let workload = SyntheticWorkload::new(4, 1.0, SolverKind::Dp, 2);
        let run = workload.run();
        // With λ = 1 the overall error equals the estimation error.
        assert!((run.prefix_overall_error - run.prefix_estimation_error).abs() < 1e-9);
    }
}
