//! Harness for the real-world-style experiments (Section 7 / Figures 7–8 /
//! Table 1) on the synthetic query log.
//!
//! The harness trains `opt-hash` on day 0, builds Count-Min and Learned
//! Count-Min baselines at the same memory budget (several hyper-parameter
//! variants each, reporting the best — the paper's protocol), replays the
//! remaining days and evaluates both paper metrics at requested days.

use opthash::{OptHash, OptHashBuilder, SolverKind};
use opthash_datagen::querylog::{QueryLogConfig, QueryLogDataset};
use opthash_ml::{ClassifierKind, TextFeaturizer};
use opthash_sketch::{CountMinSketch, LearnedCountMin};
use opthash_stream::{
    ElementId, ErrorMetrics, Features, FrequencyEstimator, FrequencyVector, SpaceBudget,
    StreamElement, StreamPrefix,
};
use std::collections::HashMap;

/// How large the synthetic query log should be.
///
/// `Quick` keeps the experiment binaries in the tens of seconds; `Full`
/// approaches the paper's 90-day scale. Selected via the
/// `OPTHASH_SCALE=full` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryLogScale {
    /// Small log: 30,000 unique queries, 40 days, 15,000 arrivals per day.
    ///
    /// The sizes swept at this scale are capped at 12 KB so that every
    /// estimator stays well below the universe size (as in the paper, where
    /// even 120 KB is a tiny fraction of the 3.8M unique queries); larger
    /// budgets would let the baselines store the whole universe and the
    /// comparison would degenerate.
    Quick,
    /// Large log: 50,000 unique queries, 90 days, 20,000 arrivals per day.
    Full,
}

impl QueryLogScale {
    /// Reads the scale from the `OPTHASH_SCALE` environment variable
    /// (`full` → [`QueryLogScale::Full`], anything else → `Quick`).
    pub fn from_env() -> Self {
        match std::env::var("OPTHASH_SCALE") {
            Ok(v) if v.eq_ignore_ascii_case("full") => QueryLogScale::Full,
            _ => QueryLogScale::Quick,
        }
    }

    /// The generator configuration of this scale.
    pub fn config(&self, seed: u64) -> QueryLogConfig {
        match self {
            QueryLogScale::Quick => QueryLogConfig {
                num_queries: 30_000,
                days: 40,
                arrivals_per_day: 15_000,
                zipf_exponent: 1.0,
                seed,
            },
            QueryLogScale::Full => QueryLogConfig {
                num_queries: 50_000,
                days: 90,
                arrivals_per_day: 20_000,
                zipf_exponent: 1.0,
                seed,
            },
        }
    }

    /// The estimator sizes (in KB) swept by the error-vs-size experiment.
    pub fn sizes_kb(&self) -> Vec<f64> {
        match self {
            QueryLogScale::Quick => vec![1.2, 4.0, 12.0],
            QueryLogScale::Full => vec![1.2, 4.0, 12.0, 40.0, 120.0],
        }
    }

    /// The two days at which the error-vs-size experiment is evaluated
    /// (the paper uses days 30 and 70).
    pub fn snapshot_days(&self) -> (usize, usize) {
        match self {
            QueryLogScale::Quick => (15, 35),
            QueryLogScale::Full => (30, 70),
        }
    }
}

/// Per-method evaluation at one day.
#[derive(Debug, Clone)]
pub struct MethodError {
    /// Method name (`opt-hash`, `heavy-hitter`, `count-min`).
    pub method: String,
    /// Average per-element absolute error.
    pub average_error: f64,
    /// Expected magnitude of the absolute error.
    pub expected_error: f64,
}

/// One full replay of the log with every estimator at one memory budget.
pub struct QueryLogHarness {
    log: QueryLogDataset,
    featurizer: TextFeaturizer,
    feature_cache: HashMap<ElementId, Features>,
    seed: u64,
}

impl QueryLogHarness {
    /// Generates the log at the requested scale and fits the day-0 text
    /// featurizer (500-word vocabulary, as in the paper).
    pub fn new(scale: QueryLogScale, seed: u64) -> Self {
        let log = QueryLogDataset::generate(scale.config(seed));
        let day0 = log.first_day_counts();
        let featurizer = TextFeaturizer::fit(day0.iter().map(|(_, t, _)| t.as_str()), 500);
        QueryLogHarness {
            log,
            featurizer,
            feature_cache: HashMap::new(),
            seed,
        }
    }

    /// The underlying query log.
    pub fn log(&self) -> &QueryLogDataset {
        &self.log
    }

    /// Number of days in the log.
    pub fn days(&self) -> usize {
        self.log.config().days
    }

    fn features_of(&mut self, id: ElementId) -> Features {
        if let Some(f) = self.feature_cache.get(&id) {
            return f.clone();
        }
        let text = self.log.query_text(id).expect("query exists");
        let features = self.featurizer.transform(text);
        self.feature_cache.insert(id, features.clone());
        features
    }

    /// Trains `opt-hash` on the day-0 counts with a memory budget of
    /// `budget`, using the bucket-to-ID ratio `ratio_c` and the exact `λ = 1`
    /// DP (Section 7.3 trains with λ = 1; the classifier is a random forest).
    pub fn train_opt_hash(&mut self, budget: SpaceBudget, ratio_c: f64) -> OptHash {
        let (stored, buckets) = budget.opt_hash_split(ratio_c);
        let day0 = self.log.first_day_counts();
        let pairs: Vec<(StreamElement, u64)> = day0
            .iter()
            .map(|(id, _, count)| (StreamElement::new(*id, self.features_of(*id)), *count))
            .collect();
        let prefix = StreamPrefix::from_counts(pairs);
        OptHashBuilder::new(buckets.max(2))
            .lambda(1.0)
            .solver(SolverKind::Dp)
            .classifier(ClassifierKind::RandomForest)
            .max_stored_elements(stored.max(2))
            .seed(self.seed)
            .train(&prefix)
    }

    /// Builds the Count-Min baseline variants (depths 1/2/4/6) at a budget.
    pub fn count_min_variants(&self, budget: SpaceBudget) -> Vec<CountMinSketch> {
        [1usize, 2, 4, 6]
            .iter()
            .map(|&d| {
                CountMinSketch::with_total_buckets(budget.total_buckets(), d, self.seed + d as u64)
            })
            .collect()
    }

    /// Builds the Learned Count-Min baseline variants (heavy buckets
    /// 10/100/1000/10000 × depths 1/2/4, clamped to the budget) with an ideal
    /// heavy-hitter oracle over the whole log.
    pub fn learned_cms_variants(&self, budget: SpaceBudget) -> Vec<LearnedCountMin> {
        let heavy_ids = self.log.top_k_ids(10_000);
        let mut variants = Vec::new();
        for &heavy in &[10usize, 100, 1_000, 10_000] {
            if heavy * 2 > budget.total_buckets() {
                continue;
            }
            for &depth in &[1usize, 2, 4] {
                variants.push(LearnedCountMin::with_budget(
                    budget,
                    heavy,
                    &heavy_ids,
                    depth,
                    self.seed + depth as u64,
                ));
            }
        }
        if variants.is_empty() {
            variants.push(LearnedCountMin::with_budget(
                budget, 1, &heavy_ids, 1, self.seed,
            ));
        }
        variants
    }

    /// Replays the whole log at one memory budget, evaluating all methods at
    /// each of `eval_days`. Returns `(day, method errors)` tuples where the
    /// baseline errors are the best across their hyper-parameter variants
    /// (the paper's reporting protocol).
    pub fn run_budget(
        &mut self,
        budget: SpaceBudget,
        ratio_c: f64,
        eval_days: &[usize],
    ) -> Vec<(usize, Vec<MethodError>)> {
        let mut opt_hash = self.train_opt_hash(budget, ratio_c);
        let mut count_mins = self.count_min_variants(budget);
        let mut learned_cmss = self.learned_cms_variants(budget);

        // The baselines see day 0 as ordinary data (opt-hash folded the day-0
        // counts in at training time).
        let day0 = self.log.day_stream(0);
        for cms in &mut count_mins {
            cms.update_stream(&day0);
        }
        for lcms in &mut learned_cmss {
            lcms.update_stream(&day0);
        }

        let mut truth = self.log.day_counts(0);
        let mut results = Vec::new();
        if eval_days.contains(&0) {
            results.push((
                0,
                self.evaluate(&truth, &opt_hash, &count_mins, &learned_cmss),
            ));
        }

        let last_day = *eval_days.iter().max().unwrap_or(&0);
        for day in 1..=last_day.min(self.days() - 1) {
            let stream = self.log.day_stream(day);
            for arrival in stream.iter() {
                opt_hash.update(arrival);
                for cms in &mut count_mins {
                    cms.update(arrival);
                }
                for lcms in &mut learned_cmss {
                    lcms.update(arrival);
                }
            }
            truth.merge(&stream.frequencies());
            if eval_days.contains(&day) {
                results.push((
                    day,
                    self.evaluate(&truth, &opt_hash, &count_mins, &learned_cmss),
                ));
            }
        }
        results
    }

    /// Evaluates every method against the true cumulative counts.
    fn evaluate(
        &mut self,
        truth: &FrequencyVector,
        opt_hash: &OptHash,
        count_mins: &[CountMinSketch],
        learned_cmss: &[LearnedCountMin],
    ) -> Vec<MethodError> {
        let ids: Vec<(ElementId, u64)> = truth.iter().collect();

        let mut opt_metrics = ErrorMetrics::new();
        let mut cms_metrics = vec![ErrorMetrics::new(); count_mins.len()];
        let mut lcms_metrics = vec![ErrorMetrics::new(); learned_cmss.len()];
        for &(id, f) in &ids {
            let truth_f = f as f64;
            // opt-hash needs the text features only for unseen queries; the
            // cache keeps the transform cost amortized.
            let element = if opt_hash.is_stored(id) {
                StreamElement::without_features(id)
            } else {
                StreamElement::new(id, self.features_of(id))
            };
            opt_metrics.observe(truth_f, opt_hash.estimate(&element));
            let bare = StreamElement::without_features(id);
            for (m, cms) in cms_metrics.iter_mut().zip(count_mins) {
                m.observe(truth_f, cms.estimate(&bare));
            }
            for (m, lcms) in lcms_metrics.iter_mut().zip(learned_cmss) {
                m.observe(truth_f, lcms.estimate(&bare));
            }
        }

        let best = |metrics: &[ErrorMetrics]| -> (f64, f64) {
            let avg = metrics
                .iter()
                .map(ErrorMetrics::average_absolute_error)
                .fold(f64::INFINITY, f64::min);
            let expected = metrics
                .iter()
                .map(ErrorMetrics::expected_absolute_error)
                .fold(f64::INFINITY, f64::min);
            (avg, expected)
        };
        let (cms_avg, cms_exp) = best(&cms_metrics);
        let (lcms_avg, lcms_exp) = best(&lcms_metrics);
        vec![
            MethodError {
                method: "opt-hash".to_owned(),
                average_error: opt_metrics.average_absolute_error(),
                expected_error: opt_metrics.expected_absolute_error(),
            },
            MethodError {
                method: "heavy-hitter".to_owned(),
                average_error: lcms_avg,
                expected_error: lcms_exp,
            },
            MethodError {
                method: "count-min".to_owned(),
                average_error: cms_avg,
                expected_error: cms_exp,
            },
        ]
    }

    /// Per-rank relative error of `opt-hash` after the full log — Table 1.
    /// Returns `(rank, true frequency, average error percentage)` rows.
    pub fn rank_table(
        &mut self,
        budget: SpaceBudget,
        ratio_c: f64,
        ranks: &[usize],
    ) -> Vec<(usize, u64, f64)> {
        let last_day = self.days() - 1;
        let mut opt_hash = self.train_opt_hash(budget, ratio_c);
        let mut truth = self.log.day_counts(0);
        for day in 1..=last_day {
            let stream = self.log.day_stream(day);
            for arrival in stream.iter() {
                opt_hash.update(arrival);
            }
            truth.merge(&stream.frequencies());
        }
        ranks
            .iter()
            .filter_map(|&rank| {
                truth.frequency_at_rank(rank).map(|(id, f)| {
                    let element = if opt_hash.is_stored(id) {
                        StreamElement::without_features(id)
                    } else {
                        StreamElement::new(id, self.features_of(id))
                    };
                    let estimate = opt_hash.estimate(&element);
                    let pct = 100.0 * (estimate - f as f64).abs() / f as f64;
                    (rank, f, pct)
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_quick() {
        // (environment not set in tests)
        assert_eq!(QueryLogScale::from_env(), QueryLogScale::Quick);
        assert_eq!(QueryLogScale::Quick.sizes_kb().len(), 3);
        assert_eq!(QueryLogScale::Full.snapshot_days(), (30, 70));
    }

    #[test]
    fn harness_runs_a_tiny_budget_end_to_end() {
        let mut harness = QueryLogHarness {
            log: QueryLogDataset::generate(QueryLogConfig {
                num_queries: 800,
                days: 4,
                arrivals_per_day: 2_000,
                zipf_exponent: 1.0,
                seed: 5,
            }),
            featurizer: TextFeaturizer::fit(["google", "yahoo mail"].iter().copied(), 50),
            feature_cache: HashMap::new(),
            seed: 5,
        };
        let results = harness.run_budget(SpaceBudget::from_kb(1.2), 0.3, &[1, 3]);
        assert_eq!(results.len(), 2);
        for (_, methods) in &results {
            assert_eq!(methods.len(), 3);
            for m in methods {
                assert!(m.average_error.is_finite());
                assert!(m.expected_error.is_finite());
            }
        }
        let table = harness.rank_table(SpaceBudget::from_kb(1.2), 0.3, &[1, 10, 100]);
        assert_eq!(table.len(), 3);
        assert!(table[0].1 >= table[1].1);
    }
}
