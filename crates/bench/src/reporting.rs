//! Tabular reporting and CSV export shared by the experiment binaries.

use std::fs;
use std::path::PathBuf;

/// A simple experiment result table: a header row plus data rows, printed to
/// stdout in aligned columns and exported as CSV.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    /// Experiment identifier, e.g. `"exp1_lambda"`; used as the CSV filename.
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        ExperimentTable {
            name: name.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already-formatted cells.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Appends a row of floating-point cells, formatted with 4 significant
    /// decimals, prefixed by a label cell.
    pub fn push_numeric_row(&mut self, label: impl ToString, values: &[f64]) {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.4}")));
        self.push_row(cells);
    }

    /// Renders the table to stdout with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("\n== {} ==", self.name);
        println!("{}", render(&self.columns));
        for row in &self.rows {
            println!("{}", render(row));
        }
    }

    /// Writes the table as CSV under `target/experiments/<name>.csv` and
    /// returns the path.
    pub fn write_csv(&self) -> std::io::Result<PathBuf> {
        write_csv(&self.name, &self.columns, &self.rows)
    }
}

/// Writes rows as CSV under `target/experiments/<name>.csv`.
pub fn write_csv(name: &str, columns: &[String], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target").join("experiments");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&columns.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(&path, out)?;
    Ok(path)
}

/// Mean and standard deviation of a sample (population std; the experiments
/// report spread across repeated runs as the paper does).
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn table_rows_must_match_header() {
        let mut t = ExperimentTable::new("test", &["a", "b"]);
        t.push_numeric_row("x", &[1.0]);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0], vec!["x".to_owned(), "1.0000".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = ExperimentTable::new("test", &["a", "b"]);
        t.push_row(vec!["only-one".to_owned()]);
    }
}
