//! Tabular reporting, CSV export, and `BENCH_*.json` perf-report emission
//! shared by the experiment binaries.

use std::fs;
use std::path::{Path, PathBuf};

/// A simple experiment result table: a header row plus data rows, printed to
/// stdout in aligned columns and exported as CSV.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    /// Experiment identifier, e.g. `"exp1_lambda"`; used as the CSV filename.
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        ExperimentTable {
            name: name.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already-formatted cells.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Appends a row of floating-point cells, formatted with 4 significant
    /// decimals, prefixed by a label cell.
    pub fn push_numeric_row(&mut self, label: impl ToString, values: &[f64]) {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.4}")));
        self.push_row(cells);
    }

    /// Renders the table to stdout with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("\n== {} ==", self.name);
        println!("{}", render(&self.columns));
        for row in &self.rows {
            println!("{}", render(row));
        }
    }

    /// Writes the table as CSV under `target/experiments/<name>.csv` and
    /// returns the path.
    pub fn write_csv(&self) -> std::io::Result<PathBuf> {
        write_csv(&self.name, &self.columns, &self.rows)
    }
}

/// Writes rows as CSV under `target/experiments/<name>.csv`.
pub fn write_csv(name: &str, columns: &[String], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target").join("experiments");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&columns.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(&path, out)?;
    Ok(path)
}

/// An ordered set of JSON object fields, rendered in insertion order. The
/// workspace deliberately vendors no JSON serializer; the perf-trajectory
/// schema is flat enough that deterministic formatting beats a dependency.
#[derive(Debug, Clone, Default)]
pub struct JsonFields {
    entries: Vec<(String, String)>,
}

impl JsonFields {
    /// An empty field set.
    pub fn new() -> Self {
        JsonFields::default()
    }

    fn push(mut self, key: &str, rendered: String) -> Self {
        self.entries.push((key.to_owned(), rendered));
        self
    }

    /// Adds an integer field.
    pub fn int(self, key: &str, value: impl Into<i128>) -> Self {
        let value: i128 = value.into();
        self.push(key, value.to_string())
    }

    /// Adds a floating-point field with `decimals` fractional digits.
    pub fn float(self, key: &str, value: f64, decimals: usize) -> Self {
        let rendered = if value.is_finite() {
            format!("{value:.decimals$}")
        } else {
            // JSON has no Infinity/NaN; record them as null.
            "null".to_owned()
        };
        self.push(key, rendered)
    }

    /// Adds a string field (escaped).
    pub fn text(self, key: &str, value: &str) -> Self {
        let escaped: String = value
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect();
        self.push(key, format!("\"{escaped}\""))
    }

    /// Adds a boolean field.
    pub fn flag(self, key: &str, value: bool) -> Self {
        self.push(key, value.to_string())
    }

    fn render(&self, indent: &str) -> Vec<String> {
        self.entries
            .iter()
            .map(|(key, value)| format!("{indent}\"{key}\": {value}"))
            .collect()
    }
}

/// A `BENCH_*.json` perf report: ordered scalar fields plus named lists of
/// objects, rendered as stable, diff-friendly JSON so the repository keeps
/// a performance trajectory across PRs.
///
/// ```
/// use opthash_bench::reporting::{JsonFields, PerfReport};
///
/// let mut report = PerfReport::new("demo");
/// report.set(JsonFields::new().int("arrivals", 1000).float("qps", 1.5, 3));
/// report.push("rows", JsonFields::new().text("name", "a").int("n", 1));
/// let json = report.to_json();
/// assert!(json.starts_with("{\n  \"bench\": \"demo\",\n"));
/// assert!(json.contains("\"qps\": 1.500"));
/// ```
#[derive(Debug, Clone)]
pub struct PerfReport {
    bench: String,
    fields: JsonFields,
    lists: Vec<(String, Vec<JsonFields>)>,
}

impl PerfReport {
    /// A report named `bench` (emitted as the leading `"bench"` field).
    pub fn new(bench: &str) -> Self {
        PerfReport {
            bench: bench.to_owned(),
            fields: JsonFields::new(),
            lists: Vec::new(),
        }
    }

    /// Appends top-level scalar fields.
    pub fn set(&mut self, fields: JsonFields) -> &mut Self {
        self.fields.entries.extend(fields.entries);
        self
    }

    /// Appends one object to the list named `key` (created on first use;
    /// lists render after the scalar fields, in first-use order).
    pub fn push(&mut self, key: &str, object: JsonFields) -> &mut Self {
        match self.lists.iter_mut().find(|(name, _)| name == key) {
            Some((_, objects)) => objects.push(object),
            None => self.lists.push((key.to_owned(), vec![object])),
        }
        self
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut lines = vec![format!("  \"bench\": \"{}\"", self.bench)];
        lines.extend(self.fields.render("  "));
        for (key, objects) in &self.lists {
            let mut rendered = format!("  \"{key}\": [\n");
            for (i, object) in objects.iter().enumerate() {
                rendered.push_str("    {\n");
                rendered.push_str(&object.render("      ").join(",\n"));
                rendered.push('\n');
                rendered.push_str(if i + 1 == objects.len() {
                    "    }\n"
                } else {
                    "    },\n"
                });
            }
            rendered.push_str("  ]");
            lines.push(rendered);
        }
        format!("{{\n{}\n}}\n", lines.join(",\n"))
    }

    /// Writes the rendered report to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        fs::write(path, self.to_json())
    }
}

/// Mean and standard deviation of a sample (population std; the experiments
/// report spread across repeated runs as the paper does).
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn table_rows_must_match_header() {
        let mut t = ExperimentTable::new("test", &["a", "b"]);
        t.push_numeric_row("x", &[1.0]);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0], vec!["x".to_owned(), "1.0000".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = ExperimentTable::new("test", &["a", "b"]);
        t.push_row(vec!["only-one".to_owned()]);
    }

    #[test]
    fn perf_report_renders_stable_json() {
        let mut report = PerfReport::new("registry");
        report.set(
            JsonFields::new()
                .int("tenants", 1000)
                .float("qps", 1234.5678, 1)
                .text("note", "say \"hi\"\\")
                .flag("governed", true),
        );
        report.push(
            "classes",
            JsonFields::new().text("class", "telemetry").int("n", 334),
        );
        report.push(
            "classes",
            JsonFields::new().text("class", "search").int("n", 333),
        );
        let json = report.to_json();
        let expected = concat!(
            "{\n",
            "  \"bench\": \"registry\",\n",
            "  \"tenants\": 1000,\n",
            "  \"qps\": 1234.6,\n",
            "  \"note\": \"say \\\"hi\\\"\\\\\",\n",
            "  \"governed\": true,\n",
            "  \"classes\": [\n",
            "    {\n",
            "      \"class\": \"telemetry\",\n",
            "      \"n\": 334\n",
            "    },\n",
            "    {\n",
            "      \"class\": \"search\",\n",
            "      \"n\": 333\n",
            "    }\n",
            "  ]\n",
            "}\n",
        );
        assert_eq!(json, expected);
    }

    #[test]
    fn perf_report_nan_becomes_null() {
        let mut report = PerfReport::new("x");
        report.set(JsonFields::new().float("bad", f64::NAN, 2));
        assert!(report.to_json().contains("\"bad\": null"));
    }
}
