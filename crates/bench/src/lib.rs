//! # opthash-bench
//!
//! Shared utilities for the experiment binaries (`exp0`–`exp8`) that
//! regenerate every figure and table of the paper, plus the Criterion
//! micro-benchmarks. See `DESIGN.md` (per-experiment index) and
//! `EXPERIMENTS.md` (paper-vs-measured) at the repository root.
//!
//! Each experiment binary prints the series its figure plots — one row per
//! x-value, one column per method — and writes the same rows as CSV under
//! `target/experiments/`.
//!
//! ```
//! use opthash_bench::{mean_std, ExperimentTable};
//!
//! let (mean, std) = mean_std(&[1.0, 2.0, 3.0]);
//! assert!((mean - 2.0).abs() < 1e-12);
//! assert!(std > 0.0);
//!
//! let mut table = ExperimentTable::new("doc_example", &["x", "y"]);
//! table.push_numeric_row("first", &[1.0]);
//! table.print();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod querylog_harness;
pub mod reporting;
pub mod synthetic_harness;

pub use querylog_harness::{QueryLogHarness, QueryLogScale};
pub use reporting::{mean_std, write_csv, ExperimentTable};
pub use synthetic_harness::{SyntheticRun, SyntheticWorkload};
