//! Ingest-throughput benchmarks for the sharded batched engine: a
//! 1M-arrival Zipf stream (universe 100k, exponent 1.3 — the head-heavy end
//! of the skews reported for web query logs, whose Zipf exponents range
//! from ≈1 to well above 1.4 across the classic query-log studies) pushed
//! through a Count-Min backend at a paper-scale size (8192 × 4 counters =
//! 128 KB, Section 7.4's budget band).
//!
//! Compared configurations, all consuming the same in-memory
//! `Vec<StreamElement>`:
//!
//! * `single_thread_update_stream` — the pre-engine ingestion path: one
//!   `FrequencyEstimator::update` (→ `CountMinSketch::add`) per arrival,
//! * `engine/{1,2,4,8}` — the [`opthash_engine::IngestEngine`] with that
//!   many shards, fed through its bulk `ingest_batch` path (per-shard
//!   batches pre-aggregate duplicate arrivals, full batches drain to
//!   shard-local forks, queries merge).
//!
//! After the criterion group, `speedup_summary` re-measures baseline and
//! engine interleaved (best of several alternating passes, so machine noise
//! hits both sides equally), prints Melem/s and speedups, and asserts the
//! engine's ≥ 2× acceptance target at 4 shards.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opthash_datagen::ZipfSampler;
use opthash_engine::{EngineConfig, IngestEngine};
use opthash_sketch::CountMinSketch;
use opthash_stream::{FrequencyEstimator, StreamElement};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const UNIVERSE: usize = 100_000;
const ARRIVALS: usize = 1_000_000;
const EXPONENT: f64 = 1.3;
const WIDTH: usize = 8_192;
const DEPTH: usize = 4;
const BATCH: usize = 16_384;

fn zipf_elements(n: usize) -> Vec<StreamElement> {
    let sampler = ZipfSampler::new(UNIVERSE, EXPONENT);
    let mut rng = StdRng::seed_from_u64(99);
    (0..n)
        .map(|_| StreamElement::without_features(sampler.sample(&mut rng) as u64))
        .collect()
}

fn baseline_pass(elements: &[StreamElement]) -> u64 {
    let mut cms = CountMinSketch::new(WIDTH, DEPTH, 1);
    for element in elements {
        cms.update(element);
    }
    cms.total_updates()
}

fn engine_pass(elements: &[StreamElement], shards: usize) -> u64 {
    let mut engine = IngestEngine::new(
        CountMinSketch::new(WIDTH, DEPTH, 1),
        EngineConfig::with_shards(shards).batch_capacity(BATCH),
    );
    engine.ingest_batch(elements).expect("bench ingest");
    engine.finish().expect("bench finish").total_updates()
}

fn bench_ingest(c: &mut Criterion) {
    let elements = zipf_elements(ARRIVALS);
    let mut group = c.benchmark_group("engine_ingest_1m_zipf");
    group.sample_size(10);

    group.bench_function("single_thread_update_stream", |b| {
        b.iter(|| black_box(baseline_pass(&elements)))
    });
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("engine", shards), &shards, |b, &shards| {
            b.iter(|| black_box(engine_pass(&elements, shards)))
        });
    }
    group.finish();
}

/// Interleaved best-of-`TRIALS` measurement: alternating baseline/engine
/// passes so that machine-load noise affects both sides symmetrically.
fn speedup_summary(_c: &mut Criterion) {
    // Enough alternating passes to actually sample the floor of both
    // distributions: on a noisy (virtualized, single-core) host the
    // engine's pass times spread several ms above their minimum, and five
    // trials routinely missed the floor that the criterion group above
    // still observed.
    const TRIALS: usize = 9;
    let elements = zipf_elements(ARRIVALS);
    let shard_counts = [1usize, 2, 4, 8];

    // Warm-up.
    black_box(baseline_pass(&elements));
    black_box(engine_pass(&elements, 4));

    let mut best_baseline = f64::INFINITY;
    let mut best_engine = [f64::INFINITY; 4];
    for _ in 0..TRIALS {
        let start = Instant::now();
        black_box(baseline_pass(&elements));
        best_baseline = best_baseline.min(start.elapsed().as_secs_f64());
        for (slot, &shards) in shard_counts.iter().enumerate() {
            let start = Instant::now();
            black_box(engine_pass(&elements, shards));
            best_engine[slot] = best_engine[slot].min(start.elapsed().as_secs_f64());
        }
    }

    println!(
        "\nsingle_thread_update_stream: {:6.2} Melem/s",
        ARRIVALS as f64 / best_baseline / 1e6
    );
    let mut at_four_shards = 0.0;
    for (slot, &shards) in shard_counts.iter().enumerate() {
        let speedup = best_baseline / best_engine[slot];
        if shards == 4 {
            at_four_shards = speedup;
        }
        println!(
            "engine/{shards} shards:            {:6.2} Melem/s  ({speedup:.2}x vs update_stream)",
            ARRIVALS as f64 / best_engine[slot] / 1e6
        );
    }
    assert!(
        at_four_shards >= 2.0,
        "acceptance: engine at 4 shards must ingest >= 2x the single-threaded \
         update_stream loop, measured {at_four_shards:.2}x"
    );
    println!("acceptance: engine/4 >= 2x single-threaded ingest — ok\n");
}

criterion_group!(benches, bench_ingest, speedup_summary);
criterion_main!(benches);
