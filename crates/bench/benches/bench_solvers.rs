//! Criterion benchmarks for the optimization layer: scaling of the `dp`,
//! `bcd` and exact (`milp`) solvers with the number of elements and buckets,
//! plus the DP-strategy ablation (quadratic vs divide-and-conquer) called out
//! in DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opthash_solver::kmedian::{kmedian_dp_with, ClusterCost, DpStrategy};
use opthash_solver::{BcdConfig, BcdSolver, ExactConfig, ExactSolver, HashingProblem};
use opthash_stream::Features;

/// Deterministic pseudo-random frequencies with a heavy tail.
fn frequencies(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = (state % 1000) as f64 / 1000.0;
            (1.0 / (r + 0.01)).min(500.0)
        })
        .collect()
}

fn features(n: usize, seed: u64) -> Vec<Features> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Features::new(vec![
                (state % 100) as f64 / 10.0,
                (state % 73) as f64 / 10.0,
            ])
        })
        .collect()
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmedian_dp");
    group.sample_size(20);
    // The strategy ablation runs under the median-deviation cost: that is
    // the cost whose concave-Monge interval matrix makes divide-and-conquer
    // sound, so it is the only cost where the two strategies genuinely
    // differ (MeanAbs + DivideAndConquer falls back to the quadratic DP).
    for &n in &[500usize, 2_000, 8_000] {
        let values = frequencies(n, 3);
        group.bench_with_input(BenchmarkId::new("divide_and_conquer", n), &n, |b, _| {
            b.iter(|| {
                black_box(kmedian_dp_with(
                    &values,
                    32,
                    ClusterCost::MedianAbs,
                    DpStrategy::DivideAndConquer,
                ))
            });
        });
        if n <= 2_000 {
            group.bench_with_input(BenchmarkId::new("quadratic", n), &n, |b, _| {
                b.iter(|| {
                    black_box(kmedian_dp_with(
                        &values,
                        32,
                        ClusterCost::MedianAbs,
                        DpStrategy::Quadratic,
                    ))
                });
            });
        }
    }
    // The exact mean-deviation DP (the paper's estimation-error objective)
    // is quadratic-only; benchmark it at sizes that path can afford.
    for &n in &[500usize, 2_000] {
        let values = frequencies(n, 3);
        group.bench_with_input(BenchmarkId::new("mean_abs_exact", n), &n, |b, _| {
            b.iter(|| {
                black_box(kmedian_dp_with(
                    &values,
                    32,
                    ClusterCost::MeanAbs,
                    DpStrategy::Quadratic,
                ))
            });
        });
    }
    group.finish();
}

fn bench_bcd(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcd");
    group.sample_size(10);
    for &n in &[200usize, 800] {
        let problem = HashingProblem::new(frequencies(n, 5), features(n, 7), 10, 0.5);
        group.bench_with_input(BenchmarkId::new("lambda_0.5", n), &n, |b, _| {
            let solver = BcdSolver::new(BcdConfig {
                max_iterations: 10,
                ..BcdConfig::default()
            });
            b.iter(|| black_box(solver.solve(&problem)));
        });
        let freq_only = HashingProblem::frequency_only(frequencies(n, 5), 10);
        group.bench_with_input(BenchmarkId::new("lambda_1.0", n), &n, |b, _| {
            let solver = BcdSolver::new(BcdConfig {
                max_iterations: 10,
                ..BcdConfig::default()
            });
            b.iter(|| black_box(solver.solve(&freq_only)));
        });
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_branch_and_bound");
    group.sample_size(10);
    for &n in &[8usize, 12] {
        let problem = HashingProblem::new(frequencies(n, 9), features(n, 11), 3, 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let solver = ExactSolver::new(ExactConfig::default());
            b.iter(|| black_box(solver.solve(&problem)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp, bench_bcd, bench_exact);
criterion_main!(benches);
