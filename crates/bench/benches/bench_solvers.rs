//! Criterion benchmarks for the optimization layer: scaling of the `dp`,
//! `bcd` and exact (`milp`) solvers with the number of elements and buckets,
//! plus the DP-strategy ablation (quadratic vs divide-and-conquer) called out
//! in DESIGN.md.
//!
//! After the criterion groups, `speedup_gate` re-measures the solver
//! engineering pass end-to-end: an in-bench copy of the pre-pass BCD descent
//! (`legacy` module — from-scratch bucket recomputation per candidate move)
//! is raced against today's incremental-cost [`BcdSolver`] and the
//! [`PortfolioSolver`] on exp2-like (frequency-only, n = 3000, b = 32) and
//! exp3-like (features, n = 1200, b = 16, λ = 0.5) training workloads, and
//! the run asserts the ≥ 10× acceptance target on both.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opthash_solver::kmedian::{kmedian_dp_with, ClusterCost, DpStrategy};
use opthash_solver::{
    BcdConfig, BcdSolver, ExactConfig, ExactSolver, HashingProblem, PortfolioConfig,
    PortfolioSolver,
};
use opthash_stream::Features;
use std::time::Instant;

/// Deterministic pseudo-random frequencies with a heavy tail.
fn frequencies(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = (state % 1000) as f64 / 1000.0;
            (1.0 / (r + 0.01)).min(500.0)
        })
        .collect()
}

fn features(n: usize, seed: u64) -> Vec<Features> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Features::new(vec![
                (state % 100) as f64 / 10.0,
                (state % 73) as f64 / 10.0,
            ])
        })
        .collect()
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmedian_dp");
    group.sample_size(20);
    // The strategy ablation runs under the median-deviation cost: that is
    // the cost whose concave-Monge interval matrix makes divide-and-conquer
    // sound, so it is the only cost where the two strategies genuinely
    // differ (MeanAbs + DivideAndConquer falls back to the quadratic DP).
    for &n in &[500usize, 2_000, 8_000] {
        let values = frequencies(n, 3);
        group.bench_with_input(BenchmarkId::new("divide_and_conquer", n), &n, |b, _| {
            b.iter(|| {
                black_box(kmedian_dp_with(
                    &values,
                    32,
                    ClusterCost::MedianAbs,
                    DpStrategy::DivideAndConquer,
                ))
            });
        });
        if n <= 2_000 {
            group.bench_with_input(BenchmarkId::new("quadratic", n), &n, |b, _| {
                b.iter(|| {
                    black_box(kmedian_dp_with(
                        &values,
                        32,
                        ClusterCost::MedianAbs,
                        DpStrategy::Quadratic,
                    ))
                });
            });
        }
    }
    // The exact mean-deviation DP (the paper's estimation-error objective)
    // is quadratic-only; benchmark it at sizes that path can afford.
    for &n in &[500usize, 2_000] {
        let values = frequencies(n, 3);
        group.bench_with_input(BenchmarkId::new("mean_abs_exact", n), &n, |b, _| {
            b.iter(|| {
                black_box(kmedian_dp_with(
                    &values,
                    32,
                    ClusterCost::MeanAbs,
                    DpStrategy::Quadratic,
                ))
            });
        });
    }
    group.finish();
}

fn bench_bcd(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcd");
    group.sample_size(10);
    for &n in &[200usize, 800] {
        let problem = HashingProblem::new(frequencies(n, 5), features(n, 7), 10, 0.5);
        group.bench_with_input(BenchmarkId::new("lambda_0.5", n), &n, |b, _| {
            let solver = BcdSolver::new(BcdConfig {
                max_iterations: 10,
                ..BcdConfig::default()
            });
            b.iter(|| black_box(solver.solve(&problem)));
        });
        let freq_only = HashingProblem::frequency_only(frequencies(n, 5), 10);
        group.bench_with_input(BenchmarkId::new("lambda_1.0", n), &n, |b, _| {
            let solver = BcdSolver::new(BcdConfig {
                max_iterations: 10,
                ..BcdConfig::default()
            });
            b.iter(|| black_box(solver.solve(&freq_only)));
        });
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_branch_and_bound");
    group.sample_size(10);
    for &n in &[8usize, 12] {
        let problem = HashingProblem::new(frequencies(n, 9), features(n, 11), 3, 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let solver = ExactSolver::new(ExactConfig::default());
            b.iter(|| black_box(solver.solve(&problem)));
        });
    }
    group.finish();
}

/// Faithful in-bench copy of the BCD descent as it stood before the solver
/// engineering pass: per-bucket member lists with from-scratch estimation
/// error recomputes (`O(|I_j|)` per candidate) and per-candidate member
/// distance sums (`O(|I_j|·d)` when features are active). This is the
/// baseline the ≥ 10× acceptance gate measures against; it is kept here, not
/// in the library, so the shipped solver carries no dead code.
mod legacy {
    use opthash_solver::{HashingProblem, InitStrategy};
    use opthash_stream::Features;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    struct Bucket {
        members: Vec<usize>,
        sum_frequency: f64,
        estimation_error: f64,
        similarity_error: f64,
    }

    impl Bucket {
        fn new() -> Self {
            Bucket {
                members: Vec::new(),
                sum_frequency: 0.0,
                estimation_error: 0.0,
                similarity_error: 0.0,
            }
        }

        fn mean(&self) -> f64 {
            if self.members.is_empty() {
                0.0
            } else {
                self.sum_frequency / self.members.len() as f64
            }
        }

        fn recompute_estimation_error(&mut self, frequencies: &[f64]) {
            let mean = self.mean();
            self.estimation_error = self
                .members
                .iter()
                .map(|&i| (frequencies[i] - mean).abs())
                .sum();
        }

        fn estimation_error_with(&self, candidate: usize, frequencies: &[f64]) -> f64 {
            let count = self.members.len() as f64 + 1.0;
            let mean = (self.sum_frequency + frequencies[candidate]) / count;
            let mut err = (frequencies[candidate] - mean).abs();
            for &i in &self.members {
                err += (frequencies[i] - mean).abs();
            }
            err
        }

        fn distance_to_members(&self, candidate: usize, features: &[Features]) -> f64 {
            if features.is_empty() {
                return 0.0;
            }
            self.members
                .iter()
                .map(|&i| features[candidate].l2_distance(&features[i]))
                .sum()
        }

        fn insert(&mut self, element: usize, frequencies: &[f64], dist_sum: f64) {
            self.members.push(element);
            self.sum_frequency += frequencies[element];
            self.similarity_error += 2.0 * dist_sum;
            self.recompute_estimation_error(frequencies);
        }

        fn remove(&mut self, element: usize, frequencies: &[f64], dist_sum: f64) {
            let pos = self
                .members
                .iter()
                .position(|&i| i == element)
                .expect("member");
            self.members.swap_remove(pos);
            self.sum_frequency -= frequencies[element];
            self.similarity_error -= 2.0 * dist_sum;
            if self.similarity_error < 0.0 {
                self.similarity_error = 0.0;
            }
            self.recompute_estimation_error(frequencies);
        }

        fn objective(&self, lambda: f64) -> f64 {
            lambda * self.estimation_error + (1.0 - lambda) * self.similarity_error
        }
    }

    /// Pre-pass multi-start BCD: random init per restart, full descents, no
    /// incremental statistics, no early aborts, no racing. Returns the best
    /// objective found.
    pub fn solve(
        problem: &HashingProblem,
        restarts: usize,
        seed: u64,
        max_iterations: usize,
        tolerance: f64,
        init: InitStrategy,
    ) -> f64 {
        assert!(
            matches!(init, InitStrategy::Random),
            "bench uses random init"
        );
        let mut best = f64::INFINITY;
        for restart in 0..restarts.max(1) {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(restart as u64));
            let assignment: Vec<usize> = (0..problem.len())
                .map(|_| rng.gen_range(0..problem.buckets))
                .collect();
            let objective = descend(problem, assignment, &mut rng, max_iterations, tolerance);
            best = best.min(objective);
        }
        best
    }

    fn descend(
        problem: &HashingProblem,
        mut assignment: Vec<usize>,
        rng: &mut StdRng,
        max_iterations: usize,
        tolerance: f64,
    ) -> f64 {
        let n = problem.len();
        let b = problem.buckets;
        let lambda = problem.lambda;
        let frequencies = &problem.frequencies;
        let features: &[Features] = if problem.uses_features() {
            &problem.features
        } else {
            &[]
        };

        let mut buckets: Vec<Bucket> = (0..b).map(|_| Bucket::new()).collect();
        for (i, &j) in assignment.iter().enumerate() {
            let dist = buckets[j].distance_to_members(i, features);
            buckets[j].insert(i, frequencies, dist);
        }
        let mut objective: f64 = buckets.iter().map(|bk| bk.objective(lambda)).sum();

        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..max_iterations {
            order.shuffle(rng);
            for &i in &order {
                let current = assignment[i];
                let dist_current = buckets[current].distance_to_members(i, features);
                buckets[current].remove(i, frequencies, dist_current);

                let mut best_bucket = current;
                let mut best_delta = f64::INFINITY;
                for (j, bucket) in buckets.iter().enumerate() {
                    let est_with = bucket.estimation_error_with(i, frequencies);
                    let est_delta = est_with - bucket.estimation_error;
                    let dist = bucket.distance_to_members(i, features);
                    let sim_delta = 2.0 * dist;
                    let delta = lambda * est_delta + (1.0 - lambda) * sim_delta;
                    if delta < best_delta {
                        best_delta = delta;
                        best_bucket = j;
                    }
                }

                let dist_best = buckets[best_bucket].distance_to_members(i, features);
                buckets[best_bucket].insert(i, frequencies, dist_best);
                assignment[i] = best_bucket;
            }
            let new_objective: f64 = buckets.iter().map(|bk| bk.objective(lambda)).sum();
            let improvement = objective - new_objective;
            objective = new_objective;
            if improvement < tolerance {
                break;
            }
        }
        objective
    }
}

/// End-to-end acceptance gate of the solver engineering pass: on exp2-like
/// and exp3-like training workloads, the best of (incremental BCD, racing
/// portfolio) must train ≥ 10× faster than the pre-pass descent, measured
/// interleaved (best of `TRIALS` alternating passes so machine noise hits
/// both sides equally).
fn speedup_gate(_c: &mut Criterion) {
    const TRIALS: usize = 3;
    const RESTARTS: usize = 4;

    let exp2 = HashingProblem::frequency_only(frequencies(3_000, 21), 32);
    let exp3 = HashingProblem::new(frequencies(1_200, 23), features(1_200, 25), 16, 0.5);
    let config = BcdConfig {
        restarts: RESTARTS,
        ..BcdConfig::default()
    };
    let bcd = BcdSolver::new(config);
    let portfolio = PortfolioSolver::new(PortfolioConfig {
        bcd: config,
        ..PortfolioConfig::default()
    });

    println!();
    for (name, problem) in [
        ("exp2_frequency_only_n3000_b32", &exp2),
        ("exp3_features_n1200_b16_lambda0.5", &exp3),
    ] {
        // Warm-up (page in the problem, spin up the thread pool once).
        black_box(bcd.solve(problem));
        black_box(portfolio.solve(problem));

        let mut legacy_best = f64::INFINITY;
        let mut bcd_best = f64::INFINITY;
        let mut portfolio_best = f64::INFINITY;
        let mut legacy_obj = f64::INFINITY;
        let mut new_obj = f64::INFINITY;
        for _ in 0..TRIALS {
            let start = Instant::now();
            legacy_obj = legacy_obj.min(black_box(legacy::solve(
                problem,
                RESTARTS,
                config.seed,
                config.max_iterations,
                config.tolerance,
                config.init,
            )));
            legacy_best = legacy_best.min(start.elapsed().as_secs_f64());

            let start = Instant::now();
            new_obj = new_obj.min(black_box(bcd.solve(problem)).objective);
            bcd_best = bcd_best.min(start.elapsed().as_secs_f64());

            let start = Instant::now();
            new_obj = new_obj.min(black_box(portfolio.solve(problem)).objective);
            portfolio_best = portfolio_best.min(start.elapsed().as_secs_f64());
        }

        let fastest_new = bcd_best.min(portfolio_best);
        let speedup = legacy_best / fastest_new;
        println!(
            "{name}: legacy {:.1} ms | incremental bcd {:.1} ms ({:.1}x) | \
             portfolio {:.1} ms ({:.1}x) | objective {:.1} -> {:.1}",
            legacy_best * 1e3,
            bcd_best * 1e3,
            legacy_best / bcd_best,
            portfolio_best * 1e3,
            legacy_best / portfolio_best,
            legacy_obj,
            new_obj,
        );
        assert!(
            speedup >= 10.0,
            "acceptance: solver pass must train >= 10x faster than the \
             pre-pass BCD on {name}, measured {speedup:.2}x"
        );
        assert!(
            new_obj <= legacy_obj * 1.05 + 1e-9,
            "speed must not cost quality on {name}: objective {new_obj} vs \
             legacy {legacy_obj}"
        );
    }
    println!("acceptance: solver engineering pass >= 10x on both workloads — ok\n");
}

criterion_group!(benches, bench_dp, bench_bcd, bench_exact, speedup_gate);
criterion_main!(benches);
