//! Criterion benchmarks for the end-to-end estimators: training time of
//! `opt-hash`, stream-processing (update) throughput and point-query
//! (estimate) latency of the static and adaptive variants, compared with the
//! Count-Min baseline — supporting the paper's claim that update and query
//! times are constant once training is done.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opthash::{AdaptiveOptHash, OptHash, OptHashBuilder, SolverKind};
use opthash_datagen::groups::{GroupConfig, GroupDataset};
use opthash_sketch::CountMinSketch;
use opthash_stream::{FrequencyEstimator, StreamElement, StreamPrefix};

fn setup(groups: usize) -> (GroupDataset, StreamPrefix, Vec<StreamElement>) {
    let dataset = GroupDataset::generate(GroupConfig::with_groups(groups));
    let (prefix_stream, continuation) = dataset.generate_experiment_streams(1);
    let prefix = StreamPrefix::from_stream(prefix_stream);
    let arrivals: Vec<StreamElement> = continuation.into_iter().collect();
    (dataset, prefix, arrivals)
}

fn train(prefix: &StreamPrefix, buckets: usize) -> OptHash {
    OptHashBuilder::new(buckets)
        .lambda(1.0)
        .solver(SolverKind::Dp)
        .train(prefix)
}

fn train_adaptive(prefix: &StreamPrefix, buckets: usize) -> AdaptiveOptHash {
    OptHashBuilder::new(buckets)
        .lambda(1.0)
        .solver(SolverKind::Dp)
        .train_adaptive(prefix, 1 << 14)
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_hash_training");
    group.sample_size(10);
    for &groups in &[6usize, 8] {
        let (_, prefix, _) = setup(groups);
        group.bench_with_input(BenchmarkId::new("dp_lambda1", groups), &groups, |b, _| {
            b.iter(|| black_box(train(&prefix, 16)));
        });
    }
    group.finish();
}

fn bench_updates(c: &mut Criterion) {
    let (_, prefix, arrivals) = setup(8);
    let mut group = c.benchmark_group("update_throughput");
    group.bench_function("opt_hash", |b| {
        let mut estimator = train(&prefix, 16);
        let mut i = 0;
        b.iter(|| {
            estimator.update(&arrivals[i % arrivals.len()]);
            i += 1;
        });
    });
    group.bench_function("opt_hash_adaptive", |b| {
        let mut estimator = train_adaptive(&prefix, 16);
        let mut i = 0;
        b.iter(|| {
            estimator.update(&arrivals[i % arrivals.len()]);
            i += 1;
        });
    });
    group.bench_function("count_min", |b| {
        let mut cms = CountMinSketch::with_total_buckets(1_000, 4, 1);
        let mut i = 0;
        b.iter(|| {
            cms.update(&arrivals[i % arrivals.len()]);
            i += 1;
        });
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let (_, prefix, arrivals) = setup(8);
    let mut group = c.benchmark_group("query_latency");
    group.bench_function("opt_hash_seen", |b| {
        let estimator = train(&prefix, 16);
        let stored: Vec<&StreamElement> = arrivals
            .iter()
            .filter(|e| estimator.is_stored(e.id))
            .collect();
        let mut i = 0;
        b.iter(|| {
            black_box(estimator.estimate(stored[i % stored.len()]));
            i += 1;
        });
    });
    group.bench_function("opt_hash_unseen_via_classifier", |b| {
        let estimator = train(&prefix, 16);
        let unseen: Vec<&StreamElement> = arrivals
            .iter()
            .filter(|e| !estimator.is_stored(e.id))
            .collect();
        let mut i = 0;
        b.iter(|| {
            black_box(estimator.estimate(unseen[i % unseen.len()]));
            i += 1;
        });
    });
    group.bench_function("count_min", |b| {
        let mut cms = CountMinSketch::with_total_buckets(1_000, 4, 1);
        for e in &arrivals {
            cms.update(e);
        }
        let mut i = 0;
        b.iter(|| {
            black_box(cms.estimate(&arrivals[i % arrivals.len()]));
            i += 1;
        });
    });
    group.finish();
}

criterion_group!(benches, bench_training, bench_updates, bench_queries);
criterion_main!(benches);
