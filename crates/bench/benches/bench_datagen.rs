//! Criterion benchmarks for the workload generators: materializing the
//! group-structured universe, sampling synthetic streams, and generating
//! query-log days — the fixed costs every experiment pays before measuring
//! the estimators themselves.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opthash_datagen::groups::{GroupConfig, GroupDataset};
use opthash_datagen::querylog::{QueryLogConfig, QueryLogDataset};
use opthash_datagen::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_groups(c: &mut Criterion) {
    let mut group = c.benchmark_group("group_generator");
    group.sample_size(10);
    for &g in &[8usize, 10] {
        group.bench_with_input(BenchmarkId::new("materialize", g), &g, |b, &g| {
            b.iter(|| black_box(GroupDataset::generate(GroupConfig::with_groups(g))));
        });
    }
    let dataset = GroupDataset::generate(GroupConfig::with_groups(10));
    group.bench_function("sample_10k_arrivals", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(dataset.generate_stream(10_000, seed))
        });
    });
    group.finish();
}

fn bench_querylog(c: &mut Criterion) {
    let mut group = c.benchmark_group("querylog_generator");
    group.sample_size(10);
    group.bench_function("materialize_20k_queries", |b| {
        b.iter(|| {
            black_box(QueryLogDataset::generate(QueryLogConfig {
                num_queries: 20_000,
                days: 5,
                arrivals_per_day: 1_000,
                ..QueryLogConfig::default()
            }))
        });
    });
    let log = QueryLogDataset::generate(QueryLogConfig {
        num_queries: 20_000,
        days: 5,
        arrivals_per_day: 20_000,
        ..QueryLogConfig::default()
    });
    group.bench_function("one_day_stream", |b| {
        let mut day = 0usize;
        b.iter(|| {
            day = (day + 1) % 5;
            black_box(log.day_stream(day))
        });
    });
    group.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let sampler = ZipfSampler::new(100_000, 1.0);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("zipf_sample", |b| {
        b.iter(|| black_box(sampler.sample(&mut rng)));
    });
}

criterion_group!(benches, bench_groups, bench_querylog, bench_zipf);
criterion_main!(benches);
