//! Criterion benchmarks for the classifier substrate: training and
//! prediction cost of logistic regression, CART and random forest on
//! bucket-routing datasets of the size the synthetic experiments produce.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opthash_ml::{
    CartConfig, Dataset, DecisionTree, ForestConfig, LogRegConfig, LogisticRegression, RandomForest,
};

/// A synthetic bucket-routing dataset: `classes` clusters in 2-D.
fn dataset(examples: usize, classes: usize) -> Dataset {
    let mut rows = Vec::with_capacity(examples);
    let mut labels = Vec::with_capacity(examples);
    let mut state = 17u64;
    for i in 0..examples {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let class = i % classes;
        let jitter = (state % 100) as f64 / 100.0;
        rows.push(vec![
            class as f64 * 3.0 + jitter,
            (class % 3) as f64 * 2.0 - jitter,
        ]);
        labels.push(class);
    }
    Dataset::from_rows(rows, labels)
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("classifier_fit");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        let data = dataset(n, 10);
        group.bench_with_input(BenchmarkId::new("logreg", n), &n, |b, _| {
            b.iter(|| black_box(LogisticRegression::fit(&data, &LogRegConfig::default())));
        });
        group.bench_with_input(BenchmarkId::new("cart", n), &n, |b, _| {
            b.iter(|| black_box(DecisionTree::fit(&data, &CartConfig::default())));
        });
        group.bench_with_input(BenchmarkId::new("rf", n), &n, |b, _| {
            b.iter(|| black_box(RandomForest::fit(&data, &ForestConfig::default())));
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let data = dataset(2_000, 10);
    let logreg = LogisticRegression::fit(&data, &LogRegConfig::default());
    let cart = DecisionTree::fit(&data, &CartConfig::default());
    let rf = RandomForest::fit(&data, &ForestConfig::default());
    let probe = vec![4.2, 1.7];

    let mut group = c.benchmark_group("classifier_predict");
    group.bench_function("logreg", |b| b.iter(|| black_box(logreg.predict(&probe))));
    group.bench_function("cart", |b| b.iter(|| black_box(cart.predict(&probe))));
    group.bench_function("rf", |b| b.iter(|| black_box(rf.predict(&probe))));
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
