//! Criterion micro-benchmarks for the sketch substrate: update and query
//! throughput of the Count-Min Sketch (standard and conservative), the Count
//! Sketch, the Learned Count-Min and the Bloom filter. These support the
//! paper's constant-time update/query claims (Section 1) and the
//! conservative-update ablation of DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opthash_sketch::{BloomFilter, CountMinSketch, CountSketch, LearnedCountMin, UpdatePolicy};
use opthash_stream::ElementId;

fn ids(n: usize) -> Vec<ElementId> {
    (0..n as u64)
        .map(|i| ElementId(i * 2_654_435_761 % 100_000))
        .collect()
}

fn bench_count_min(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_min");
    let keys = ids(10_000);
    for &width in &[256usize, 4096] {
        group.bench_with_input(BenchmarkId::new("update", width), &width, |b, &w| {
            let mut cms = CountMinSketch::new(w, 4, 1);
            let mut i = 0;
            b.iter(|| {
                cms.add(keys[i % keys.len()], 1);
                i += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("query", width), &width, |b, &w| {
            let mut cms = CountMinSketch::new(w, 4, 1);
            for &k in &keys {
                cms.add(k, 1);
            }
            let mut i = 0;
            b.iter(|| {
                black_box(cms.query(keys[i % keys.len()]));
                i += 1;
            });
        });
        group.bench_with_input(
            BenchmarkId::new("update_conservative", width),
            &width,
            |b, &w| {
                let mut cms = CountMinSketch::with_policy(w, 4, 1, UpdatePolicy::Conservative);
                let mut i = 0;
                b.iter(|| {
                    cms.add(keys[i % keys.len()], 1);
                    i += 1;
                });
            },
        );
    }
    group.finish();
}

fn bench_count_sketch(c: &mut Criterion) {
    let keys = ids(10_000);
    let mut group = c.benchmark_group("count_sketch");
    group.bench_function("update", |b| {
        let mut cs = CountSketch::new(1024, 5, 1);
        let mut i = 0;
        b.iter(|| {
            cs.add(keys[i % keys.len()], 1);
            i += 1;
        });
    });
    group.bench_function("query", |b| {
        let mut cs = CountSketch::new(1024, 5, 1);
        for &k in &keys {
            cs.add(k, 1);
        }
        let mut i = 0;
        b.iter(|| {
            black_box(cs.query_signed(keys[i % keys.len()]));
            i += 1;
        });
    });
    group.finish();
}

fn bench_learned_cms(c: &mut Criterion) {
    let keys = ids(10_000);
    let heavy: Vec<ElementId> = keys.iter().take(100).copied().collect();
    let mut group = c.benchmark_group("learned_cms");
    group.bench_function("update", |b| {
        let mut lcms = LearnedCountMin::new(heavy.clone(), 1024, 2, 1);
        let mut i = 0;
        b.iter(|| {
            lcms.add(keys[i % keys.len()], 1);
            i += 1;
        });
    });
    group.bench_function("query", |b| {
        let mut lcms = LearnedCountMin::new(heavy.clone(), 1024, 2, 1);
        for &k in &keys {
            lcms.add(k, 1);
        }
        let mut i = 0;
        b.iter(|| {
            black_box(lcms.query(keys[i % keys.len()]));
            i += 1;
        });
    });
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let keys = ids(10_000);
    let mut group = c.benchmark_group("bloom");
    group.bench_function("insert", |b| {
        let mut bloom = BloomFilter::new(1 << 16, 4, 1);
        let mut i = 0;
        b.iter(|| {
            bloom.insert(keys[i % keys.len()]);
            i += 1;
        });
    });
    group.bench_function("contains", |b| {
        let mut bloom = BloomFilter::new(1 << 16, 4, 1);
        for &k in &keys {
            bloom.insert(k);
        }
        let mut i = 0;
        b.iter(|| {
            black_box(bloom.contains(keys[i % keys.len()]));
            i += 1;
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_count_min,
    bench_count_sketch,
    bench_learned_cms,
    bench_bloom
);
criterion_main!(benches);
