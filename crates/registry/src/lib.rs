//! Multi-tenant sketch serving: a [`SketchRegistry`] that hosts thousands
//! of named frequency estimators under one global memory budget, plus a
//! std-only TCP line-protocol front end ([`SketchServer`]).
//!
//! The paper studies frequency estimation sketches one at a time; a serving
//! system hosts *fleets* of them — one per customer, per metric, per flow
//! table — and the binding constraint is the machine's memory, not any
//! single sketch's. This crate adds that layer:
//!
//! * **Registry** ([`SketchRegistry`]): create tenants from a textual
//!   [`BackendSpec`] (`count-min:1024x4`, `count-sketch:512x5`,
//!   `misra-gries:256`), route updates and queries by name, retire tenants,
//!   and audit the whole fleet with [`RegistryStats`] — including a
//!   conservation invariant ([`RegistryStats::unaccounted_mass`]) proving
//!   no admitted count was ever silently lost.
//! * **Governor** ([`governor`]): when the fleet exceeds its
//!   [`SpaceBudget`](opthash_stream::SpaceBudget), cold tenants are
//!   *degraded* — their Count-Min/Count-Sketch grids folded to half width,
//!   which is mathematically exact (the folded sketch equals the sketch the
//!   same stream would have built at that width) and conserves all counted
//!   mass — and hot degraded tenants are promoted back to full width when
//!   headroom returns.
//! * **Server** ([`SketchServer`]): a dependency-free TCP endpoint speaking
//!   a one-line-per-command text protocol ([`protocol`]) with clean,
//!   join-everything shutdown.
//!
//! # Quickstart
//!
//! ```
//! use opthash_registry::{BackendSpec, RegistryConfig, SketchRegistry};
//! use opthash_stream::{SpaceBudget, StreamElement};
//!
//! // A registry governed by a 64 KB global budget.
//! let mut registry =
//!     SketchRegistry::new(RegistryConfig::default().budget(SpaceBudget::from_kb(64.0)));
//!
//! // Tenants are created from textual backend specs...
//! registry.create("flows", BackendSpec::parse("count-min:1024x4")?)?;
//! registry.create("queries", BackendSpec::parse("misra-gries:128")?)?;
//!
//! // ...and routed by name.
//! let packet = StreamElement::without_features(0xDEAD_BEEFu64);
//! registry.ingest("flows", &packet)?;
//! registry.ingest_weighted("flows", &packet, 2)?;
//! assert_eq!(registry.query("flows", &packet)?, 3.0);
//!
//! // The fleet-wide ledger always balances: every admitted count is held
//! // in a live tenant, or attributed to a drop or a governor eviction.
//! let stats = registry.stats();
//! assert_eq!(stats.unaccounted_mass(), 0);
//! assert_eq!(stats.live_tenants, 2);
//! # Ok::<(), opthash_registry::RegistryError>(())
//! ```
//!
//! Serving the same registry over TCP:
//!
//! ```no_run
//! use opthash_registry::{SketchRegistry, SketchServer};
//! use opthash_stream::SpaceBudget;
//!
//! let registry = SketchRegistry::with_budget(SpaceBudget::from_kb(256.0));
//! let server = SketchServer::bind("127.0.0.1:7878", registry)?;
//! println!("serving on {}", server.local_addr());
//! // ... later:
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod governor;
pub mod protocol;
mod registry;
mod server;

pub use governor::GovernorOutcome;
pub use protocol::Command;
pub use registry::{
    BackendSpec, RegistryConfig, RegistryError, RegistryStats, SketchRegistry, TenantId,
    TenantReport, TenantSketch,
};
pub use server::SketchServer;
