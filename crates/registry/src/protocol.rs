//! The text line protocol spoken by [`SketchServer`](crate::SketchServer).
//!
//! One command per line, fields separated by whitespace; every command gets
//! exactly one response line starting with `OK` or `ERR`:
//!
//! | Command | Response | Meaning |
//! |---|---|---|
//! | `CREATE <tenant> <spec> [sharded:<n>]` | `OK t<id>` | Register a tenant (spec grammar: [`BackendSpec`]) |
//! | `ADD <tenant> <id> [<weight>]` | `OK` | Ingest `weight` (default 1) arrivals of element `<id>` |
//! | `QUERY <tenant> <id>` | `OK <estimate>` | Estimated frequency of element `<id>` |
//! | `STATS` | `OK k=v ...` | Registry-wide counters |
//! | `STATS <tenant>` | `OK k=v ...` | One tenant's report |
//! | `DROP <tenant>` | `OK t<id>` | Remove a tenant |
//! | `PING` | `OK pong` | Liveness check |
//! | `QUIT` | `OK bye` | Close this connection |
//!
//! Parsing is separated from execution so the same grammar is usable
//! without a socket (tests, replaying command logs).

use crate::registry::{BackendSpec, RegistryError, SketchRegistry};
use opthash_stream::StreamElement;

/// A parsed line-protocol command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `CREATE <tenant> <spec> [sharded:<n>]`
    Create {
        /// Tenant name.
        tenant: String,
        /// Backend spec.
        spec: BackendSpec,
        /// `Some(n)` when `sharded:<n>` was given.
        shards: Option<usize>,
    },
    /// `ADD <tenant> <id> [<weight>]`
    Add {
        /// Tenant name.
        tenant: String,
        /// Element ID.
        id: u64,
        /// Count weight (1 when omitted).
        weight: u64,
    },
    /// `QUERY <tenant> <id>`
    Query {
        /// Tenant name.
        tenant: String,
        /// Element ID.
        id: u64,
    },
    /// `STATS` (registry-wide) or `STATS <tenant>`.
    Stats {
        /// Tenant name, or `None` for registry-wide counters.
        tenant: Option<String>,
    },
    /// `DROP <tenant>`
    Drop {
        /// Tenant name.
        tenant: String,
    },
    /// `PING`
    Ping,
    /// `QUIT`
    Quit,
}

impl Command {
    /// Parses one protocol line. Keywords are case-insensitive; names and
    /// specs are taken verbatim.
    pub fn parse(line: &str) -> Result<Command, String> {
        let mut fields = line.split_whitespace();
        let Some(verb) = fields.next() else {
            return Err("empty command".to_owned());
        };
        let mut expect_name = |what: &str| {
            fields
                .next()
                .map(str::to_owned)
                .ok_or_else(|| format!("{what} expects a tenant name"))
        };
        match verb.to_ascii_uppercase().as_str() {
            "CREATE" => {
                let tenant = expect_name("CREATE")?;
                let spec_text = fields
                    .next()
                    .ok_or_else(|| "CREATE expects a backend spec".to_owned())?;
                let spec = BackendSpec::parse(spec_text).map_err(|e| e.to_string())?;
                let shards = match fields.next() {
                    None => None,
                    Some(opt) => match opt.strip_prefix("sharded:") {
                        Some(n) => {
                            Some(n.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                                "sharded:<n> expects a positive integer".to_owned()
                            })?)
                        }
                        None => return Err(format!("unknown CREATE option '{opt}'")),
                    },
                };
                reject_trailing(fields, "CREATE")?;
                Ok(Command::Create {
                    tenant,
                    spec,
                    shards,
                })
            }
            "ADD" => {
                let tenant = expect_name("ADD")?;
                let id = parse_u64(fields.next(), "ADD expects an element id")?;
                let weight = match fields.next() {
                    None => 1,
                    Some(w) => w
                        .parse::<u64>()
                        .map_err(|_| "ADD weight must be an unsigned integer".to_owned())?,
                };
                reject_trailing(fields, "ADD")?;
                Ok(Command::Add { tenant, id, weight })
            }
            "QUERY" => {
                let tenant = expect_name("QUERY")?;
                let id = parse_u64(fields.next(), "QUERY expects an element id")?;
                reject_trailing(fields, "QUERY")?;
                Ok(Command::Query { tenant, id })
            }
            "STATS" => {
                let tenant = fields.next().map(str::to_owned);
                reject_trailing(fields, "STATS")?;
                Ok(Command::Stats { tenant })
            }
            "DROP" => {
                let tenant = expect_name("DROP")?;
                reject_trailing(fields, "DROP")?;
                Ok(Command::Drop { tenant })
            }
            "PING" => {
                reject_trailing(fields, "PING")?;
                Ok(Command::Ping)
            }
            "QUIT" => {
                reject_trailing(fields, "QUIT")?;
                Ok(Command::Quit)
            }
            other => Err(format!("unknown command '{other}'")),
        }
    }

    /// Executes the command against `registry`, returning the response line
    /// (without the trailing newline). `Quit` is handled by the caller and
    /// answered with `OK bye` here for symmetry.
    pub fn execute(&self, registry: &mut SketchRegistry) -> String {
        match self {
            Command::Create {
                tenant,
                spec,
                shards,
            } => {
                let created = match shards {
                    None => registry.create(tenant, *spec),
                    Some(shards) => registry.create_sharded(tenant, *spec, *shards),
                };
                match created {
                    Ok(id) => format!("OK {id}"),
                    Err(err) => err_line(&err),
                }
            }
            Command::Add { tenant, id, weight } => {
                let element = StreamElement::without_features(*id);
                match registry.ingest_weighted(tenant, &element, *weight) {
                    Ok(()) => "OK".to_owned(),
                    Err(err) => err_line(&err),
                }
            }
            Command::Query { tenant, id } => {
                let element = StreamElement::without_features(*id);
                match registry.query(tenant, &element) {
                    Ok(estimate) => format!("OK {estimate}"),
                    Err(err) => err_line(&err),
                }
            }
            Command::Stats { tenant: None } => {
                let s = registry.stats();
                format!(
                    "OK tenants={} created={} dropped={} elements={} mass={} held={} \
                     dropped_mass={} evicted_mass={} queries={} hits={} misses={} \
                     degradations={} folds={} collapses={} demotions={} promotions={} \
                     evictions={} passes={} live_bytes={} budget_bytes={} unaccounted={}",
                    s.live_tenants,
                    s.tenants_created,
                    s.tenants_dropped,
                    s.ingested_elements,
                    s.ingested_mass,
                    s.held_mass,
                    s.dropped_mass,
                    s.evicted_mass,
                    s.queries,
                    s.query_hits,
                    s.query_misses,
                    s.degradations,
                    s.folds,
                    s.collapses,
                    s.demotions,
                    s.promotions,
                    s.evictions,
                    s.governor_passes,
                    s.live_bytes,
                    s.budget_bytes,
                    s.unaccounted_mass(),
                )
            }
            Command::Stats {
                tenant: Some(tenant),
            } => match registry.tenant_report(tenant) {
                Some(report) => format!(
                    "OK id={} backend={} bytes={} mass={} elements={} folds={} \
                     promoted={} sharded={}",
                    report.id,
                    report.backend,
                    report.bytes,
                    report.mass,
                    report.elements,
                    report.fold_steps,
                    report.promoted,
                    report.sharded,
                ),
                None => err_line(&RegistryError::UnknownTenant {
                    name: tenant.clone(),
                }),
            },
            Command::Drop { tenant } => match registry.drop_tenant(tenant) {
                Ok(id) => format!("OK {id}"),
                Err(err) => err_line(&err),
            },
            Command::Ping => "OK pong".to_owned(),
            Command::Quit => "OK bye".to_owned(),
        }
    }
}

fn parse_u64(field: Option<&str>, context: &str) -> Result<u64, String> {
    field
        .and_then(|f| f.parse::<u64>().ok())
        .ok_or_else(|| format!("{context} (unsigned integer)"))
}

fn reject_trailing<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    verb: &str,
) -> Result<(), String> {
    match fields.next() {
        None => Ok(()),
        Some(extra) => Err(format!("{verb}: unexpected trailing field '{extra}'")),
    }
}

fn err_line(err: &RegistryError) -> String {
    format!("ERR {err}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse_and_reject() {
        assert_eq!(
            Command::parse("CREATE flows count-min:128x4").unwrap(),
            Command::Create {
                tenant: "flows".into(),
                spec: BackendSpec::CountMin {
                    width: 128,
                    depth: 4
                },
                shards: None,
            }
        );
        assert_eq!(
            Command::parse("create flows count-sketch:64x5 sharded:4").unwrap(),
            Command::Create {
                tenant: "flows".into(),
                spec: BackendSpec::CountSketch {
                    width: 64,
                    depth: 5
                },
                shards: Some(4),
            }
        );
        assert_eq!(
            Command::parse("ADD flows 42").unwrap(),
            Command::Add {
                tenant: "flows".into(),
                id: 42,
                weight: 1
            }
        );
        assert_eq!(
            Command::parse("add flows 42 9").unwrap(),
            Command::Add {
                tenant: "flows".into(),
                id: 42,
                weight: 9
            }
        );
        assert_eq!(
            Command::parse("QUERY flows 42").unwrap(),
            Command::Query {
                tenant: "flows".into(),
                id: 42
            }
        );
        assert_eq!(
            Command::parse("STATS").unwrap(),
            Command::Stats { tenant: None }
        );
        assert_eq!(
            Command::parse("STATS flows").unwrap(),
            Command::Stats {
                tenant: Some("flows".into())
            }
        );
        assert_eq!(
            Command::parse("DROP flows").unwrap(),
            Command::Drop {
                tenant: "flows".into()
            }
        );
        assert_eq!(Command::parse("PING").unwrap(), Command::Ping);
        assert_eq!(Command::parse("quit").unwrap(), Command::Quit);

        for bad in [
            "",
            "FROB x",
            "CREATE",
            "CREATE t",
            "CREATE t bloom:9",
            "CREATE t count-min sharded:0",
            "CREATE t count-min shards:4",
            "ADD t",
            "ADD t notanumber",
            "ADD t 1 -3",
            "QUERY t",
            "PING extra",
        ] {
            assert!(Command::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn execution_round_trip() {
        let mut registry = SketchRegistry::unbounded();
        let run = |registry: &mut SketchRegistry, line: &str| {
            Command::parse(line).unwrap().execute(registry)
        };
        assert_eq!(run(&mut registry, "CREATE flows count-min:128x4"), "OK t0");
        assert_eq!(run(&mut registry, "ADD flows 7 3"), "OK");
        assert_eq!(run(&mut registry, "ADD flows 7"), "OK");
        assert_eq!(run(&mut registry, "QUERY flows 7"), "OK 4");
        assert_eq!(run(&mut registry, "QUERY flows 8"), "OK 0");
        assert!(run(&mut registry, "STATS").starts_with("OK tenants=1 "));
        assert!(run(&mut registry, "STATS flows").contains("backend=count-min"));
        assert!(run(&mut registry, "QUERY ghost 1").starts_with("ERR unknown tenant"));
        assert!(run(&mut registry, "CREATE flows count-min").starts_with("ERR tenant"));
        assert_eq!(run(&mut registry, "DROP flows"), "OK t0");
        assert!(run(&mut registry, "DROP flows").starts_with("ERR unknown tenant"));
        let stats = registry.stats();
        assert_eq!(stats.tenants_created, 1);
        assert_eq!(stats.tenants_dropped, 1);
        assert_eq!(stats.unaccounted_mass(), 0);
    }
}
