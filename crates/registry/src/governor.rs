//! The memory-budget governor: keeps the fleet's accounted bytes under the
//! registry's global [`SpaceBudget`](opthash_stream::SpaceBudget) by
//! degrading cold tenants and promoting hot ones.
//!
//! # The degradation ladder
//!
//! A pass sheds bytes by repeatedly picking the *coldest* tenant (fewest
//! recent touches, least recently used as tie-break) that still has a cheap
//! step available, and applying the first rung that fits:
//!
//! 1. **Demote** a sharded tenant to a bare estimator — reclaims the
//!    per-shard counter replicas (`shards + 1` copies down to one) without
//!    losing a single count.
//! 2. **Collapse** a promoted tenant — folds its full-width live sketch
//!    down onto its narrow frozen history and merges the two, reclaiming
//!    the full-width grid.
//! 3. **Fold** a bare grid to half its width via
//!    [`CountMinSketch::fold_to_width`](opthash_sketch::CountMinSketch::fold_to_width):
//!    counters congruent modulo the new width are summed and the hash
//!    functions restricted, producing *exactly* the sketch the same stream
//!    would have built at the smaller width. Counted mass is conserved;
//!    only the error bound degrades (`ε ∝ 1/width` doubles per fold).
//!
//! Only when a tenant is already at the [`RegistryConfig::min_width`]
//! floor (or hosts a non-foldable backend such as Misra–Gries) is it
//! **evicted** outright, with its mass moved to the `evicted` ledger bucket
//! so the registry's conservation audit still balances.
//!
//! # Promotion
//!
//! When the fleet is comfortably under budget (below
//! [`RegistryConfig::promote_headroom`] × budget — deliberately lower than
//! the shedding threshold, so promote/degrade cannot oscillate), the pass
//! promotes the *hottest* folded tenant: its narrow sketch is frozen as
//! history and a fresh full-width sketch (same per-tenant seed, hence
//! mergeable back later) takes new arrivals. Queries sum the frozen and
//! live estimates, which for Count-Min keeps the never-under-count
//! guarantee.
//!
//! [`RegistryConfig::min_width`]: crate::RegistryConfig::min_width
//! [`RegistryConfig::promote_headroom`]: crate::RegistryConfig::promote_headroom

use crate::registry::{SketchRegistry, TenantState};
use opthash_engine::SketchBackend;

/// What one governor pass did, returned by [`SketchRegistry::govern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GovernorOutcome {
    /// Half-width grid folds applied.
    pub folds: u64,
    /// Promoted tenants collapsed back onto their frozen history.
    pub collapses: u64,
    /// Sharded tenants demoted to bare estimators.
    pub demotions: u64,
    /// Tenants evicted outright.
    pub evictions: u64,
    /// Tenants promoted back to full width.
    pub promotions: u64,
    /// Accounted bytes when the pass started.
    pub live_bytes_before: u64,
    /// Accounted bytes when the pass finished.
    pub live_bytes_after: u64,
}

impl GovernorOutcome {
    /// Degradation steps of any kind taken by this pass.
    pub fn degradations(&self) -> u64 {
        self.folds + self.collapses + self.demotions
    }

    /// Total actions (degradations + evictions + promotions).
    pub fn actions(&self) -> u64 {
        self.degradations() + self.evictions + self.promotions
    }
}

/// Runs one governor pass over `reg`. See the module docs for the policy.
pub(crate) fn govern_pass(reg: &mut SketchRegistry) -> GovernorOutcome {
    reg.ops_since_govern = 0;
    reg.counters.governor_passes += 1;
    // Re-derive the fleet total from the per-tenant caches: structural
    // changes maintain it incrementally, but the governor is the component
    // whose decisions depend on it, so it never trusts stale arithmetic.
    reg.live_bytes = reg
        .tenants
        .values()
        .fold(0u64, |acc, t| acc.saturating_add(t.bytes as u64));
    let mut outcome = GovernorOutcome {
        live_bytes_before: reg.live_bytes,
        ..GovernorOutcome::default()
    };

    if let Some(budget) = reg.config.budget {
        let budget = budget.bytes() as u64;
        shed(reg, budget, &mut outcome);
        promote(reg, budget, &mut outcome);
    }

    // Exponential decay of activity scores: yesterday's hot tenant goes
    // cold within a few passes unless traffic keeps arriving.
    for tenant in reg.tenants.values_mut() {
        tenant.touches /= 2;
    }
    outcome.live_bytes_after = reg.live_bytes;
    outcome
}

/// Degrades (or, at the floor, evicts) cold tenants until the fleet fits.
///
/// Terminates because every ladder rung strictly reduces the victim's
/// accounted bytes, and the eviction fallback strictly shrinks the tenant
/// set; an empty registry has zero accounted bytes, which fits any budget.
fn shed(reg: &mut SketchRegistry, budget: u64, outcome: &mut GovernorOutcome) {
    while reg.live_bytes > budget && !reg.tenants.is_empty() {
        if let Some(name) = coldest(reg, true) {
            degrade_step(reg, &name, outcome);
        } else if let Some(name) = coldest(reg, false) {
            evict(reg, &name, outcome);
        } else {
            unreachable!("a non-empty registry always has a coldest tenant");
        }
    }
}

/// The coldest tenant by `(touches, last_touch)`, with the name as a final
/// deterministic tie-break; optionally restricted to tenants that still
/// have a degradation rung available.
fn coldest(reg: &SketchRegistry, degradable_only: bool) -> Option<String> {
    let min_width = reg.config.min_width;
    reg.tenants
        .iter()
        .filter(|(_, t)| !degradable_only || has_degrade_step(t, min_width))
        .min_by(|(a_name, a), (b_name, b)| {
            (a.touches, a.last_touch, a_name.as_str()).cmp(&(
                b.touches,
                b.last_touch,
                b_name.as_str(),
            ))
        })
        .map(|(name, _)| name.clone())
}

fn has_degrade_step(tenant: &crate::registry::Tenant, min_width: usize) -> bool {
    if tenant.is_sharded() || tenant.frozen.is_some() {
        return true;
    }
    match &tenant.state {
        TenantState::Direct(sketch) => sketch.can_fold(min_width),
        TenantState::Sharded(_) => true,
        TenantState::Retired => false,
    }
}

/// Applies the first available ladder rung to `name` and re-accounts bytes.
fn degrade_step(reg: &mut SketchRegistry, name: &str, outcome: &mut GovernorOutcome) {
    let min_width = reg.config.min_width;
    let tenant = reg
        .tenants
        .get_mut(name)
        .expect("victim chosen from live tenant set");
    let old_bytes = tenant.bytes;

    if tenant.is_sharded() {
        // Rung 1: demote. `finish` consumes the engine, merging every
        // shard's counters back into one estimator — mass-exact.
        let state = std::mem::replace(&mut tenant.state, TenantState::Retired);
        let TenantState::Sharded(engine) = state else {
            unreachable!("is_sharded checked above");
        };
        match engine.finish() {
            Ok(sketch) => {
                tenant.state = TenantState::Direct(sketch);
                reg.counters.demotions += 1;
                outcome.demotions += 1;
            }
            Err(_) => {
                // A poisoned engine cannot produce a trustworthy merged
                // view; the tenant is unrecoverable, so account it as an
                // eviction rather than serve corrupt counts.
                evict(reg, name, outcome);
                return;
            }
        }
    } else if let Some(frozen) = tenant.frozen.take() {
        // Rung 2: collapse a promoted tenant. The live sketch shares the
        // frozen one's seed, so folding it to the frozen width restores
        // identical hash functions and the merge is legal.
        let target = frozen
            .width()
            .expect("only foldable backends are ever promoted");
        let TenantState::Direct(live) = &mut tenant.state else {
            unreachable!("promoted tenants are always direct");
        };
        live.fold_to(target);
        live.merge(&frozen);
        reg.counters.collapses += 1;
        outcome.collapses += 1;
    } else {
        // Rung 3: fold the grid to half width.
        let TenantState::Direct(sketch) = &mut tenant.state else {
            unreachable!("non-sharded tenants are direct");
        };
        let folded = sketch.fold_half(min_width);
        debug_assert!(folded, "victim was chosen for having a fold available");
        tenant.fold_steps += 1;
        reg.counters.folds += 1;
        outcome.folds += 1;
    }

    tenant.refresh_bytes();
    let new_bytes = tenant.bytes;
    reg.live_bytes = reg
        .live_bytes
        .saturating_sub(old_bytes as u64)
        .saturating_add(new_bytes as u64);
}

/// Removes `name` entirely, moving its mass to the evicted ledger bucket.
fn evict(reg: &mut SketchRegistry, name: &str, outcome: &mut GovernorOutcome) {
    let tenant = reg
        .tenants
        .remove(name)
        .expect("victim chosen from live tenant set");
    reg.live_bytes = reg.live_bytes.saturating_sub(tenant.bytes as u64);
    reg.counters.evicted_mass += tenant.mass;
    reg.counters.evictions += 1;
    outcome.evictions += 1;
}

/// Promotes the hottest folded tenant back to full width, if the fleet has
/// headroom for the extra grid. At most one promotion per pass: promotion
/// is speculative spending, and one grid per pass keeps it reversible
/// before the next budget check.
fn promote(reg: &mut SketchRegistry, budget: u64, outcome: &mut GovernorOutcome) {
    let headroom = (budget as f64 * reg.config.promote_headroom) as u64;
    if reg.live_bytes >= headroom {
        return;
    }
    let candidate = reg
        .tenants
        .iter()
        .filter(|(_, t)| t.fold_steps > 0 && t.frozen.is_none() && !t.is_sharded() && t.touches > 0)
        .max_by(|(a_name, a), (b_name, b)| {
            // Hottest: most touches, most recently used, name tie-break.
            (a.touches, a.last_touch, a_name.as_str()).cmp(&(
                b.touches,
                b.last_touch,
                b_name.as_str(),
            ))
        })
        .map(|(name, _)| name.clone());
    let Some(name) = candidate else {
        return;
    };
    let tenant = reg
        .tenants
        .get_mut(&name)
        .expect("candidate chosen from live tenant set");
    let extra = tenant.spec.grid_bytes() as u64;
    if reg.live_bytes.saturating_add(extra) > headroom {
        return;
    }
    let state = std::mem::replace(&mut tenant.state, TenantState::Retired);
    let TenantState::Direct(old) = state else {
        unreachable!("candidate filter keeps only direct tenants");
    };
    tenant.frozen = Some(old);
    tenant.state = TenantState::Direct(tenant.spec.build(tenant.seed));
    tenant.refresh_bytes();
    reg.live_bytes = reg.live_bytes.saturating_add(extra);
    reg.counters.promotions += 1;
    outcome.promotions += 1;
}

#[cfg(test)]
mod tests {
    use crate::{BackendSpec, RegistryConfig, SketchRegistry};
    use opthash_stream::{SpaceBudget, StreamElement};

    fn element(id: u64) -> StreamElement {
        StreamElement::without_features(id)
    }

    /// A grid: width × depth × 4 bytes.
    fn grid_bytes(width: usize, depth: usize) -> usize {
        width * depth * 4
    }

    #[test]
    fn cold_tenants_fold_before_anyone_is_evicted() {
        // Budget fits two full 256x4 grids but not three.
        let budget = SpaceBudget::from_bytes(grid_bytes(256, 4) * 2 + grid_bytes(64, 4));
        let mut registry = SketchRegistry::new(
            RegistryConfig::default()
                .budget(budget)
                .min_width(32)
                .govern_interval(u64::MAX),
        );
        let spec = BackendSpec::CountMin {
            width: 256,
            depth: 4,
        };
        registry.create("hot-a", spec).unwrap();
        registry.create("hot-b", spec).unwrap();
        // Heat up the first two tenants.
        for i in 0..64 {
            registry.ingest("hot-a", &element(i)).unwrap();
            registry.ingest("hot-b", &element(i)).unwrap();
        }
        // The third tenant blows the budget at creation time; the governor
        // must fold *it* (the cold one), not the hot tenants.
        registry.create("cold", spec).unwrap();
        let stats = registry.stats();
        assert!(stats.degradations >= 1, "governor must have acted");
        assert_eq!(stats.evictions, 0, "folding suffices for this budget");
        assert!(!stats.over_budget(), "fleet must fit after the pass");
        let cold = registry.tenant_report("cold").unwrap();
        assert!(cold.fold_steps >= 1);
        let hot = registry.tenant_report("hot-a").unwrap();
        assert_eq!(hot.fold_steps, 0, "hot tenants keep full width");
        assert_eq!(stats.unaccounted_mass(), 0);
    }

    #[test]
    fn folding_conserves_mass_and_never_undercounts() {
        let spec = BackendSpec::CountMin {
            width: 1024,
            depth: 4,
        };
        // Budget below even one full grid: the tenant is folded repeatedly
        // down toward the floor while its counts keep arriving.
        let budget = SpaceBudget::from_bytes(grid_bytes(256, 4));
        let mut registry = SketchRegistry::new(
            RegistryConfig::default()
                .budget(budget)
                .min_width(64)
                .govern_interval(128),
        );
        registry.create("only", spec).unwrap();
        let mut truth = [0u64; 32];
        let mut state = 7u64;
        for _ in 0..2_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let id = state % 32;
            truth[id as usize] += 1;
            registry.ingest("only", &element(id)).unwrap();
        }
        let stats = registry.stats();
        assert!(stats.folds >= 2, "1024 -> 256 needs two folds");
        assert_eq!(stats.unaccounted_mass(), 0);
        assert_eq!(stats.held_mass, 2_000);
        for (id, &count) in truth.iter().enumerate() {
            let estimate = registry.query("only", &element(id as u64)).unwrap();
            assert!(
                estimate >= count as f64,
                "folded Count-Min must not under-count ({estimate} < {count})"
            );
        }
    }

    #[test]
    fn at_the_floor_the_coldest_tenant_is_evicted() {
        let spec = BackendSpec::CountMin {
            width: 64,
            depth: 4,
        };
        // min_width == width: no folds available, eviction is the only rung.
        let budget = SpaceBudget::from_bytes(grid_bytes(64, 4) * 2);
        let mut registry = SketchRegistry::new(
            RegistryConfig::default()
                .budget(budget)
                .min_width(64)
                .govern_interval(u64::MAX),
        );
        registry.create("keep-a", spec).unwrap();
        registry.create("keep-b", spec).unwrap();
        registry.ingest_weighted("keep-a", &element(1), 10).unwrap();
        registry.ingest_weighted("keep-b", &element(1), 10).unwrap();
        registry.create("victim", spec).unwrap();
        let stats = registry.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(registry.len(), 2);
        assert!(!registry.contains("victim"), "untouched tenant is coldest");
        assert_eq!(stats.unaccounted_mass(), 0, "evicted mass is ledgered");
    }

    #[test]
    fn eviction_accounts_the_lost_mass() {
        let spec = BackendSpec::MisraGries { capacity: 64 };
        let mg_bytes = spec.grid_bytes();
        let mut registry = SketchRegistry::new(
            RegistryConfig::default()
                .budget(SpaceBudget::from_bytes(mg_bytes * 2))
                .govern_interval(u64::MAX),
        );
        registry.create("a", spec).unwrap();
        registry.create("b", spec).unwrap();
        registry.ingest_weighted("a", &element(1), 100).unwrap();
        registry.ingest_weighted("b", &element(2), 50).unwrap();
        // A manual pass decays both activity scores to zero, then only `a`
        // is touched again: `b` is now colder than even a fresh tenant
        // (same zero score, older last use).
        registry.govern();
        registry.ingest_weighted("a", &element(3), 7).unwrap();
        // Misra-Gries cannot fold: creating a third tenant forces one
        // eviction, and the coldest (`b`) must be the one to go.
        registry.create("c", spec).unwrap();
        assert!(!registry.contains("b"));
        let stats = registry.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.evicted_mass, 50);
        assert_eq!(stats.unaccounted_mass(), 0);
    }

    #[test]
    fn sharded_tenants_are_demoted_before_grids_are_folded() {
        let spec = BackendSpec::CountMin {
            width: 256,
            depth: 4,
        };
        // 2 shards => sharded tenant costs 3 grids. Budget: 2 grids.
        let budget = SpaceBudget::from_bytes(grid_bytes(256, 4) * 2);
        let mut registry = SketchRegistry::new(
            RegistryConfig::default()
                .budget(budget)
                .min_width(32)
                .govern_interval(u64::MAX),
        );
        registry.create_sharded("fat", spec, 2).unwrap();
        let stats = registry.stats();
        assert_eq!(stats.demotions, 1, "demotion reclaims the shard replicas");
        assert_eq!(stats.folds, 0, "one grid fits: no fold needed");
        assert!(!stats.over_budget());
        let report = registry.tenant_report("fat").unwrap();
        assert!(!report.sharded);
    }

    #[test]
    fn demotion_preserves_counts_exactly() {
        let spec = BackendSpec::CountMin {
            width: 128,
            depth: 4,
        };
        let mut registry = SketchRegistry::new(
            RegistryConfig::default()
                .budget(SpaceBudget::from_bytes(grid_bytes(128, 4) * 5))
                .govern_interval(u64::MAX),
        );
        registry.create_sharded("t", spec, 4).unwrap();
        for i in 0..500u64 {
            registry.ingest("t", &element(i % 40)).unwrap();
        }
        // 5 accounted grids fit exactly; an extra tenant forces the demote.
        registry
            .create(
                "pusher",
                BackendSpec::CountMin {
                    width: 128,
                    depth: 4,
                },
            )
            .unwrap();
        assert!(registry.stats().demotions >= 1);
        for i in 0..40u64 {
            let estimate = registry.query("t", &element(i)).unwrap();
            assert!(estimate >= (500 / 40) as f64);
        }
        assert_eq!(registry.stats().unaccounted_mass(), 0);
    }

    #[test]
    fn hot_folded_tenants_are_promoted_when_headroom_returns() {
        let spec = BackendSpec::CountMin {
            width: 512,
            depth: 4,
        };
        let full = grid_bytes(512, 4);
        // 3.5 grids: three full tenants fit, a fourth forces one fold.
        let mut registry = SketchRegistry::new(
            RegistryConfig::default()
                .budget(SpaceBudget::from_bytes(full * 7 / 2))
                .min_width(64)
                .promote_headroom(0.9)
                .govern_interval(u64::MAX),
        );
        // Fill the budget so the newcomer gets folded...
        registry.create("a", spec).unwrap();
        registry.create("b", spec).unwrap();
        registry.create("c", spec).unwrap();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            registry
                .ingest_weighted(name, &element(i as u64), 5)
                .unwrap();
        }
        registry.create("riser", spec).unwrap();
        assert!(registry.tenant_report("riser").unwrap().fold_steps >= 1);
        let mass_before = registry.tenant_report("riser").unwrap().mass;
        assert_eq!(mass_before, 0);

        // ... then free two grids and make the folded tenant the hottest.
        registry.drop_tenant("a").unwrap();
        registry.drop_tenant("b").unwrap();
        for i in 0..200u64 {
            registry.ingest("riser", &element(i % 16)).unwrap();
        }
        let outcome = registry.govern();
        assert_eq!(
            outcome.promotions, 1,
            "hot folded tenant gets its width back"
        );
        let report = registry.tenant_report("riser").unwrap();
        assert!(report.promoted);
        // Mass survives the promotion (frozen history + live sketch).
        let stats = registry.stats();
        assert_eq!(stats.unaccounted_mass(), 0);
        // Counts from before and after the promotion both answer.
        for i in 0..16u64 {
            registry.ingest("riser", &element(i)).unwrap();
            let estimate = registry.query("riser", &element(i)).unwrap();
            assert!(estimate >= 13.0, "frozen + live must cover all arrivals");
        }
    }

    #[test]
    fn promoted_tenants_collapse_back_under_pressure() {
        let spec = BackendSpec::CountMin {
            width: 512,
            depth: 4,
        };
        // Filler tenants are created *at* the fold floor, so once `t` is
        // promoted it is the only degradable tenant and must be the one
        // the governor collapses — no dependence on activity ordering.
        let floor = BackendSpec::CountMin {
            width: 64,
            depth: 4,
        };
        let full = grid_bytes(512, 4);
        let small = grid_bytes(64, 4);
        let mut registry = SketchRegistry::new(
            RegistryConfig::default()
                .budget(SpaceBudget::from_bytes(full * 2))
                .min_width(64)
                .promote_headroom(1.0)
                .govern_interval(u64::MAX),
        );
        // Fold `t` once via ballast pressure, then clear the ballast.
        registry.create("t", spec).unwrap();
        registry.create("ballast", spec).unwrap();
        registry.create("nudge", floor).unwrap(); // 2 grids + 1: over budget
        assert_eq!(registry.tenant_report("t").unwrap().fold_steps, 1);
        registry.drop_tenant("ballast").unwrap();
        registry.drop_tenant("nudge").unwrap();

        // Make `t` hot and promote it: frozen half-width history plus a
        // fresh full-width live grid.
        for i in 0..200u64 {
            registry.ingest("t", &element(i % 8)).unwrap();
        }
        let outcome = registry.govern();
        assert_eq!(outcome.promotions, 1);
        assert!(registry.tenant_report("t").unwrap().promoted);
        for i in 0..80u64 {
            registry.ingest("t", &element(i % 8)).unwrap();
        }
        let mass = registry.tenant_report("t").unwrap().mass;

        // Squeeze with floor-width tenants until the budget trips: `t` is
        // the only tenant with a degradation rung left, so the governor
        // must collapse its promoted pair rather than evict anyone.
        let mut squeezed = 0usize;
        while registry.live_bytes() + small as u64 <= (full * 2) as u64 {
            registry.create(&format!("s{squeezed}"), floor).unwrap();
            squeezed += 1;
        }
        registry.create("tipping-point", floor).unwrap();
        let stats = registry.stats();
        assert!(stats.collapses >= 1, "promoted pair must collapse");
        assert_eq!(stats.evictions, 0, "collapse spared every tenant");
        let report = registry.tenant_report("t").unwrap();
        assert!(!report.promoted, "frozen history was merged away");
        assert_eq!(report.mass, mass);
        assert_eq!(stats.unaccounted_mass(), 0);
        // Pre- and post-promotion counts both survive the collapse.
        for i in 0..8u64 {
            let estimate = registry.query("t", &element(i)).unwrap();
            assert!(estimate >= 35.0, "280 arrivals over 8 ids: >= 35 each");
        }
    }

    #[test]
    fn ungoverned_registries_never_degrade() {
        let mut registry = SketchRegistry::unbounded();
        for i in 0..50 {
            registry
                .create(
                    &format!("t{i}"),
                    BackendSpec::CountMin {
                        width: 1024,
                        depth: 4,
                    },
                )
                .unwrap();
        }
        let outcome = registry.govern();
        assert_eq!(outcome.actions(), 0);
        let stats = registry.stats();
        assert_eq!(stats.degradations, 0);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.budget_bytes, 0);
    }
}
