//! A std-only TCP front end for a shared [`SketchRegistry`].
//!
//! [`SketchServer`] binds a listener, accepts connections on a background
//! thread, and answers the line protocol of [`crate::protocol`] — one
//! request line, one `OK`/`ERR` response line. The registry lives behind a
//! mutex shared with the embedding process, so a program can serve remote
//! clients while ingesting locally through [`SketchServer::registry`].
//!
//! Shutdown is cooperative and clean: the accept loop polls a flag between
//! non-blocking accepts, connection handlers poll it between read timeouts,
//! and [`SketchServer::shutdown`] joins every thread before returning — no
//! detached threads survive, which is what lets the test suite start and
//! stop servers freely.

use crate::protocol::Command;
use crate::registry::SketchRegistry;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Read timeout after which a connection handler re-checks the shutdown
/// flag (an idle client never pins the server open).
const READ_POLL: Duration = Duration::from_millis(50);

/// A running line-protocol server around a shared registry.
///
/// Dropping the server without calling [`SketchServer::shutdown`] also
/// shuts it down (blocking until the threads join).
pub struct SketchServer {
    registry: Arc<Mutex<SketchRegistry>>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<Vec<thread::JoinHandle<()>>>>,
}

impl SketchServer {
    /// Binds `addr` (use port 0 for an OS-assigned port, see
    /// [`SketchServer::local_addr`]) and starts serving `registry`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, e.g. a port already in use.
    pub fn bind(addr: impl ToSocketAddrs, registry: SketchRegistry) -> std::io::Result<Self> {
        Self::bind_shared(addr, Arc::new(Mutex::new(registry)))
    }

    /// Like [`SketchServer::bind`], but serves a registry the caller keeps
    /// a handle to.
    pub fn bind_shared(
        addr: impl ToSocketAddrs,
        registry: Arc<Mutex<SketchRegistry>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_registry = Arc::clone(&registry);
        let accept_thread = thread::Builder::new()
            .name("sketch-server-accept".to_owned())
            .spawn(move || accept_loop(listener, accept_registry, accept_stop))
            .expect("spawning the accept thread");
        Ok(SketchServer {
            registry,
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared registry, for local ingestion or inspection alongside the
    /// network traffic.
    pub fn registry(&self) -> Arc<Mutex<SketchRegistry>> {
        Arc::clone(&self.registry)
    }

    /// Stops accepting, waits for every in-flight connection handler to
    /// notice the flag and finish, and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let connection_threads = handle.join().expect("accept thread never panics");
            for connection in connection_threads {
                let _ = connection.join();
            }
        }
    }
}

impl Drop for SketchServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Accepts connections until told to stop; returns the handler threads so
/// shutdown can join them.
fn accept_loop(
    listener: TcpListener,
    registry: Arc<Mutex<SketchRegistry>>,
    stop: Arc<AtomicBool>,
) -> Vec<thread::JoinHandle<()>> {
    let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reap finished handlers so a long-lived server does not
                // accumulate one join handle per past connection.
                handlers.retain(|h| !h.is_finished());
                let registry = Arc::clone(&registry);
                let stop = Arc::clone(&stop);
                let handle = thread::Builder::new()
                    .name("sketch-server-conn".to_owned())
                    .spawn(move || handle_connection(stream, registry, stop))
                    .expect("spawning a connection thread");
                handlers.push(handle);
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept error (e.g. a connection reset before
                // accept); keep serving.
                thread::sleep(ACCEPT_POLL);
            }
        }
    }
    handlers
}

/// Serves one client: read a line, execute, write a line, until QUIT, EOF,
/// or server shutdown.
fn handle_connection(
    stream: TcpStream,
    registry: Arc<Mutex<SketchRegistry>>,
    stop: Arc<AtomicBool>,
) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !stop.load(Ordering::SeqCst) {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed the connection
            Ok(_) => {}
            Err(err)
                if err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut =>
            {
                continue; // idle: re-check the shutdown flag
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, quit) = match Command::parse(&line) {
            Ok(command) => {
                let response = {
                    let mut registry = registry
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    command.execute(&mut registry)
                };
                (response, command == Command::Quit)
            }
            Err(reason) => (format!("ERR {reason}"), false),
        };
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if quit {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SketchRegistry;
    use std::io::BufRead;

    fn send(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write command");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        response.trim_end().to_owned()
    }

    #[test]
    fn serves_the_protocol_over_loopback() {
        let server = SketchServer::bind("127.0.0.1:0", SketchRegistry::unbounded()).expect("bind");
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        assert_eq!(send(&mut stream, &mut reader, "PING"), "OK pong");
        assert_eq!(
            send(&mut stream, &mut reader, "CREATE t count-min:64x4"),
            "OK t0"
        );
        assert_eq!(send(&mut stream, &mut reader, "ADD t 5 2"), "OK");
        assert_eq!(send(&mut stream, &mut reader, "QUERY t 5"), "OK 2");
        assert_eq!(send(&mut stream, &mut reader, "QUIT"), "OK bye");
        server.shutdown();
    }

    #[test]
    fn embedding_process_shares_the_registry() {
        let server = SketchServer::bind("127.0.0.1:0", SketchRegistry::unbounded()).expect("bind");
        {
            let registry = server.registry();
            let mut registry = registry.lock().unwrap();
            registry
                .create(
                    "local",
                    crate::BackendSpec::parse("count-min:64x2").unwrap(),
                )
                .unwrap();
        }
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        assert_eq!(send(&mut stream, &mut reader, "ADD local 9 4"), "OK");
        assert_eq!(send(&mut stream, &mut reader, "QUERY local 9"), "OK 4");
        drop(stream);
        server.shutdown();
    }
}
