//! The multi-tenant [`SketchRegistry`]: create, route, query, and retire
//! thousands of named estimators under one global memory budget.

use crate::governor::GovernorOutcome;
use opthash_engine::{EngineConfig, EngineError, IngestEngine, IngestMode, SketchBackend};
use opthash_sketch::{CountMinSketch, CountSketch, MisraGries};
use opthash_stream::{SpaceBudget, SpaceReport, StreamElement};
use std::collections::HashMap;
use std::fmt;

/// Opaque handle to a tenant: unique for the lifetime of a registry and
/// never reused, so a handle taken before an interleaved create/drop of
/// *other* tenants still names the same estimator afterwards (routing
/// stability — asserted by the repository's property tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Which estimator a tenant is built on, with its sizing.
///
/// The textual form used by the line protocol (and [`BackendSpec::parse`])
/// is `<kind>[:<dims>]`:
///
/// * `count-min:1024x4` — Count-Min grid, `width x depth`;
/// * `count-sketch:512x5` — Count Sketch grid, `width x depth`;
/// * `misra-gries:256` — Misra–Gries summary with 256 counters.
///
/// A bare kind (`count-min`) uses the defaults below.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendSpec {
    /// Count-Min Sketch (`width × depth` counters, standard updates).
    CountMin {
        /// Buckets per level.
        width: usize,
        /// Number of levels.
        depth: usize,
    },
    /// Count Sketch (`width × depth` signed counters).
    CountSketch {
        /// Buckets per level.
        width: usize,
        /// Number of levels.
        depth: usize,
    },
    /// Misra–Gries summary with a fixed number of tracked counters.
    MisraGries {
        /// Maximum number of tracked counters.
        capacity: usize,
    },
}

impl BackendSpec {
    /// Default Count-Min sizing (`1024x4`) used by a bare `count-min` spec.
    pub const DEFAULT_GRID: (usize, usize) = (1024, 4);
    /// Default Misra–Gries capacity used by a bare `misra-gries` spec.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Parses the textual spec grammar documented on the type.
    pub fn parse(spec: &str) -> Result<Self, RegistryError> {
        let invalid = |reason| RegistryError::InvalidSpec {
            spec: spec.to_owned(),
            reason,
        };
        let (kind, dims) = match spec.split_once(':') {
            Some((kind, dims)) => (kind, Some(dims)),
            None => (spec, None),
        };
        let grid = |dims: Option<&str>| -> Result<(usize, usize), RegistryError> {
            let Some(dims) = dims else {
                return Ok(Self::DEFAULT_GRID);
            };
            let (w, d) = dims
                .split_once('x')
                .ok_or_else(|| invalid("grid dims must be <width>x<depth>"))?;
            let width: usize = w.parse().map_err(|_| invalid("width must be an integer"))?;
            let depth: usize = d.parse().map_err(|_| invalid("depth must be an integer"))?;
            if width == 0 || depth == 0 {
                return Err(invalid("width and depth must be positive"));
            }
            Ok((width, depth))
        };
        match kind {
            "count-min" => {
                let (width, depth) = grid(dims)?;
                Ok(BackendSpec::CountMin { width, depth })
            }
            "count-sketch" => {
                let (width, depth) = grid(dims)?;
                Ok(BackendSpec::CountSketch { width, depth })
            }
            "misra-gries" => {
                let capacity = match dims {
                    None => Self::DEFAULT_CAPACITY,
                    Some(c) => {
                        let capacity: usize = c
                            .parse()
                            .map_err(|_| invalid("capacity must be an integer"))?;
                        if capacity == 0 {
                            return Err(invalid("capacity must be positive"));
                        }
                        capacity
                    }
                };
                Ok(BackendSpec::MisraGries { capacity })
            }
            _ => Err(invalid(
                "unknown backend kind (count-min, count-sketch, misra-gries)",
            )),
        }
    }

    /// Builds a fresh, empty estimator for this spec, seeded per tenant.
    pub fn build(&self, seed: u64) -> TenantSketch {
        match *self {
            BackendSpec::CountMin { width, depth } => {
                TenantSketch::CountMin(CountMinSketch::new(width, depth, seed))
            }
            BackendSpec::CountSketch { width, depth } => {
                TenantSketch::CountSketch(CountSketch::new(width, depth, seed))
            }
            BackendSpec::MisraGries { capacity } => {
                TenantSketch::MisraGries(MisraGries::new(capacity))
            }
        }
    }

    /// Short backend name used in reports and protocol responses.
    pub fn name(&self) -> &'static str {
        match self {
            BackendSpec::CountMin { .. } => "count-min",
            BackendSpec::CountSketch { .. } => "count-sketch",
            BackendSpec::MisraGries { .. } => "misra-gries",
        }
    }

    /// Bytes of a freshly built estimator of this spec (the cost the
    /// governor charges a promotion).
    pub fn grid_bytes(&self) -> usize {
        self.build(0).space_report().total_bytes()
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendSpec::CountMin { width, depth } => write!(f, "count-min:{width}x{depth}"),
            BackendSpec::CountSketch { width, depth } => {
                write!(f, "count-sketch:{width}x{depth}")
            }
            BackendSpec::MisraGries { capacity } => write!(f, "misra-gries:{capacity}"),
        }
    }
}

/// A concrete per-tenant estimator: the closed set of backends the registry
/// can host behind one type (so tenants of different kinds coexist in one
/// map, and an [`IngestEngine`] can wrap any of them).
#[derive(Debug, Clone)]
pub enum TenantSketch {
    /// Count-Min Sketch.
    CountMin(CountMinSketch),
    /// Count Sketch.
    CountSketch(CountSketch),
    /// Misra–Gries summary.
    MisraGries(MisraGries),
}

impl TenantSketch {
    /// Total count mass this estimator has absorbed (`‖f‖₁` offered to it).
    pub fn total_mass(&self) -> u64 {
        match self {
            TenantSketch::CountMin(s) => s.total_updates(),
            TenantSketch::CountSketch(s) => s.total_updates(),
            TenantSketch::MisraGries(s) => s.total_updates(),
        }
    }

    /// Current grid width, for the foldable backends.
    pub fn width(&self) -> Option<usize> {
        match self {
            TenantSketch::CountMin(s) => Some(s.width()),
            TenantSketch::CountSketch(s) => Some(s.width()),
            TenantSketch::MisraGries(_) => None,
        }
    }

    /// Whether one more half-width fold is possible without dropping below
    /// `min_width`.
    pub fn can_fold(&self, min_width: usize) -> bool {
        match self.width() {
            Some(w) => w % 2 == 0 && w / 2 >= min_width,
            None => false,
        }
    }

    /// Folds the grid to half its width (the governor's degradation step).
    /// Returns `false` — and does nothing — for non-foldable backends or
    /// when the fold would drop below `min_width`. Never loses counted mass
    /// (see [`CountMinSketch::fold_to_width`]), only precision.
    pub fn fold_half(&mut self, min_width: usize) -> bool {
        if !self.can_fold(min_width) {
            return false;
        }
        match self {
            TenantSketch::CountMin(s) => s.fold_to_width(s.width() / 2),
            TenantSketch::CountSketch(s) => s.fold_to_width(s.width() / 2),
            TenantSketch::MisraGries(_) => return false,
        }
        true
    }

    /// Folds the grid to exactly `target_width` (must divide the current
    /// width). Used when collapsing a promoted tenant's full-width live
    /// sketch back onto its narrower frozen history.
    pub(crate) fn fold_to(&mut self, target_width: usize) {
        match self {
            TenantSketch::CountMin(s) => s.fold_to_width(target_width),
            TenantSketch::CountSketch(s) => s.fold_to_width(target_width),
            TenantSketch::MisraGries(_) => unreachable!("misra-gries is never folded"),
        }
    }
}

impl SketchBackend for TenantSketch {
    fn ingest(&mut self, element: &StreamElement, count: u64) {
        match self {
            TenantSketch::CountMin(s) => s.add(element.id, count),
            TenantSketch::CountSketch(s) => s.add(element.id, count),
            TenantSketch::MisraGries(s) => s.add(element.id, count),
        }
    }

    fn query(&self, element: &StreamElement) -> f64 {
        match self {
            TenantSketch::CountMin(s) => SketchBackend::query(s, element),
            TenantSketch::CountSketch(s) => SketchBackend::query(s, element),
            TenantSketch::MisraGries(s) => SketchBackend::query(s, element),
        }
    }

    fn fork(&self) -> Self {
        match self {
            TenantSketch::CountMin(s) => TenantSketch::CountMin(s.fork()),
            TenantSketch::CountSketch(s) => TenantSketch::CountSketch(s.fork()),
            TenantSketch::MisraGries(s) => TenantSketch::MisraGries(s.fork()),
        }
    }

    fn merge(&mut self, shard: &Self) {
        match (self, shard) {
            (TenantSketch::CountMin(a), TenantSketch::CountMin(b)) => a.merge(b),
            (TenantSketch::CountSketch(a), TenantSketch::CountSketch(b)) => a.merge(b),
            (TenantSketch::MisraGries(a), TenantSketch::MisraGries(b)) => a.merge(b),
            // Forks preserve the variant, so the registry can never reach
            // this arm; it exists only because the trait is variant-blind.
            _ => panic!("cannot merge tenant sketches of different backends"),
        }
    }

    fn space_report(&self) -> SpaceReport {
        match self {
            TenantSketch::CountMin(s) => s.space_report(),
            TenantSketch::CountSketch(s) => s.space_report(),
            TenantSketch::MisraGries(s) => s.space_report(),
        }
    }

    fn backend_name(&self) -> &'static str {
        match self {
            TenantSketch::CountMin(_) => "count-min",
            TenantSketch::CountSketch(_) => "count-sketch",
            TenantSketch::MisraGries(_) => "misra-gries",
        }
    }
}

/// Errors surfaced by the fallible [`SketchRegistry`] operations. Engine
/// failures (overload, poisoned shards, zero-weight updates) pass through
/// as typed [`EngineError`]s rather than being flattened into strings.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegistryError {
    /// No tenant with this name exists (never created, dropped, or evicted
    /// by the governor).
    UnknownTenant {
        /// The name that failed to resolve.
        name: String,
    },
    /// A tenant with this name already exists.
    DuplicateTenant {
        /// The conflicting name.
        name: String,
    },
    /// A backend spec string failed to parse.
    InvalidSpec {
        /// The offending spec string.
        spec: String,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A tenant's underlying ingest engine reported a typed failure.
    Engine(EngineError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownTenant { name } => write!(f, "unknown tenant '{name}'"),
            RegistryError::DuplicateTenant { name } => {
                write!(f, "tenant '{name}' already exists")
            }
            RegistryError::InvalidSpec { spec, reason } => {
                write!(f, "invalid backend spec '{spec}': {reason}")
            }
            RegistryError::Engine(err) => write!(f, "engine error: {err}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Engine(err) => Some(err),
            _ => None,
        }
    }
}

impl From<EngineError> for RegistryError {
    fn from(err: EngineError) -> Self {
        RegistryError::Engine(err)
    }
}

/// Configuration of a [`SketchRegistry`] and its memory-budget governor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegistryConfig {
    /// Global byte budget across all tenants (`None` = ungoverned).
    pub budget: Option<SpaceBudget>,
    /// Narrowest width the governor may fold a grid down to; a cold tenant
    /// already at the floor is evicted instead of degraded further.
    pub min_width: usize,
    /// Fraction of the budget below which the governor may promote hot
    /// degraded tenants back to full width (hysteresis: promotion stops well
    /// before the shedding threshold so the two never oscillate).
    pub promote_headroom: f64,
    /// Registry operations between automatic governor passes.
    pub govern_interval: u64,
    /// Base seed for tenant hash functions; each tenant derives its own
    /// distinct seed from it, so tenants never share collision patterns.
    pub default_seed: u64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            budget: None,
            min_width: 64,
            promote_headroom: 0.6,
            govern_interval: 1024,
            default_seed: 0x5EED,
        }
    }
}

impl RegistryConfig {
    /// Sets the global byte budget.
    pub fn budget(mut self, budget: SpaceBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the degradation width floor.
    pub fn min_width(mut self, min_width: usize) -> Self {
        self.min_width = min_width.max(1);
        self
    }

    /// Sets the promotion headroom fraction (clamped to `[0, 1]`).
    pub fn promote_headroom(mut self, fraction: f64) -> Self {
        self.promote_headroom = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the number of operations between automatic governor passes.
    pub fn govern_interval(mut self, ops: u64) -> Self {
        self.govern_interval = ops.max(1);
        self
    }

    /// Sets the base hash seed.
    pub fn default_seed(mut self, seed: u64) -> Self {
        self.default_seed = seed;
        self
    }
}

/// How a tenant's estimator is driven.
pub(crate) enum TenantState {
    /// A bare estimator updated in place — the default, and the only
    /// representation cheap enough for thousands of cold tenants.
    Direct(TenantSketch),
    /// A sharded [`IngestEngine`] (flush-time mode: no persistent threads,
    /// so even many sharded tenants cost no idle resources) for tenants hot
    /// enough to need parallel batch application.
    Sharded(Box<IngestEngine<TenantSketch>>),
    /// Transient placeholder while a governor step rebuilds the state;
    /// never observable through the public API.
    Retired,
}

/// One registered tenant.
pub(crate) struct Tenant {
    pub(crate) id: TenantId,
    pub(crate) spec: BackendSpec,
    pub(crate) seed: u64,
    pub(crate) state: TenantState,
    /// Frozen history of a *promoted* tenant: the narrow folded sketch its
    /// pre-promotion counts live in. Queries sum frozen + live estimates.
    pub(crate) frozen: Option<TenantSketch>,
    /// Count mass admitted for this tenant (registry-side ledger).
    pub(crate) mass: u64,
    /// Arrivals admitted for this tenant.
    pub(crate) elements: u64,
    /// Recent-activity score; halved by every governor pass (exponential
    /// decay), so coldness reflects *current* traffic, not lifetime totals.
    pub(crate) touches: u64,
    /// Registry logical clock at this tenant's last operation.
    pub(crate) last_touch: u64,
    /// Cached accounted bytes (refreshed on every structural change; all
    /// hosted backends have ingest-invariant footprints).
    pub(crate) bytes: usize,
    /// Half-width folds applied by the governor since creation/promotion.
    pub(crate) fold_steps: u32,
}

impl Tenant {
    fn ingest(&mut self, element: &StreamElement, count: u64) -> Result<(), RegistryError> {
        match &mut self.state {
            TenantState::Direct(sketch) => {
                sketch.ingest(element, count);
                Ok(())
            }
            TenantState::Sharded(engine) => {
                engine.ingest_weighted(element, count)?;
                Ok(())
            }
            TenantState::Retired => unreachable!("retired state is transient"),
        }
    }

    fn query(&mut self, element: &StreamElement) -> Result<f64, RegistryError> {
        let frozen = self
            .frozen
            .as_ref()
            .map_or(0.0, |sketch| SketchBackend::query(sketch, element));
        let live = match &mut self.state {
            TenantState::Direct(sketch) => SketchBackend::query(sketch, element),
            TenantState::Sharded(engine) => engine.query_synced(element)?,
            TenantState::Retired => unreachable!("retired state is transient"),
        };
        Ok(frozen + live)
    }

    /// Count mass actually held by the tenant's estimator state — audited
    /// against the registry ledger by [`RegistryStats::unaccounted_mass`].
    pub(crate) fn held_mass(&self) -> u64 {
        let frozen = self.frozen.as_ref().map_or(0, TenantSketch::total_mass);
        frozen
            + match &self.state {
                TenantState::Direct(sketch) => sketch.total_mass(),
                TenantState::Sharded(engine) => engine.stats().ingested_mass(),
                TenantState::Retired => 0,
            }
    }

    /// Itemized accounted memory: the live estimator (replicated
    /// `shards + 1`-fold for sharded tenants: base copy plus one fork per
    /// shard) plus the frozen history, if any.
    pub(crate) fn space_report(&self) -> SpaceReport {
        let mut report = match &self.state {
            TenantState::Direct(sketch) => sketch.space_report(),
            TenantState::Sharded(engine) => {
                let per_copy = engine.space_report();
                let mut scaled = SpaceReport::new();
                for _ in 0..engine.config().shards + 1 {
                    scaled = scaled.saturating_add(&per_copy);
                }
                scaled
            }
            TenantState::Retired => SpaceReport::new(),
        };
        if let Some(frozen) = &self.frozen {
            report = report.saturating_add(&frozen.space_report());
        }
        report
    }

    pub(crate) fn refresh_bytes(&mut self) {
        self.bytes = self.space_report().total_bytes();
    }

    pub(crate) fn is_sharded(&self) -> bool {
        matches!(self.state, TenantState::Sharded(_))
    }
}

/// Per-tenant description returned by [`SketchRegistry::tenant_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantReport {
    /// Stable tenant handle.
    pub id: TenantId,
    /// Backend kind name.
    pub backend: &'static str,
    /// Accounted bytes (cached).
    pub bytes: usize,
    /// Count mass admitted for this tenant.
    pub mass: u64,
    /// Arrivals admitted for this tenant.
    pub elements: u64,
    /// Governor half-width folds since creation/promotion.
    pub fold_steps: u32,
    /// Whether the tenant currently carries a frozen history (was promoted).
    pub promoted: bool,
    /// Whether the tenant is driven through a sharded ingest engine.
    pub sharded: bool,
}

/// Counters describing what a [`SketchRegistry`] has done so far, in the
/// style of [`opthash_engine::EngineStats`]: a consistent snapshot assembled
/// by [`SketchRegistry::stats`], carrying the registry's conservation
/// invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Tenants ever created.
    pub tenants_created: u64,
    /// Tenants removed via [`SketchRegistry::drop_tenant`].
    pub tenants_dropped: u64,
    /// Tenants currently registered.
    pub live_tenants: u64,
    /// Arrivals admitted across all tenants.
    pub ingested_elements: u64,
    /// Count mass admitted across all tenants.
    pub ingested_mass: u64,
    /// Count mass currently held in live tenant estimators (audited from
    /// the sketches themselves, not the intake ledger).
    pub held_mass: u64,
    /// Count mass removed with explicitly dropped tenants.
    pub dropped_mass: u64,
    /// Count mass removed with governor-evicted tenants.
    pub evicted_mass: u64,
    /// Weight-0 updates rejected at the API boundary.
    pub zero_weight_rejections: u64,
    /// Point queries answered.
    pub queries: u64,
    /// Queries that resolved to a live tenant.
    pub query_hits: u64,
    /// Queries (and ingests) that named an unknown tenant.
    pub query_misses: u64,
    /// Governor degradation steps of any kind (folds + collapses +
    /// demotions).
    pub degradations: u64,
    /// Half-width grid folds applied to cold tenants.
    pub folds: u64,
    /// Promoted tenants collapsed back onto their frozen history.
    pub collapses: u64,
    /// Sharded tenants demoted to bare estimators.
    pub demotions: u64,
    /// Hot degraded tenants promoted back to full width.
    pub promotions: u64,
    /// Cold tenants evicted outright (already at the degradation floor).
    pub evictions: u64,
    /// Governor passes executed.
    pub governor_passes: u64,
    /// Accounted bytes across all live tenants.
    pub live_bytes: u64,
    /// Global byte budget (0 = ungoverned).
    pub budget_bytes: u64,
}

impl RegistryStats {
    /// Admitted mass not locatable in the registry: admitted − (held in
    /// live tenants + dropped + evicted). Zero for a healthy registry at
    /// all times — degradation folds and promotions move mass between
    /// representations but never lose it.
    pub fn unaccounted_mass(&self) -> i128 {
        self.ingested_mass as i128
            - self.held_mass as i128
            - self.dropped_mass as i128
            - self.evicted_mass as i128
    }

    /// Fraction of queries that resolved to a live tenant.
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.query_hits as f64 / self.queries as f64
        }
    }

    /// Whether the live footprint currently exceeds the budget (transiently
    /// true between an admission and the next governor pass).
    pub fn over_budget(&self) -> bool {
        self.budget_bytes > 0 && self.live_bytes > self.budget_bytes
    }
}

/// Running totals the registry maintains incrementally (cheap enough to
/// bump on every operation; `stats()` adds the computed fields).
#[derive(Debug, Default)]
pub(crate) struct RegistryCounters {
    pub(crate) tenants_created: u64,
    pub(crate) tenants_dropped: u64,
    pub(crate) ingested_elements: u64,
    pub(crate) ingested_mass: u64,
    pub(crate) dropped_mass: u64,
    pub(crate) evicted_mass: u64,
    pub(crate) zero_weight_rejections: u64,
    pub(crate) queries: u64,
    pub(crate) query_hits: u64,
    pub(crate) query_misses: u64,
    pub(crate) folds: u64,
    pub(crate) collapses: u64,
    pub(crate) demotions: u64,
    pub(crate) promotions: u64,
    pub(crate) evictions: u64,
    pub(crate) governor_passes: u64,
}

/// A registry of named frequency estimators sharing one machine and one
/// memory budget.
///
/// Tenants are created from a [`BackendSpec`], routed by name, and queried
/// through the registry; a built-in governor (see [`SketchRegistry::govern`]
/// and the [`crate::governor`] module) keeps the fleet's total accounted
/// bytes under the configured [`SpaceBudget`] by degrading cold tenants —
/// folding their grids to half width, losing precision but never counted
/// mass — and promoting hot degraded tenants back to full width when
/// headroom returns.
///
/// See the crate-level docs for a quickstart.
pub struct SketchRegistry {
    pub(crate) tenants: HashMap<String, Tenant>,
    pub(crate) config: RegistryConfig,
    pub(crate) counters: RegistryCounters,
    pub(crate) next_id: u64,
    pub(crate) clock: u64,
    pub(crate) ops_since_govern: u64,
    pub(crate) live_bytes: u64,
}

impl SketchRegistry {
    /// Creates a registry with the given configuration.
    pub fn new(config: RegistryConfig) -> Self {
        SketchRegistry {
            tenants: HashMap::new(),
            config,
            counters: RegistryCounters::default(),
            next_id: 0,
            clock: 0,
            ops_since_govern: 0,
            live_bytes: 0,
        }
    }

    /// Creates a registry governed by `budget` with default tuning.
    pub fn with_budget(budget: SpaceBudget) -> Self {
        Self::new(RegistryConfig::default().budget(budget))
    }

    /// Creates an ungoverned registry (no byte budget).
    pub fn unbounded() -> Self {
        Self::new(RegistryConfig::default())
    }

    /// The registry's configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// Number of live tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Returns `true` if no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Returns `true` if a tenant named `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tenants.contains_key(name)
    }

    /// The stable handle of the tenant named `name`, if registered.
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        self.tenants.get(name).map(|t| t.id)
    }

    /// Live tenant names, sorted (stable output for reports and tests).
    pub fn tenant_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Registers a new tenant backed by a bare estimator built from `spec`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateTenant`] if the name is taken.
    pub fn create(&mut self, name: &str, spec: BackendSpec) -> Result<TenantId, RegistryError> {
        self.create_tenant(name, spec, None)
    }

    /// Registers a new tenant driven through a sharded (flush-time)
    /// [`IngestEngine`] with `shards` shards — for the handful of tenants
    /// hot enough to need parallel batch application. Costs `shards + 1`
    /// copies of the estimator's footprint against the budget.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateTenant`] if the name is taken.
    pub fn create_sharded(
        &mut self,
        name: &str,
        spec: BackendSpec,
        shards: usize,
    ) -> Result<TenantId, RegistryError> {
        self.create_tenant(name, spec, Some(shards.max(1)))
    }

    fn create_tenant(
        &mut self,
        name: &str,
        spec: BackendSpec,
        shards: Option<usize>,
    ) -> Result<TenantId, RegistryError> {
        if self.tenants.contains_key(name) {
            return Err(RegistryError::DuplicateTenant {
                name: name.to_owned(),
            });
        }
        let id = TenantId(self.next_id);
        self.next_id += 1;
        self.clock += 1;
        // Per-tenant seed: distinct hash functions per tenant, derived
        // deterministically so a registry rebuilt from the same config and
        // creation order reproduces identical estimators.
        let seed = self
            .config
            .default_seed
            .wrapping_add(id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let sketch = spec.build(seed);
        let state = match shards {
            None => TenantState::Direct(sketch),
            Some(shards) => TenantState::Sharded(Box::new(IngestEngine::new(
                sketch,
                EngineConfig::with_shards(shards).mode(IngestMode::Inline),
            ))),
        };
        let mut tenant = Tenant {
            id,
            spec,
            seed,
            state,
            frozen: None,
            mass: 0,
            elements: 0,
            touches: 0,
            last_touch: self.clock,
            bytes: 0,
            fold_steps: 0,
        };
        tenant.refresh_bytes();
        self.live_bytes = self.live_bytes.saturating_add(tenant.bytes as u64);
        self.tenants.insert(name.to_owned(), tenant);
        self.counters.tenants_created += 1;
        // A creation is the one operation that can blow the budget in a
        // single step, so it always gets an immediate governor pass.
        if self.over_budget() {
            self.govern();
        }
        Ok(id)
    }

    /// Removes the tenant named `name`, returning its handle. The tenant's
    /// mass moves to the `dropped` ledger bucket (still accounted).
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`] if no such tenant exists.
    pub fn drop_tenant(&mut self, name: &str) -> Result<TenantId, RegistryError> {
        match self.tenants.remove(name) {
            Some(tenant) => {
                self.counters.tenants_dropped += 1;
                self.counters.dropped_mass += tenant.mass;
                self.live_bytes = self.live_bytes.saturating_sub(tenant.bytes as u64);
                Ok(tenant.id)
            }
            None => Err(RegistryError::UnknownTenant {
                name: name.to_owned(),
            }),
        }
    }

    /// Routes one arrival to the tenant named `name`.
    pub fn ingest(&mut self, name: &str, element: &StreamElement) -> Result<(), RegistryError> {
        self.ingest_weighted(name, element, 1)
    }

    /// Routes `count` arrivals of `element` to the tenant named `name`.
    ///
    /// # Errors
    ///
    /// * [`RegistryError::UnknownTenant`] — no such tenant (it may have been
    ///   evicted by the governor; check [`RegistryStats::evictions`]).
    /// * [`RegistryError::Engine`] wrapping [`EngineError::ZeroWeight`] —
    ///   `count == 0` (counted, mirroring the engine's API boundary).
    /// * [`RegistryError::Engine`] — a sharded tenant's engine failed.
    pub fn ingest_weighted(
        &mut self,
        name: &str,
        element: &StreamElement,
        count: u64,
    ) -> Result<(), RegistryError> {
        if count == 0 {
            self.counters.zero_weight_rejections += 1;
            return Err(EngineError::ZeroWeight { id: element.id }.into());
        }
        self.clock += 1;
        let clock = self.clock;
        let Some(tenant) = self.tenants.get_mut(name) else {
            self.counters.query_misses += 1;
            return Err(RegistryError::UnknownTenant {
                name: name.to_owned(),
            });
        };
        tenant.ingest(element, count)?;
        tenant.mass += count;
        tenant.elements += 1;
        tenant.touches += 1;
        tenant.last_touch = clock;
        self.counters.ingested_mass += count;
        self.counters.ingested_elements += 1;
        self.ops_since_govern += 1;
        if self.config.budget.is_some() && self.ops_since_govern >= self.config.govern_interval {
            self.govern();
        }
        Ok(())
    }

    /// Returns the estimated frequency of `element` for the tenant named
    /// `name`. For a promoted tenant the estimate is the sum of the frozen
    /// history's and the live sketch's estimates (both upper bounds for
    /// Count-Min, so the sum still never under-counts).
    ///
    /// # Errors
    ///
    /// * [`RegistryError::UnknownTenant`] — no such tenant.
    /// * [`RegistryError::Engine`] — a sharded tenant's engine could not
    ///   flush (e.g. a poisoned shard).
    pub fn query(&mut self, name: &str, element: &StreamElement) -> Result<f64, RegistryError> {
        self.counters.queries += 1;
        self.clock += 1;
        let clock = self.clock;
        let Some(tenant) = self.tenants.get_mut(name) else {
            self.counters.query_misses += 1;
            return Err(RegistryError::UnknownTenant {
                name: name.to_owned(),
            });
        };
        let estimate = tenant.query(element)?;
        tenant.touches += 1;
        tenant.last_touch = clock;
        self.counters.query_hits += 1;
        Ok(estimate)
    }

    /// Per-tenant description, or `None` for an unknown name.
    pub fn tenant_report(&self, name: &str) -> Option<TenantReport> {
        self.tenants.get(name).map(|t| TenantReport {
            id: t.id,
            backend: t.spec.name(),
            bytes: t.bytes,
            mass: t.mass,
            elements: t.elements,
            fold_steps: t.fold_steps,
            promoted: t.frozen.is_some(),
            sharded: t.is_sharded(),
        })
    }

    /// Fleet-wide itemized memory usage: the saturating sum of every
    /// tenant's accounted report.
    pub fn space_report(&self) -> SpaceReport {
        self.tenants
            .values()
            .fold(SpaceReport::new(), |acc, tenant| {
                acc.saturating_add(&tenant.space_report())
            })
    }

    /// A consistent snapshot of the registry's counters, including the
    /// audited conservation fields.
    pub fn stats(&self) -> RegistryStats {
        let held_mass = self.tenants.values().map(Tenant::held_mass).sum();
        RegistryStats {
            tenants_created: self.counters.tenants_created,
            tenants_dropped: self.counters.tenants_dropped,
            live_tenants: self.tenants.len() as u64,
            ingested_elements: self.counters.ingested_elements,
            ingested_mass: self.counters.ingested_mass,
            held_mass,
            dropped_mass: self.counters.dropped_mass,
            evicted_mass: self.counters.evicted_mass,
            zero_weight_rejections: self.counters.zero_weight_rejections,
            queries: self.counters.queries,
            query_hits: self.counters.query_hits,
            query_misses: self.counters.query_misses,
            degradations: self.counters.folds + self.counters.collapses + self.counters.demotions,
            folds: self.counters.folds,
            collapses: self.counters.collapses,
            demotions: self.counters.demotions,
            promotions: self.counters.promotions,
            evictions: self.counters.evictions,
            governor_passes: self.counters.governor_passes,
            live_bytes: self.live_bytes,
            budget_bytes: self.config.budget.map_or(0, |b| b.bytes() as u64),
        }
    }

    /// Accounted bytes across all live tenants (maintained incrementally;
    /// re-derived from the per-tenant caches on every governor pass).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    pub(crate) fn over_budget(&self) -> bool {
        self.config
            .budget
            .is_some_and(|budget| self.live_bytes > budget.bytes() as u64)
    }
}

// The governor pass itself lives in `crate::governor` (same crate, so it
// reaches the `pub(crate)` internals above); re-exported here for discovery.
impl SketchRegistry {
    /// Runs one governor pass now (also triggered automatically every
    /// [`RegistryConfig::govern_interval`] operations and on any creation
    /// that exceeds the budget). Returns what the pass did.
    pub fn govern(&mut self) -> GovernorOutcome {
        crate::governor::govern_pass(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opthash_stream::ElementId;

    fn element(id: u64) -> StreamElement {
        StreamElement::without_features(id)
    }

    #[test]
    fn create_route_query_drop_lifecycle() {
        let mut registry = SketchRegistry::unbounded();
        let a = registry
            .create("alpha", BackendSpec::parse("count-min:256x4").unwrap())
            .unwrap();
        let b = registry
            .create("beta", BackendSpec::parse("misra-gries:64").unwrap())
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(registry.tenant_id("alpha"), Some(a));
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.tenant_names(), vec!["alpha", "beta"]);

        for _ in 0..5 {
            registry.ingest("alpha", &element(7)).unwrap();
        }
        registry.ingest_weighted("beta", &element(7), 3).unwrap();
        assert_eq!(registry.query("alpha", &element(7)).unwrap(), 5.0);
        assert_eq!(registry.query("beta", &element(7)).unwrap(), 3.0);
        // Tenants are isolated: beta's arrivals do not leak into alpha.
        assert_eq!(registry.query("alpha", &element(99)).unwrap(), 0.0);

        let dropped = registry.drop_tenant("alpha").unwrap();
        assert_eq!(dropped, a);
        assert!(matches!(
            registry.query("alpha", &element(7)),
            Err(RegistryError::UnknownTenant { .. })
        ));
        let stats = registry.stats();
        assert_eq!(stats.tenants_created, 2);
        assert_eq!(stats.tenants_dropped, 1);
        assert_eq!(stats.live_tenants, 1);
        assert_eq!(stats.dropped_mass, 5);
        assert_eq!(stats.unaccounted_mass(), 0);
    }

    #[test]
    fn duplicate_and_unknown_tenants_are_typed_errors() {
        let mut registry = SketchRegistry::unbounded();
        registry
            .create(
                "x",
                BackendSpec::CountMin {
                    width: 64,
                    depth: 2,
                },
            )
            .unwrap();
        assert!(matches!(
            registry.create("x", BackendSpec::MisraGries { capacity: 8 }),
            Err(RegistryError::DuplicateTenant { .. })
        ));
        assert!(matches!(
            registry.ingest("nope", &element(1)),
            Err(RegistryError::UnknownTenant { .. })
        ));
        assert!(matches!(
            registry.drop_tenant("nope"),
            Err(RegistryError::UnknownTenant { .. })
        ));
        let err = registry.ingest_weighted("x", &element(1), 0).unwrap_err();
        assert_eq!(
            err,
            RegistryError::Engine(EngineError::ZeroWeight { id: ElementId(1) })
        );
        assert_eq!(registry.stats().zero_weight_rejections, 1);
    }

    #[test]
    fn spec_parsing_round_trips_and_rejects_garbage() {
        let cases = [
            ("count-min:1024x4", "count-min"),
            ("count-sketch:512x5", "count-sketch"),
            ("misra-gries:256", "misra-gries"),
            ("count-min", "count-min"),
            ("misra-gries", "misra-gries"),
        ];
        for (text, name) in cases {
            let spec = BackendSpec::parse(text).unwrap();
            assert_eq!(spec.name(), name);
            // Display form re-parses to the same spec.
            assert_eq!(BackendSpec::parse(&spec.to_string()).unwrap(), spec);
        }
        assert_eq!(
            BackendSpec::parse("count-min").unwrap(),
            BackendSpec::CountMin {
                width: BackendSpec::DEFAULT_GRID.0,
                depth: BackendSpec::DEFAULT_GRID.1
            }
        );
        for bad in [
            "bloom:64",
            "count-min:0x4",
            "count-min:64",
            "count-min:ax4",
            "misra-gries:0",
            "misra-gries:many",
        ] {
            assert!(
                matches!(
                    BackendSpec::parse(bad),
                    Err(RegistryError::InvalidSpec { .. })
                ),
                "{bad} should not parse"
            );
        }
    }

    #[test]
    fn sharded_tenants_match_direct_tenants() {
        let mut registry = SketchRegistry::unbounded();
        let spec = BackendSpec::CountMin {
            width: 256,
            depth: 4,
        };
        registry.create("direct", spec).unwrap();
        registry.create_sharded("sharded", spec, 4).unwrap();
        let mut state = 3u64;
        for _ in 0..5_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let e = element(state % 300);
            registry.ingest("direct", &e).unwrap();
            registry.ingest("sharded", &e).unwrap();
        }
        // Same seed-derived hash functions? No — tenants get distinct seeds,
        // so compare each against its own truth-by-construction property
        // instead: identical mass and never-undercount behaviour.
        let direct = registry.tenant_report("direct").unwrap();
        let sharded = registry.tenant_report("sharded").unwrap();
        assert_eq!(direct.mass, sharded.mass);
        assert!(sharded.sharded && !direct.sharded);
        assert!(sharded.bytes > direct.bytes, "replication is accounted");
        assert_eq!(registry.stats().unaccounted_mass(), 0);
    }

    #[test]
    fn stats_track_queries_and_misses() {
        let mut registry = SketchRegistry::unbounded();
        registry
            .create(
                "t",
                BackendSpec::CountMin {
                    width: 64,
                    depth: 2,
                },
            )
            .unwrap();
        registry.ingest(&"t", &element(1)).unwrap();
        let _ = registry.query("t", &element(1)).unwrap();
        let _ = registry.query("ghost", &element(1));
        let stats = registry.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.query_hits, 1);
        assert_eq!(stats.query_misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }
}
