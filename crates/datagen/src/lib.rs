//! # opthash-datagen
//!
//! Synthetic workload generators reproducing the paper's two data sources:
//!
//! * [`groups`] — the group-structured synthetic streams of Section 6.1:
//!   `G` element groups of exponentially growing sizes, 2-D Gaussian features
//!   per group, group arrival probability proportional to `1/g`, and a
//!   prefix in which only a fraction `g0` of each group's elements may
//!   appear.
//! * [`querylog`] — a synthetic multi-day search-query log standing in for
//!   the AOL dataset of Section 7 (which is not redistributable): Zipfian
//!   rank–frequency law calibrated to the frequencies the paper quotes,
//!   navigational-query text structure, and day-to-day persistence of the
//!   popular queries.
//! * [`trace`] — a loader for real query-log traces in the AOL TSV format,
//!   so users who have the original dataset can run every experiment on it.
//! * [`tenants`] — mixed multi-tenant serving workloads that combine the
//!   generators above and skew traffic across tenants, for exercising the
//!   registry's memory-budget governor.
//! * [`drift`] — rotating-Zipf drifting workloads with a controllable drift
//!   rate, for exercising online re-training.
//! * [`zipf`] — the shared Zipf sampler.
//!
//! All generators are deterministic given their seed, so every experiment in
//! the benchmark harness is reproducible.
//!
//! ```
//! use opthash_datagen::groups::{GroupConfig, GroupDataset};
//!
//! let dataset = GroupDataset::generate(GroupConfig::with_groups(4));
//! // Group sizes grow exponentially: 8 + 16 + 32 + 64 elements.
//! assert_eq!(dataset.universe_size(), 120);
//! let stream = dataset.generate_stream(1_000, 7);
//! assert_eq!(stream.len(), 1_000);
//! // Deterministic given the seed.
//! let again = dataset.generate_stream(1_000, 7);
//! assert_eq!(stream.as_slice()[0].id, again.as_slice()[0].id);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod drift;
pub mod groups;
pub mod querylog;
pub mod tenants;
pub mod trace;
pub mod zipf;

pub use drift::{DriftConfig, DriftingWorkload};
pub use groups::{GroupConfig, GroupDataset};
pub use querylog::{QueryLogConfig, QueryLogDataset};
pub use tenants::{MixedTenantConfig, MixedTenantWorkload, TenantArrival, TenantClass};
pub use trace::{QueryTrace, TraceRecord};
pub use zipf::ZipfSampler;
