//! Group-structured synthetic streams (Section 6.1 of the paper).
//!
//! The universe is split into `G` groups `G_1 … G_G` of exponentially
//! increasing sizes `2^{G0+1}, …, 2^{G0+G}`. Each group is associated with a
//! `p`-dimensional Gaussian (mean drawn uniformly from `[-10, 10]^p`,
//! identity covariance) from which its elements' features are drawn. Arrivals
//! first pick a group with probability proportional to `1/g`, then an
//! element uniformly inside the group — so the *small* groups contain the
//! heavy hitters. When generating the observed prefix, only a fraction `g0`
//! of each group's elements is eligible to appear, modelling elements that
//! only show up later in the stream.

use opthash_stream::{ElementId, Features, Stream, StreamElement};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the group-based generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupConfig {
    /// Number of groups `G`; group `g ∈ [1, G]` has `2^{G0+g}` elements.
    pub num_groups: usize,
    /// Exponent offset `G0` determining the smallest group size
    /// (`2^{G0+1}`); the paper uses `G0 = 2`.
    pub smallest_group_exponent: u32,
    /// Feature dimensionality `p`; the paper uses 2.
    pub feature_dim: usize,
    /// Fraction `g0 ∈ (0, 1]` of each group's elements eligible to appear in
    /// the prefix.
    pub fraction_seen: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            num_groups: 6,
            smallest_group_exponent: 2,
            feature_dim: 2,
            fraction_seen: 0.5,
            seed: 0,
        }
    }
}

impl GroupConfig {
    /// Convenience constructor fixing only the number of groups, matching the
    /// experiments that sweep `G`.
    pub fn with_groups(num_groups: usize) -> Self {
        GroupConfig {
            num_groups,
            ..GroupConfig::default()
        }
    }

    /// Total number of elements in the universe:
    /// `Σ_{g=1..G} 2^{G0+g} = 2^{G0+G+1} − 2^{G0+1}`.
    pub fn universe_size(&self) -> usize {
        (1..=self.num_groups)
            .map(|g| 1usize << (self.smallest_group_exponent + g as u32))
            .sum()
    }

    /// The prefix length `|S0| = 10·2^G` the paper uses.
    pub fn default_prefix_len(&self) -> usize {
        10 * (1usize << self.num_groups)
    }
}

/// One element of the synthetic universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupElement {
    /// Unique ID.
    pub id: ElementId,
    /// Index of the group the element belongs to (1-based, as in the paper).
    pub group: usize,
    /// Feature vector drawn from the group's Gaussian.
    pub features: Features,
    /// Whether the element is eligible to appear in the prefix.
    pub eligible_in_prefix: bool,
}

/// A fully materialized synthetic universe plus its sampling distributions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupDataset {
    config: GroupConfig,
    elements: Vec<GroupElement>,
    /// Cumulative group-selection probabilities.
    group_cumulative: Vec<f64>,
    /// Element ID ranges per group: `group_ranges[g-1] = (start, end)` into
    /// `elements`.
    group_ranges: Vec<(usize, usize)>,
    /// Group means, for inspection/visualization.
    group_means: Vec<Vec<f64>>,
}

/// Draws a standard-normal sample via the Box–Muller transform.
fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl GroupDataset {
    /// Materializes the universe described by `config`.
    pub fn generate(config: GroupConfig) -> Self {
        assert!(config.num_groups > 0, "need at least one group");
        assert!(
            config.fraction_seen > 0.0 && config.fraction_seen <= 1.0,
            "fraction_seen must lie in (0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut elements = Vec::with_capacity(config.universe_size());
        let mut group_ranges = Vec::with_capacity(config.num_groups);
        let mut group_means = Vec::with_capacity(config.num_groups);
        let mut next_id = 0u64;

        for g in 1..=config.num_groups {
            let size = 1usize << (config.smallest_group_exponent + g as u32);
            let mean: Vec<f64> = (0..config.feature_dim)
                .map(|_| rng.gen_range(-10.0..10.0))
                .collect();
            group_means.push(mean.clone());
            let start = elements.len();
            // Mark the first ⌈g0·|Gg|⌉ generated elements of each group as
            // prefix-eligible; membership is random because features are iid.
            let eligible = ((size as f64) * config.fraction_seen).ceil() as usize;
            for idx in 0..size {
                let features: Vec<f64> = mean
                    .iter()
                    .map(|&m| m + standard_normal(&mut rng))
                    .collect();
                elements.push(GroupElement {
                    id: ElementId(next_id),
                    group: g,
                    features: Features::new(features),
                    eligible_in_prefix: idx < eligible,
                });
                next_id += 1;
            }
            group_ranges.push((start, elements.len()));
        }

        // Group arrival probabilities ∝ 1/g.
        let mut group_cumulative = Vec::with_capacity(config.num_groups);
        let mut total = 0.0;
        for g in 1..=config.num_groups {
            total += 1.0 / g as f64;
            group_cumulative.push(total);
        }

        GroupDataset {
            config,
            elements,
            group_cumulative,
            group_ranges,
            group_means,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GroupConfig {
        &self.config
    }

    /// All universe elements.
    pub fn elements(&self) -> &[GroupElement] {
        &self.elements
    }

    /// Number of elements in the universe.
    pub fn universe_size(&self) -> usize {
        self.elements.len()
    }

    /// The Gaussian mean of each group (1-based group `g` is at index
    /// `g − 1`).
    pub fn group_means(&self) -> &[Vec<f64>] {
        &self.group_means
    }

    /// The group of an element.
    pub fn group_of(&self, id: ElementId) -> Option<usize> {
        self.elements.get(id.raw() as usize).map(|e| e.group)
    }

    /// The element (ID + features) for a given ID.
    pub fn stream_element(&self, id: ElementId) -> Option<StreamElement> {
        self.elements
            .get(id.raw() as usize)
            .map(|e| StreamElement::new(e.id, e.features.clone()))
    }

    fn sample_group(&self, rng: &mut StdRng) -> usize {
        let total = *self.group_cumulative.last().unwrap();
        let u: f64 = rng.gen_range(0.0..total);
        self.group_cumulative.partition_point(|&c| c < u) + 1
    }

    fn sample_arrival(&self, rng: &mut StdRng, prefix_only: bool) -> &GroupElement {
        loop {
            let g = self.sample_group(rng);
            let (start, end) = self.group_ranges[g - 1];
            if prefix_only {
                // Only a fraction g0 of the group is eligible; eligible
                // elements occupy the front of the range.
                let size = end - start;
                let eligible = ((size as f64) * self.config.fraction_seen).ceil() as usize;
                if eligible == 0 {
                    continue;
                }
                let idx = start + rng.gen_range(0..eligible);
                return &self.elements[idx];
            }
            let idx = rng.gen_range(start..end);
            return &self.elements[idx];
        }
    }

    /// Generates the observed stream prefix `S0` of `len` arrivals: only the
    /// prefix-eligible fraction of each group can appear.
    pub fn generate_prefix(&self, len: usize, seed: u64) -> Stream {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                let e = self.sample_arrival(&mut rng, true);
                StreamElement::new(e.id, e.features.clone())
            })
            .collect()
    }

    /// Generates `len` post-prefix arrivals: the whole universe can appear.
    pub fn generate_stream(&self, len: usize, seed: u64) -> Stream {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                let e = self.sample_arrival(&mut rng, false);
                StreamElement::new(e.id, e.features.clone())
            })
            .collect()
    }

    /// Generates the paper's standard experiment pair: a prefix of
    /// `10·2^G` arrivals and a continuation of `10×` that length
    /// (`|S| = 10·|S0|` as used in Experiments 4 and 5).
    pub fn generate_experiment_streams(&self, seed: u64) -> (Stream, Stream) {
        let prefix_len = self.config.default_prefix_len();
        let prefix = self.generate_prefix(prefix_len, seed);
        let continuation = self.generate_stream(prefix_len * 10, seed.wrapping_add(1));
        (prefix, continuation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn universe_size_matches_formula() {
        let config = GroupConfig {
            num_groups: 10,
            smallest_group_exponent: 2,
            ..GroupConfig::default()
        };
        // sum_{g=1..10} 2^{2+g} = 2^3 + ... + 2^12 = 2^13 - 2^3 = 8184
        assert_eq!(config.universe_size(), 8184);
        let data = GroupDataset::generate(config);
        assert_eq!(data.universe_size(), 8184);
    }

    #[test]
    fn default_prefix_len_matches_paper() {
        let config = GroupConfig::with_groups(10);
        assert_eq!(config.default_prefix_len(), 10_240);
    }

    #[test]
    fn group_sizes_grow_exponentially() {
        let data = GroupDataset::generate(GroupConfig::with_groups(5));
        let mut sizes = vec![0usize; 5];
        for e in data.elements() {
            sizes[e.group - 1] += 1;
        }
        assert_eq!(sizes, vec![8, 16, 32, 64, 128]);
    }

    #[test]
    fn features_cluster_around_group_means() {
        let data = GroupDataset::generate(GroupConfig::with_groups(4));
        for e in data.elements() {
            let mean = &data.group_means()[e.group - 1];
            let dist: f64 = e
                .features
                .as_slice()
                .iter()
                .zip(mean)
                .map(|(x, m)| (x - m) * (x - m))
                .sum::<f64>()
                .sqrt();
            // 2-D standard normal: being more than 6 sigma away is absurd
            assert!(dist < 6.0, "element {} is {dist} away from its mean", e.id);
        }
    }

    #[test]
    fn small_groups_receive_more_arrivals_per_element() {
        let data = GroupDataset::generate(GroupConfig::with_groups(6));
        let stream = data.generate_stream(60_000, 7);
        let mut per_group = vec![0usize; 6];
        for arrival in stream.iter() {
            per_group[data.group_of(arrival.id).unwrap() - 1] += 1;
        }
        // group 1 has 8 elements and arrival weight 1; group 6 has 256
        // elements and weight 1/6: per-element intensity differs by ~32×.
        let intensity_1 = per_group[0] as f64 / 8.0;
        let intensity_6 = per_group[5] as f64 / 256.0;
        assert!(
            intensity_1 > intensity_6 * 10.0,
            "group 1 per-element intensity {intensity_1} vs group 6 {intensity_6}"
        );
    }

    #[test]
    fn prefix_only_contains_eligible_elements() {
        let config = GroupConfig {
            fraction_seen: 0.33,
            ..GroupConfig::with_groups(6)
        };
        let data = GroupDataset::generate(config);
        let prefix = data.generate_prefix(5_000, 3);
        for arrival in prefix.iter() {
            let e = &data.elements()[arrival.id.raw() as usize];
            assert!(e.eligible_in_prefix, "{} should not appear in prefix", e.id);
        }
        // and a full stream eventually contains ineligible elements too
        let full = data.generate_stream(5_000, 4);
        let saw_ineligible = full
            .iter()
            .any(|a| !data.elements()[a.id.raw() as usize].eligible_in_prefix);
        assert!(saw_ineligible);
    }

    #[test]
    fn eligible_count_respects_fraction() {
        let config = GroupConfig {
            fraction_seen: 0.5,
            ..GroupConfig::with_groups(5)
        };
        let data = GroupDataset::generate(config);
        let eligible = data
            .elements()
            .iter()
            .filter(|e| e.eligible_in_prefix)
            .count();
        assert_eq!(eligible, data.universe_size() / 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = GroupDataset::generate(GroupConfig::with_groups(4));
        let b = GroupDataset::generate(GroupConfig::with_groups(4));
        assert_eq!(a.elements().len(), b.elements().len());
        for (x, y) in a.elements().iter().zip(b.elements()) {
            assert_eq!(x.features, y.features);
        }
        let s1 = a.generate_prefix(100, 9);
        let s2 = b.generate_prefix(100, 9);
        let ids1: Vec<u64> = s1.iter().map(|e| e.id.raw()).collect();
        let ids2: Vec<u64> = s2.iter().map(|e| e.id.raw()).collect();
        assert_eq!(ids1, ids2);
    }

    #[test]
    fn experiment_streams_have_paper_lengths() {
        let data = GroupDataset::generate(GroupConfig::with_groups(4));
        let (prefix, continuation) = data.generate_experiment_streams(1);
        assert_eq!(prefix.len(), 160);
        assert_eq!(continuation.len(), 1_600);
    }

    #[test]
    fn stream_element_lookup() {
        let data = GroupDataset::generate(GroupConfig::with_groups(3));
        let e = data.stream_element(ElementId(0)).unwrap();
        assert_eq!(e.id, ElementId(0));
        assert_eq!(e.features.dim(), 2);
        assert!(data.stream_element(ElementId(1_000_000)).is_none());
        assert_eq!(data.group_of(ElementId(0)), Some(1));
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let data = GroupDataset::generate(GroupConfig::with_groups(5));
        let ids: HashSet<u64> = data.elements().iter().map(|e| e.id.raw()).collect();
        assert_eq!(ids.len(), data.universe_size());
        assert!(ids.contains(&0));
        assert!(ids.contains(&(data.universe_size() as u64 - 1)));
    }

    #[test]
    #[should_panic(expected = "fraction_seen")]
    fn invalid_fraction_panics() {
        let _ = GroupDataset::generate(GroupConfig {
            fraction_seen: 0.0,
            ..GroupConfig::default()
        });
    }
}
