//! Loading real query-log traces from disk.
//!
//! The paper evaluates on the AOL query log, which cannot be redistributed
//! with this repository. Users who have a copy (or any other query trace)
//! can load it with [`QueryTrace::load_aol_tsv`], which parses the AOL
//! release format — tab-separated lines of
//! `AnonID\tQuery\tQueryTime\tItemRank\tClickURL` with a header row — and
//! exposes the same per-day streams and aggregated counts as the synthetic
//! [`crate::querylog::QueryLogDataset`], so every experiment binary can be
//! pointed at real data without code changes elsewhere.

use opthash_stream::{ElementId, FrequencyVector, Stream, StreamElement};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// One parsed query arrival.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The (normalized) query text.
    pub query: String,
    /// Zero-based day index relative to the first day in the trace.
    pub day: usize,
}

/// A query trace loaded from disk, bucketed into days.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryTrace {
    /// Query text per ID, in first-appearance order.
    queries: Vec<String>,
    /// Query text → ID.
    index: HashMap<String, ElementId>,
    /// Arrivals per day, as query IDs in arrival order.
    days: Vec<Vec<ElementId>>,
}

impl QueryTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        QueryTrace::default()
    }

    /// Parses an AOL-format TSV from any reader. Lines that cannot be parsed
    /// (including the header) are skipped; the day index is derived from the
    /// date part of `QueryTime` (`YYYY-MM-DD …`), counting distinct dates in
    /// chronological order of first appearance.
    pub fn from_aol_reader<R: Read>(reader: R) -> std::io::Result<Self> {
        let mut trace = QueryTrace::new();
        let mut date_index: HashMap<String, usize> = HashMap::new();
        let mut dates_seen: Vec<String> = Vec::new();
        let buffered = BufReader::new(reader);
        let mut records: Vec<(usize, String)> = Vec::new();
        for line in buffered.lines() {
            let line = line?;
            let mut fields = line.split('\t');
            let _anon_id = match fields.next() {
                Some(f) if !f.is_empty() && f != "AnonID" => f,
                _ => continue,
            };
            let query = match fields.next() {
                Some(q) if !q.trim().is_empty() => q.trim().to_lowercase(),
                _ => continue,
            };
            let date = match fields.next() {
                Some(t) if t.len() >= 10 => t[..10].to_owned(),
                _ => continue,
            };
            let day = *date_index.entry(date.clone()).or_insert_with(|| {
                dates_seen.push(date);
                dates_seen.len() - 1
            });
            records.push((day, query));
        }
        // Re-map day indices so they follow chronological (string) order of
        // the dates rather than first-appearance order.
        let mut sorted_dates = dates_seen.clone();
        sorted_dates.sort();
        let chronological: HashMap<&str, usize> = sorted_dates
            .iter()
            .enumerate()
            .map(|(i, d)| (d.as_str(), i))
            .collect();
        let remap: Vec<usize> = dates_seen
            .iter()
            .map(|d| chronological[d.as_str()])
            .collect();
        for (day, query) in records {
            trace.push(TraceRecord {
                query,
                day: remap[day],
            });
        }
        Ok(trace)
    }

    /// Loads an AOL-format TSV file from disk.
    pub fn load_aol_tsv(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        Self::from_aol_reader(file)
    }

    /// Appends one arrival.
    pub fn push(&mut self, record: TraceRecord) {
        let id = match self.index.get(&record.query) {
            Some(&id) => id,
            None => {
                let id = ElementId(self.queries.len() as u64);
                self.index.insert(record.query.clone(), id);
                self.queries.push(record.query);
                id
            }
        };
        if record.day >= self.days.len() {
            self.days.resize(record.day + 1, Vec::new());
        }
        self.days[record.day].push(id);
    }

    /// Number of distinct queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of days covered.
    pub fn days(&self) -> usize {
        self.days.len()
    }

    /// Total number of arrivals across all days.
    pub fn total_arrivals(&self) -> usize {
        self.days.iter().map(Vec::len).sum()
    }

    /// The text of a query ID.
    pub fn query_text(&self, id: ElementId) -> Option<&str> {
        self.queries.get(id.raw() as usize).map(String::as_str)
    }

    /// The ID of a query text, if it appears in the trace.
    pub fn query_id(&self, text: &str) -> Option<ElementId> {
        self.index.get(&text.to_lowercase()).copied()
    }

    /// The arrival stream of one day (IDs only; attach text features with
    /// `opthash-ml::TextFeaturizer` where needed).
    pub fn day_stream(&self, day: usize) -> Stream {
        assert!(day < self.days.len(), "day {day} out of range");
        self.days[day]
            .iter()
            .map(|&id| StreamElement::without_features(id))
            .collect()
    }

    /// Exact per-query counts of one day.
    pub fn day_counts(&self, day: usize) -> FrequencyVector {
        FrequencyVector::from_counts(self.days[day].iter().map(|&id| (id, 1u64)))
    }

    /// Exact counts aggregated over days `0..=day`.
    pub fn cumulative_counts(&self, day: usize) -> FrequencyVector {
        let mut total = FrequencyVector::new();
        for d in 0..=day.min(self.days.len().saturating_sub(1)) {
            total.merge(&self.day_counts(d));
        }
        total
    }

    /// Day-0 `(id, text, count)` tuples sorted by decreasing count — the
    /// observed prefix for the learned approaches.
    pub fn first_day_counts(&self) -> Vec<(ElementId, String, u64)> {
        if self.days.is_empty() {
            return Vec::new();
        }
        let counts = self.day_counts(0);
        let mut pairs: Vec<(ElementId, String, u64)> = counts
            .iter()
            .map(|(id, c)| (id, self.queries[id.raw() as usize].clone(), c))
            .collect();
        pairs.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n\
142\tgoogle\t2006-03-01 07:17:12\t1\thttp://www.google.com\n\
142\tgoogle maps\t2006-03-01 08:01:03\t\t\n\
999\tGoogle\t2006-03-02 10:00:00\t\t\n\
999\tweather\t2006-03-02 11:30:00\t2\thttp://www.weather.com\n\
777\tgoogle\t2006-03-01 22:10:00\t\t\n\
777\t \t2006-03-03 09:00:00\t\t\n\
bad line without tabs\n";

    #[test]
    fn parses_aol_format_and_buckets_by_day() {
        let trace = QueryTrace::from_aol_reader(SAMPLE.as_bytes()).unwrap();
        assert_eq!(trace.days(), 2); // 2006-03-01 and 2006-03-02 (03-03 line had an empty query)
        assert_eq!(trace.num_queries(), 3); // google, google maps, weather
        assert_eq!(trace.total_arrivals(), 5);
        let day0 = trace.day_counts(0);
        let google = trace.query_id("google").unwrap();
        assert_eq!(day0.frequency(google), 2);
        let day1 = trace.day_counts(1);
        assert_eq!(day1.frequency(google), 1); // "Google" normalized to lowercase
    }

    #[test]
    fn header_and_malformed_lines_are_skipped() {
        let trace = QueryTrace::from_aol_reader(SAMPLE.as_bytes()).unwrap();
        assert!(trace.query_id("anonid").is_none());
        assert!(trace.query_id("bad line without tabs").is_none());
    }

    #[test]
    fn cumulative_counts_and_first_day_prefix() {
        let trace = QueryTrace::from_aol_reader(SAMPLE.as_bytes()).unwrap();
        let cumulative = trace.cumulative_counts(1);
        let google = trace.query_id("google").unwrap();
        assert_eq!(cumulative.frequency(google), 3);
        let prefix = trace.first_day_counts();
        assert_eq!(prefix[0].1, "google");
        assert_eq!(prefix[0].2, 2);
    }

    #[test]
    fn day_stream_preserves_arrival_order_and_ids() {
        let trace = QueryTrace::from_aol_reader(SAMPLE.as_bytes()).unwrap();
        let stream = trace.day_stream(0);
        assert_eq!(stream.len(), 3);
        let texts: Vec<&str> = stream
            .iter()
            .map(|e| trace.query_text(e.id).unwrap())
            .collect();
        assert_eq!(texts, vec!["google", "google maps", "google"]);
    }

    #[test]
    fn days_are_ordered_chronologically_even_if_seen_out_of_order() {
        let out_of_order = "1\tfirst\t2006-03-05 01:00:00\t\t\n\
1\tsecond\t2006-03-04 01:00:00\t\t\n";
        let trace = QueryTrace::from_aol_reader(out_of_order.as_bytes()).unwrap();
        assert_eq!(trace.days(), 2);
        // 2006-03-04 must be day 0 even though it appeared second in the file
        let day0 = trace.day_counts(0);
        let second = trace.query_id("second").unwrap();
        assert_eq!(day0.frequency(second), 1);
    }

    #[test]
    fn manual_push_grows_days_as_needed() {
        let mut trace = QueryTrace::new();
        trace.push(TraceRecord {
            query: "a".into(),
            day: 3,
        });
        assert_eq!(trace.days(), 4);
        assert_eq!(trace.day_stream(0).len(), 0);
        assert_eq!(trace.day_stream(3).len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn day_out_of_range_panics() {
        let trace = QueryTrace::new();
        let _ = trace.day_stream(0);
    }
}
