//! Zipfian sampling over ranked items.
//!
//! The paper's real-world workload (search queries) follows the Zipfian law:
//! the `r`-th most popular item has probability proportional to `1/r^s`.
//! [`ZipfSampler`] draws ranks from that law in `O(log n)` per sample using a
//! precomputed cumulative table, which is fast enough for the multi-million
//! arrival streams the experiments replay.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A sampler over ranks `0..n` with `P(rank = r) ∝ 1/(r+1)^s`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
    exponent: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `s`.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(exponent >= 0.0, "exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        ZipfSampler {
            cumulative,
            exponent,
        }
    }

    /// Number of ranks.
    #[inline]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` if the sampler has no ranks (never: `new` rejects 0).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The exponent `s`.
    #[inline]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of drawing rank `r`.
    pub fn probability(&self, rank: usize) -> f64 {
        let total = *self.cumulative.last().unwrap();
        let weight = 1.0 / ((rank + 1) as f64).powf(self.exponent);
        weight / total
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().unwrap();
        let u: f64 = rng.gen_range(0.0..total);
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.len() - 1)
    }

    /// Expected number of occurrences of rank `r` in a stream of
    /// `num_arrivals` samples.
    pub fn expected_count(&self, rank: usize, num_arrivals: usize) -> f64 {
        self.probability(rank) * num_arrivals as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one_and_decrease_with_rank() {
        let z = ZipfSampler::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..100 {
            assert!(z.probability(r) <= z.probability(r - 1));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_frequencies_match_probabilities() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Check the head ranks are within 10% of expectation.
        for r in 0..5 {
            let expected = z.expected_count(r, n);
            let observed = counts[r] as f64;
            let rel = (observed - expected).abs() / expected;
            assert!(
                rel < 0.1,
                "rank {r}: observed {observed}, expected {expected}"
            );
        }
        // Rank 0 should be roughly twice as frequent as rank 1 for s = 1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn samples_cover_valid_range_only() {
        let z = ZipfSampler::new(7, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
        assert_eq!(z.len(), 7);
        assert!(!z.is_empty());
        assert_eq!(z.exponent(), 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
