//! Synthetic multi-day search-query log (substitute for the AOL dataset of
//! Section 7).
//!
//! The real AOL log (21M queries, 3.8M unique, 90 days) is not
//! redistributable, so this module generates a query log with the three
//! properties the paper's evaluation actually depends on:
//!
//! 1. **Zipfian rank–frequency law** — query popularity follows
//!    `P(rank r) ∝ 1/r^s`, which reproduces the frequency scale the paper
//!    quotes (rank 1 ≫ rank 10 ≫ rank 100 …).
//! 2. **Day-to-day persistence** — each day is an independent sample from the
//!    same popularity law, so popular queries recur every day, exactly the
//!    property that makes a prefix-learned hashing scheme useful.
//! 3. **Text features predictive of popularity** — popular queries are short
//!    navigational queries (single brand words, `www.x.com` forms), rare
//!    queries are long multi-word phrases, so the bag-of-words and
//!    character-count features of `opthash-ml::features` carry signal, as the
//!    paper reports ("www", "com", "google" and the count features dominate).

use crate::zipf::ZipfSampler;
use opthash_stream::{ElementId, FrequencyVector, Stream, StreamElement};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic query-log generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryLogConfig {
    /// Number of unique queries in the universe.
    pub num_queries: usize,
    /// Number of days the log spans (the paper's AOL log has 90).
    pub days: usize,
    /// Number of query arrivals per day.
    pub arrivals_per_day: usize,
    /// Zipf exponent of the popularity law (≈ 1 for web queries).
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryLogConfig {
    fn default() -> Self {
        QueryLogConfig {
            num_queries: 20_000,
            days: 90,
            arrivals_per_day: 20_000,
            zipf_exponent: 1.0,
            seed: 0,
        }
    }
}

impl QueryLogConfig {
    /// A small configuration for fast tests and examples.
    pub fn small() -> Self {
        QueryLogConfig {
            num_queries: 2_000,
            days: 10,
            arrivals_per_day: 2_000,
            ..QueryLogConfig::default()
        }
    }
}

/// Brand-like words that dominate popular navigational queries.
const BRANDS: &[&str] = &[
    "google",
    "yahoo",
    "ebay",
    "mapquest",
    "myspace",
    "amazon",
    "weather",
    "dictionary",
    "bank",
    "craigslist",
    "hotmail",
    "msn",
    "aol",
    "walmart",
    "target",
    "irs",
    "webmd",
    "espn",
    "lyrics",
    "wikipedia",
];

/// Filler vocabulary used to build long-tail phrase queries.
const TAIL_WORDS: &[&str] = &[
    "free",
    "online",
    "cheap",
    "best",
    "reviews",
    "pictures",
    "how",
    "to",
    "make",
    "home",
    "recipes",
    "casino",
    "hotel",
    "flights",
    "jobs",
    "school",
    "county",
    "city",
    "music",
    "movie",
    "download",
    "county",
    "sale",
    "used",
    "cars",
    "insurance",
    "estate",
    "rental",
    "coupons",
    "games",
    "kids",
    "dog",
    "cat",
    "symptoms",
    "treatment",
    "history",
    "phone",
    "number",
    "address",
    "store",
    "hours",
    "near",
    "me",
    "florida",
    "texas",
    "california",
    "new",
    "york",
    "sharon",
    "stone",
];

/// A fully materialized synthetic query log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryLogDataset {
    config: QueryLogConfig,
    /// Query text per ID; the ID equals the query's popularity rank − 1.
    queries: Vec<String>,
    zipf: ZipfSampler,
}

impl QueryLogDataset {
    /// Generates the query universe.
    pub fn generate(config: QueryLogConfig) -> Self {
        assert!(config.num_queries > 0, "need at least one query");
        assert!(config.days > 0, "need at least one day");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut queries = Vec::with_capacity(config.num_queries);
        for rank in 0..config.num_queries {
            queries.push(Self::make_query_text(rank, &mut rng));
        }
        let zipf = ZipfSampler::new(config.num_queries, config.zipf_exponent);
        QueryLogDataset {
            config,
            queries,
            zipf,
        }
    }

    /// Builds query text whose shape correlates with popularity rank.
    fn make_query_text(rank: usize, rng: &mut StdRng) -> String {
        let brand = BRANDS[rank % BRANDS.len()];
        if rank < 40 {
            // Very popular: bare brand or its navigational form.
            match rank % 3 {
                0 => brand.to_owned(),
                1 => format!("www.{brand}.com"),
                _ => format!("{brand}.com"),
            }
        } else if rank < 400 {
            // Popular: brand plus one qualifier, chosen deterministically from
            // the rank so every query text in this band is distinct.
            let word = TAIL_WORDS[(rank / BRANDS.len()) % TAIL_WORDS.len()];
            if rank % 5 == 0 {
                format!("www.{brand}{rank}.com")
            } else {
                format!("{brand} {word}")
            }
        } else {
            // Long tail: multi-word phrase, occasionally with a unique token
            // so every query string is distinct.
            let num_words = 2 + (rank % 4);
            let mut words: Vec<String> = (0..num_words)
                .map(|_| TAIL_WORDS[rng.gen_range(0..TAIL_WORDS.len())].to_owned())
                .collect();
            words.push(format!("q{rank}"));
            words.join(" ")
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &QueryLogConfig {
        &self.config
    }

    /// Number of unique queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// The text of a query ID (IDs are popularity ranks, 0 = most popular).
    pub fn query_text(&self, id: ElementId) -> Option<&str> {
        self.queries.get(id.raw() as usize).map(String::as_str)
    }

    /// All query texts, indexed by ID.
    pub fn query_texts(&self) -> &[String] {
        &self.queries
    }

    /// Probability of a single arrival being query `id`.
    pub fn arrival_probability(&self, id: ElementId) -> f64 {
        self.zipf.probability(id.raw() as usize)
    }

    /// Generates the stream of arrivals of one day (`day` is 0-based).
    /// Elements carry no features — attach them with
    /// `opthash-ml::TextFeaturizer` where needed.
    pub fn day_stream(&self, day: usize) -> Stream {
        assert!(day < self.config.days, "day {day} out of range");
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(day as u64 + 1),
        );
        (0..self.config.arrivals_per_day)
            .map(|_| {
                let rank = self.zipf.sample(&mut rng);
                StreamElement::without_features(ElementId(rank as u64))
            })
            .collect()
    }

    /// Exact per-query counts of one day.
    pub fn day_counts(&self, day: usize) -> FrequencyVector {
        FrequencyVector::from_stream(&self.day_stream(day))
    }

    /// Exact per-query counts aggregated over days `0..=day` — the ground
    /// truth `f^t` the paper evaluates against after day `t`.
    pub fn cumulative_counts(&self, day: usize) -> FrequencyVector {
        let mut total = FrequencyVector::new();
        for d in 0..=day.min(self.config.days - 1) {
            total.merge(&self.day_counts(d));
        }
        total
    }

    /// The set of day-0 `(query text, count)` pairs — the observed prefix the
    /// learned approaches train on (Section 7.3 uses the first day).
    pub fn first_day_counts(&self) -> Vec<(ElementId, String, u64)> {
        let counts = self.day_counts(0);
        let mut pairs: Vec<(ElementId, String, u64)> = counts
            .iter()
            .map(|(id, c)| (id, self.queries[id.raw() as usize].clone(), c))
            .collect();
        pairs.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        pairs
    }

    /// IDs of the overall top-`k` most popular queries (the ideal
    /// heavy-hitter oracle the `heavy-hitter` baseline is granted).
    pub fn top_k_ids(&self, k: usize) -> Vec<ElementId> {
        (0..k.min(self.num_queries()))
            .map(|r| ElementId(r as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> QueryLogDataset {
        QueryLogDataset::generate(QueryLogConfig {
            num_queries: 500,
            days: 5,
            arrivals_per_day: 5_000,
            zipf_exponent: 1.0,
            seed: 1,
        })
    }

    #[test]
    fn universe_has_requested_size_and_unique_text() {
        let data = tiny();
        assert_eq!(data.num_queries(), 500);
        let mut texts: Vec<&str> = data.query_texts().iter().map(String::as_str).collect();
        texts.sort_unstable();
        texts.dedup();
        // Popular navigational queries are distinct by construction; the long
        // tail carries a unique token. Some mid-rank queries may collide, but
        // the overwhelming majority must be distinct.
        assert!(
            texts.len() > 480,
            "too many duplicate query texts: {}",
            texts.len()
        );
    }

    #[test]
    fn popular_queries_are_short_and_navigational() {
        let data = tiny();
        let head = data.query_text(ElementId(0)).unwrap();
        assert!(head.split_whitespace().count() <= 1);
        let tail = data.query_text(ElementId(499)).unwrap();
        assert!(tail.split_whitespace().count() >= 3);
        // at least one of the head queries has the www/.com shape
        let navigational = (0..40)
            .filter_map(|r| data.query_text(ElementId(r)))
            .filter(|t| t.contains(".com"))
            .count();
        assert!(navigational > 10);
    }

    #[test]
    fn day_streams_follow_the_zipf_law() {
        let data = tiny();
        let counts = data.day_counts(0);
        let f0 = counts.frequency(ElementId(0)) as f64;
        let f9 = counts.frequency(ElementId(9)) as f64;
        let f99 = counts.frequency(ElementId(99)) as f64;
        assert!(f0 > f9 && f9 > f99, "head should dominate: {f0} {f9} {f99}");
        // rank 1 vs rank 10 should differ by roughly 10x for s = 1
        let ratio = f0 / f9.max(1.0);
        assert!((4.0..25.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn popular_queries_persist_across_days() {
        let data = tiny();
        let d0 = data.day_counts(0);
        let d3 = data.day_counts(3);
        for rank in 0..10u64 {
            assert!(d0.frequency(ElementId(rank)) > 0);
            assert!(d3.frequency(ElementId(rank)) > 0);
        }
    }

    #[test]
    fn day_streams_are_deterministic_but_differ_across_days() {
        let data = tiny();
        let a = data.day_stream(1);
        let b = data.day_stream(1);
        let ids_a: Vec<u64> = a.iter().map(|e| e.id.raw()).collect();
        let ids_b: Vec<u64> = b.iter().map(|e| e.id.raw()).collect();
        assert_eq!(ids_a, ids_b);
        let c = data.day_stream(2);
        let ids_c: Vec<u64> = c.iter().map(|e| e.id.raw()).collect();
        assert_ne!(ids_a, ids_c);
    }

    #[test]
    fn cumulative_counts_grow_monotonically() {
        let data = tiny();
        let day0 = data.cumulative_counts(0);
        let day4 = data.cumulative_counts(4);
        assert!(day4.total() > day0.total());
        assert_eq!(day4.total(), 5 * 5_000);
        for (id, c) in day0.iter() {
            assert!(day4.frequency(id) >= c);
        }
    }

    #[test]
    fn first_day_counts_are_sorted_by_frequency() {
        let data = tiny();
        let pairs = data.first_day_counts();
        assert!(!pairs.is_empty());
        for w in pairs.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        // most frequent day-0 query should be one of the global head queries
        assert!(pairs[0].0.raw() < 10);
    }

    #[test]
    fn top_k_ids_are_the_first_ranks() {
        let data = tiny();
        let top = data.top_k_ids(3);
        assert_eq!(top, vec![ElementId(0), ElementId(1), ElementId(2)]);
        assert_eq!(data.top_k_ids(10_000).len(), 500);
    }

    #[test]
    fn arrival_probabilities_decrease_with_rank() {
        let data = tiny();
        assert!(data.arrival_probability(ElementId(0)) > data.arrival_probability(ElementId(1)));
        assert!(data.arrival_probability(ElementId(10)) > data.arrival_probability(ElementId(400)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn day_out_of_range_panics() {
        let data = tiny();
        let _ = data.day_stream(99);
    }
}
