//! Mixed multi-tenant workloads for registry and serving experiments.
//!
//! A serving machine does not host one stream: it hosts a fleet of tenants
//! with different element distributions and wildly different traffic
//! volumes. [`MixedTenantWorkload`] models that by combining the
//! repository's three workload families — network-telemetry-style heavy
//! Zipf streams, search-query-style moderate Zipf streams ([`crate::zipf`],
//! Section 7's rank–frequency law), and the paper's group-structured
//! synthetic streams ([`crate::groups`], Section 6.1) — and skewing the
//! *traffic across tenants* by its own Zipf law, so a few tenants are hot
//! and the long tail is cold. That hot/cold mix is exactly what a
//! memory-budget governor needs to be exercised against.
//!
//! Everything is deterministic given the seed.

use crate::groups::{GroupConfig, GroupDataset};
use crate::zipf::ZipfSampler;
use opthash_stream::StreamElement;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The workload family a tenant belongs to. Assigned round-robin by tenant
/// index, so every class is represented at every traffic temperature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TenantClass {
    /// Network-telemetry-style stream: heavy Zipf (`s = 1.3`), a few flows
    /// dominate.
    Telemetry,
    /// Search-query-style stream: classic Zipf (`s = 1.0`), matching the
    /// query-log calibration of Section 7.
    Search,
    /// Group-structured stream from the paper's Section 6.1 generator:
    /// exponentially growing groups, group arrival probability `∝ 1/g`.
    Groups,
}

impl TenantClass {
    /// All classes, in round-robin assignment order.
    pub const ALL: [TenantClass; 3] = [
        TenantClass::Telemetry,
        TenantClass::Search,
        TenantClass::Groups,
    ];

    /// Short class name used in tenant names and reports.
    pub fn name(self) -> &'static str {
        match self {
            TenantClass::Telemetry => "telemetry",
            TenantClass::Search => "search",
            TenantClass::Groups => "groups",
        }
    }
}

/// Configuration of a [`MixedTenantWorkload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedTenantConfig {
    /// Number of tenants in the fleet.
    pub tenants: usize,
    /// Zipf exponent of the traffic split *across* tenants (higher = fewer
    /// hot tenants carrying more of the stream).
    pub tenant_exponent: f64,
    /// Element universe per Zipfian tenant.
    pub universe_per_tenant: usize,
    /// Groups per group-structured tenant (universe `8·(2^G − 1)`).
    pub groups_per_tenant: usize,
    /// Base seed; every derived sampler and stream reuses it.
    pub seed: u64,
}

impl Default for MixedTenantConfig {
    fn default() -> Self {
        MixedTenantConfig {
            tenants: 100,
            tenant_exponent: 1.2,
            universe_per_tenant: 10_000,
            groups_per_tenant: 4,
            seed: 42,
        }
    }
}

impl MixedTenantConfig {
    /// A fleet of `tenants` tenants with the remaining defaults.
    pub fn with_tenants(tenants: usize) -> Self {
        MixedTenantConfig {
            tenants,
            ..MixedTenantConfig::default()
        }
    }
}

/// One routed arrival: which tenant it belongs to and the element itself.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantArrival {
    /// Tenant index in `0..config.tenants`.
    pub tenant: usize,
    /// The arriving element (IDs are scoped per tenant).
    pub element: StreamElement,
}

/// A deterministic generator of mixed multi-tenant traffic.
pub struct MixedTenantWorkload {
    config: MixedTenantConfig,
    tenant_sampler: ZipfSampler,
    telemetry: ZipfSampler,
    search: ZipfSampler,
    /// Shared pool of group-structured arrivals; group-class tenants walk
    /// it at per-tenant offsets, so each sees the same law without paying
    /// for a dataset per tenant.
    group_pool: Vec<u64>,
}

impl MixedTenantWorkload {
    /// Size of the shared group-arrival pool.
    const GROUP_POOL: usize = 1 << 15;

    /// Builds the workload's samplers.
    pub fn new(config: MixedTenantConfig) -> Self {
        assert!(config.tenants > 0, "need at least one tenant");
        assert!(
            config.universe_per_tenant > 0,
            "need a non-empty per-tenant universe"
        );
        let dataset = GroupDataset::generate(GroupConfig::with_groups(config.groups_per_tenant));
        let group_pool = dataset
            .generate_stream(Self::GROUP_POOL, config.seed ^ 0x6702)
            .as_slice()
            .iter()
            .map(|element| element.id.raw())
            .collect();
        MixedTenantWorkload {
            tenant_sampler: ZipfSampler::new(config.tenants, config.tenant_exponent),
            telemetry: ZipfSampler::new(config.universe_per_tenant, 1.3),
            search: ZipfSampler::new(config.universe_per_tenant, 1.0),
            group_pool,
            config,
        }
    }

    /// The workload configuration.
    pub fn config(&self) -> &MixedTenantConfig {
        &self.config
    }

    /// The class of tenant `index` (round-robin).
    pub fn class_of(&self, index: usize) -> TenantClass {
        TenantClass::ALL[index % TenantClass::ALL.len()]
    }

    /// Canonical name of tenant `index`, e.g. `telemetry-0003`.
    pub fn tenant_name(&self, index: usize) -> String {
        format!("{}-{index:04}", self.class_of(index).name())
    }

    /// Expected fraction of all traffic hitting tenant `index`.
    pub fn tenant_share(&self, index: usize) -> f64 {
        self.tenant_sampler.probability(index)
    }

    /// An iterator over `arrivals` routed arrivals, deterministic in the
    /// config seed: tenant drawn from the cross-tenant Zipf law, element
    /// drawn from the tenant's class distribution.
    pub fn arrivals(&self, arrivals: usize) -> impl Iterator<Item = TenantArrival> + '_ {
        self.arrivals_from(arrivals, self.config.seed)
    }

    /// Like [`MixedTenantWorkload::arrivals`] but drawing from an explicit
    /// stream seed, so tests and continuations can generate independent,
    /// individually reproducible traffic segments from one workload — no
    /// shared RNG state, no `--test-threads=1` required.
    pub fn arrivals_from(
        &self,
        arrivals: usize,
        stream_seed: u64,
    ) -> impl Iterator<Item = TenantArrival> + '_ {
        let mut rng = StdRng::seed_from_u64(stream_seed);
        (0..arrivals).map(move |_| {
            let tenant = self.tenant_sampler.sample(&mut rng);
            let id = match self.class_of(tenant) {
                TenantClass::Telemetry => self.telemetry.sample(&mut rng) as u64,
                TenantClass::Search => self.search.sample(&mut rng) as u64,
                TenantClass::Groups => self.group_pool[rng.gen_range(0..self.group_pool.len())],
            };
            TenantArrival {
                tenant,
                element: StreamElement::without_features(id),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_and_routed() {
        let workload = MixedTenantWorkload::new(MixedTenantConfig {
            tenants: 12,
            ..MixedTenantConfig::default()
        });
        let first: Vec<TenantArrival> = workload.arrivals(2_000).collect();
        let again: Vec<TenantArrival> = workload.arrivals(2_000).collect();
        assert_eq!(first, again, "same seed, same traffic");
        // An explicit stream seed equal to the config seed reproduces the
        // default traffic; a different one produces an independent segment.
        let explicit: Vec<TenantArrival> = workload
            .arrivals_from(2_000, workload.config().seed)
            .collect();
        assert_eq!(first, explicit);
        let segment: Vec<TenantArrival> = workload.arrivals_from(2_000, 12345).collect();
        assert_ne!(first, segment, "different stream seed, different traffic");
        assert!(first.iter().all(|a| a.tenant < 12));
        // All three classes receive traffic.
        for class in TenantClass::ALL {
            assert!(
                first.iter().any(|a| workload.class_of(a.tenant) == class),
                "{} tenants must see arrivals",
                class.name()
            );
        }
    }

    #[test]
    fn traffic_is_skewed_across_tenants() {
        let workload = MixedTenantWorkload::new(MixedTenantConfig {
            tenants: 30,
            tenant_exponent: 1.2,
            ..MixedTenantConfig::default()
        });
        let mut per_tenant = vec![0usize; 30];
        for arrival in workload.arrivals(30_000) {
            per_tenant[arrival.tenant] += 1;
        }
        let hottest = *per_tenant.iter().max().unwrap();
        let coldest = *per_tenant.iter().min().unwrap();
        assert!(
            hottest > coldest.max(1) * 10,
            "Zipf split must create a hot/cold spread (hot {hottest}, cold {coldest})"
        );
        // The expected shares sum to one and are monotone in rank.
        let share_sum: f64 = (0..30).map(|i| workload.tenant_share(i)).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        assert!(workload.tenant_share(0) > workload.tenant_share(29));
    }

    #[test]
    fn names_encode_the_class() {
        let workload = MixedTenantWorkload::new(MixedTenantConfig::with_tenants(6));
        assert_eq!(workload.tenant_name(0), "telemetry-0000");
        assert_eq!(workload.tenant_name(1), "search-0001");
        assert_eq!(workload.tenant_name(2), "groups-0002");
        assert_eq!(workload.class_of(5), TenantClass::Groups);
    }
}
