//! Drifting workloads: rotating Zipf popularity.
//!
//! The paper trains the hashing scheme once on a stream prefix and assumes
//! the arrival distribution is stationary. Production streams are not: the
//! popular set rotates. [`DriftingWorkload`] models that as a piecewise
//! Zipf law — within an epoch arrivals follow a fixed Zipf(`exponent`) over
//! the universe, and at every epoch boundary the rank→element mapping
//! rotates by [`DriftConfig::rotation`] positions, so yesterday's heavy
//! hitters cool down at a controllable rate (`rotation = 0` is the static
//! workload, `rotation = universe` reshuffles completely every epoch).
//!
//! Every epoch draws from its own seed derived from the base seed, so
//! epochs can be generated independently, in any order, from any thread —
//! drift tests stay reproducible without `--test-threads=1`.

use crate::zipf::ZipfSampler;
use opthash_stream::{Stream, StreamElement};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a [`DriftingWorkload`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Element universe size.
    pub universe: usize,
    /// Zipf exponent of the within-epoch popularity law.
    pub exponent: f64,
    /// Arrivals per epoch.
    pub epoch_len: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// How many ranks the popularity mapping rotates at each epoch
    /// boundary; the drift rate. `0` keeps the workload stationary.
    pub rotation: usize,
    /// Base seed; epoch `e` derives its own independent RNG from it.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            universe: 10_000,
            exponent: 1.1,
            epoch_len: 50_000,
            epochs: 4,
            rotation: 2_500,
            seed: 42,
        }
    }
}

impl DriftConfig {
    /// The default workload at a given drift rate.
    pub fn with_rotation(rotation: usize) -> Self {
        DriftConfig {
            rotation,
            ..DriftConfig::default()
        }
    }
}

/// A deterministic generator of rotating-Zipf drifting traffic.
#[derive(Debug, Clone)]
pub struct DriftingWorkload {
    config: DriftConfig,
    sampler: ZipfSampler,
}

impl DriftingWorkload {
    /// Builds the workload's sampler.
    pub fn new(config: DriftConfig) -> Self {
        assert!(config.universe > 0, "need a non-empty universe");
        assert!(config.epoch_len > 0, "need non-empty epochs");
        DriftingWorkload {
            sampler: ZipfSampler::new(config.universe, config.exponent),
            config,
        }
    }

    /// The workload configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// The element holding Zipf rank `rank` during epoch `epoch`.
    pub fn id_at(&self, epoch: usize, rank: usize) -> u64 {
        ((rank + epoch.wrapping_mul(self.config.rotation)) % self.config.universe) as u64
    }

    /// Expected arrival probability of element `id` during `epoch` (the
    /// Zipf probability of the rank it currently holds).
    pub fn probability_at(&self, epoch: usize, id: u64) -> f64 {
        let universe = self.config.universe;
        let shift = (epoch.wrapping_mul(self.config.rotation)) % universe;
        let rank = (id as usize + universe - shift) % universe;
        self.sampler.probability(rank)
    }

    /// The arrivals of one epoch, deterministic in `(seed, epoch)` alone —
    /// independent of which other epochs were generated before.
    pub fn epoch_arrivals(&self, epoch: usize) -> Vec<StreamElement> {
        let mut rng = StdRng::seed_from_u64(self.epoch_seed(epoch));
        (0..self.config.epoch_len)
            .map(|_| {
                let rank = self.sampler.sample(&mut rng);
                StreamElement::without_features(self.id_at(epoch, rank))
            })
            .collect()
    }

    /// The arrivals of one epoch as a [`Stream`] (for training prefixes).
    pub fn epoch_stream(&self, epoch: usize) -> Stream {
        Stream::from_arrivals(self.epoch_arrivals(epoch))
    }

    /// All epochs' arrivals, concatenated in epoch order.
    pub fn arrivals(&self) -> Vec<StreamElement> {
        (0..self.config.epochs)
            .flat_map(|epoch| self.epoch_arrivals(epoch))
            .collect()
    }

    /// The derived RNG seed of epoch `epoch`.
    fn epoch_seed(&self, epoch: usize) -> u64 {
        // SplitMix-style spread so epochs 0, 1, 2… land far apart in seed
        // space even for adjacent base seeds.
        self.config
            .seed
            .wrapping_add((epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn epochs_are_independently_deterministic() {
        let workload = DriftingWorkload::new(DriftConfig {
            epoch_len: 2_000,
            ..DriftConfig::default()
        });
        // Generating epoch 2 alone equals generating it after 0 and 1.
        let alone = workload.epoch_arrivals(2);
        let _ = workload.epoch_arrivals(0);
        let _ = workload.epoch_arrivals(1);
        assert_eq!(alone, workload.epoch_arrivals(2));
        // And a clone produces identical traffic.
        assert_eq!(alone, workload.clone().epoch_arrivals(2));
    }

    #[test]
    fn rotation_moves_the_hot_set() {
        let config = DriftConfig {
            universe: 1_000,
            epoch_len: 20_000,
            epochs: 2,
            rotation: 500,
            exponent: 1.3,
            seed: 7,
        };
        let workload = DriftingWorkload::new(config);
        let counts = |epoch: usize| {
            let mut c: HashMap<u64, usize> = HashMap::new();
            for a in workload.epoch_arrivals(epoch) {
                *c.entry(a.id.raw()).or_default() += 1;
            }
            c
        };
        let first = counts(0);
        let second = counts(1);
        // Rank 0 holds id 0 in epoch 0 and id 500 in epoch 1.
        assert_eq!(workload.id_at(0, 0), 0);
        assert_eq!(workload.id_at(1, 0), 500);
        assert!(first[&0] > second.get(&0).copied().unwrap_or(0) * 2);
        assert!(second[&500] > first.get(&500).copied().unwrap_or(0) * 2);
    }

    #[test]
    fn zero_rotation_is_stationary() {
        let workload = DriftingWorkload::new(DriftConfig {
            universe: 100,
            epoch_len: 1_000,
            epochs: 3,
            rotation: 0,
            ..DriftConfig::default()
        });
        for epoch in 0..3 {
            assert_eq!(workload.id_at(epoch, 17), 17);
            assert_eq!(
                workload.probability_at(epoch, 0),
                workload.probability_at(0, 0)
            );
        }
    }

    #[test]
    fn probability_inverts_the_rotation() {
        let workload = DriftingWorkload::new(DriftConfig {
            universe: 1_000,
            rotation: 300,
            ..DriftConfig::default()
        });
        for epoch in 0..5 {
            for rank in [0usize, 1, 10, 999] {
                let id = workload.id_at(epoch, rank);
                assert_eq!(
                    workload.probability_at(epoch, id),
                    workload.sampler.probability(rank)
                );
            }
        }
    }

    #[test]
    fn arrivals_concatenate_epochs() {
        let workload = DriftingWorkload::new(DriftConfig {
            epoch_len: 100,
            epochs: 3,
            ..DriftConfig::default()
        });
        assert_eq!(workload.arrivals().len(), 300);
        assert_eq!(workload.epoch_stream(0).len(), 100);
    }
}
