//! Typed errors for the ingest engine: every failure mode the engine can
//! surface — overload, a poisoned shard, a zero-weight update, an injected
//! fault — is an explicit [`EngineError`] variant instead of a panic.

use opthash_stream::ElementId;
use std::fmt;

/// Error returned by the fallible [`crate::IngestEngine`] operations.
///
/// The ingest and query paths never panic on runtime conditions: overload
/// under [`crate::BackpressurePolicy::Reject`], a shard whose state was
/// corrupted beyond recovery, and malformed updates all map to a variant
/// here so callers can react (shed load, fail the request, re-route).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A weight-0 update was presented. Zero-weight arrivals are rejected at
    /// the API boundary because a zero count is the engine's *empty slot*
    /// marker: admitting one would be indistinguishable from no arrival at
    /// all and could be silently dropped. Rejections are counted in
    /// [`crate::EngineStats::zero_weight_rejections`].
    ZeroWeight {
        /// ID of the element whose update carried weight 0.
        id: ElementId,
    },
    /// The shard's worker queue is full and the engine is configured with
    /// [`crate::BackpressurePolicy::Reject`]: the arrival was *not* admitted
    /// and is counted in the rejected bucket of the engine's mass ledgers.
    Overloaded {
        /// Shard whose bounded queue was full.
        shard: usize,
        /// Queue capacity (in batches) at the time of rejection.
        queue_capacity: usize,
    },
    /// The shard's state is corrupt beyond what the supervisor can recover
    /// (a panic struck while the shard's snapshot was being replaced, so
    /// the last consistent checkpoint may be half-written). Queries and
    /// flushes fail with this error instead of returning wrong counts.
    ShardPoisoned {
        /// The unrecoverable shard.
        shard: usize,
    },
    /// A programmed failpoint fired with the *error* action (only reachable
    /// with the `failpoints` cargo feature).
    FaultInjected {
        /// Name of the failpoint that fired.
        failpoint: &'static str,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ZeroWeight { id } => {
                write!(f, "zero-weight update for element {id} rejected")
            }
            EngineError::Overloaded {
                shard,
                queue_capacity,
            } => write!(
                f,
                "shard {shard} overloaded: worker queue full ({queue_capacity} batches)"
            ),
            EngineError::ShardPoisoned { shard } => {
                write!(f, "shard {shard} poisoned: state unrecoverable after panic")
            }
            EngineError::FaultInjected { failpoint } => {
                write!(f, "injected fault at failpoint '{failpoint}'")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let overload = EngineError::Overloaded {
            shard: 3,
            queue_capacity: 8,
        };
        assert!(overload.to_string().contains("shard 3"));
        assert!(overload.to_string().contains("8 batches"));
        let zero = EngineError::ZeroWeight { id: ElementId(42) };
        assert!(zero.to_string().contains("e42"));
        let poisoned = EngineError::ShardPoisoned { shard: 1 };
        assert!(poisoned.to_string().contains("unrecoverable"));
    }
}
