//! Online re-training with atomic hot-swap.
//!
//! The paper trains the learned hashing scheme once on a stream prefix and
//! serves it forever; production streams drift. [`Retrainer`] wraps an
//! [`IngestEngine`] over [`opthash::OptHash`] and keeps the scheme current:
//!
//! 1. it maintains a **sliding window** of the last
//!    [`RetrainConfig::window`] arrivals (a ring of IDs plus exact window
//!    counts, so eviction is O(1) per arrival);
//! 2. every [`RetrainConfig::retrain_interval`] arrivals it re-solves the
//!    bucketing on the window prefix via [`opthash::OptHash::retrain`] —
//!    BCD **warm-started** from the incumbent assignment when the solver
//!    config carries `warm_start` — and retrains the classifier on the
//!    refreshed assignment, by default on a background thread so ingest
//!    never stalls behind a solve;
//! 3. it publishes the result as a **versioned [`TrainedScheme`] `Arc`**
//!    and hot-swaps it into the live engine via
//!    [`IngestEngine::swap_backend`]: workers drain their queues, retire
//!    their pre-swap deltas through the fork/merge machinery, and re-fork
//!    from the new scheme — no worker thread is stopped, and
//!    [`crate::EngineStats::unaccounted_mass`] stays 0 across every swap.
//!
//! The new scheme's counters are seeded from the window
//! (`include_prefix_counts`), so post-swap queries answer *recent* traffic
//! — exactly the estimate a drifting workload wants — while the retired
//! scheme (with every count it accumulated) is handed back through
//! [`Retrainer::take_retired`].

use crate::engine::{EngineConfig, EngineStats, IngestEngine};
use crate::error::EngineError;
use opthash::solver::SolverStats;
use opthash::OptHash;
use opthash_stream::{ElementId, StreamElement, StreamPrefix};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configuration of a [`Retrainer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrainConfig {
    /// Sliding-window length in arrivals; the re-trainer's training prefix
    /// is the exact frequency vector of the last `window` arrivals.
    pub window: usize,
    /// Re-train (and hot-swap) every `retrain_interval` arrivals.
    pub retrain_interval: usize,
    /// Skip a scheduled re-train while the window holds fewer distinct
    /// elements than this (a scheme solved on a near-empty window would be
    /// worse than the incumbent).
    pub min_distinct: usize,
    /// Solve on a background thread (`true`, the default) so ingest never
    /// stalls behind training; the swap happens on the next arrival after
    /// the solve completes. `false` trains synchronously inside
    /// [`Retrainer::ingest`] — deterministic, used by tests and benches via
    /// [`Retrainer::retrain_now`].
    pub background: bool,
    /// Route re-solves through the racing solver portfolio
    /// ([`opthash::OptHash::retrain_racing`]: parallel warm-started BCD
    /// restarts raced against the exact DP and brute force) instead of the
    /// sequential solver. On by default — re-training latency is the whole
    /// reason the background thread exists; disable for bit-reproducible
    /// solves on λ = 1 workloads, where the DP racer can decide races by
    /// timing.
    pub portfolio: bool,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        RetrainConfig {
            window: 32_768,
            retrain_interval: 16_384,
            min_distinct: 64,
            background: true,
            portfolio: true,
        }
    }
}

/// A published scheme version: the trained estimator plus its monotone
/// version number. Shared by `Arc` so readers can hold a scheme while the
/// re-trainer publishes the next one.
#[derive(Debug, Clone)]
pub struct TrainedScheme {
    /// Monotone version; 0 is the scheme the re-trainer started with.
    pub version: u64,
    /// The trained estimator, counters seeded from the training window at
    /// publish time.
    pub estimator: OptHash,
}

impl TrainedScheme {
    /// The solver statistics of this scheme's solve (iterations, restarts,
    /// cost trajectory, warm-start provenance).
    pub fn solver_stats(&self) -> &SolverStats {
        &self.estimator.solution().stats
    }
}

/// Counters describing the re-trainer's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetrainStats {
    /// Completed re-trains (successful solves, whether or not yet swapped).
    pub retrains: u64,
    /// Completed hot-swaps into the engine.
    pub swaps: u64,
    /// Scheduled re-trains skipped because the window held fewer than
    /// [`RetrainConfig::min_distinct`] distinct elements.
    pub skipped: u64,
    /// Background trainings that panicked; the incumbent scheme stayed
    /// live.
    pub failed: u64,
}

/// A live ingest engine that re-trains its [`OptHash`] scheme online.
pub struct Retrainer {
    engine: IngestEngine<OptHash>,
    config: RetrainConfig,
    /// Ring of the last `window` arrival IDs, oldest first.
    ring: VecDeque<ElementId>,
    /// Exact window counts plus each ID's first-seen element (whose
    /// features represent it in the training prefix).
    window_counts: HashMap<ElementId, (u64, StreamElement)>,
    since_retrain: usize,
    scheme: Arc<TrainedScheme>,
    /// In-flight background training, if any.
    pending: Option<JoinHandle<OptHash>>,
    /// Retired backends from completed swaps, oldest first, until the
    /// caller collects them.
    retired: Vec<OptHash>,
    stats: RetrainStats,
}

impl Retrainer {
    /// Wraps `initial` (the scheme trained on the bootstrap prefix, version
    /// 0) in an ingest engine and the re-training loop.
    pub fn new(initial: OptHash, engine: EngineConfig, config: RetrainConfig) -> Self {
        assert!(config.window > 0, "need a non-empty training window");
        assert!(
            config.retrain_interval > 0,
            "need a positive retrain interval"
        );
        let scheme = Arc::new(TrainedScheme {
            version: 0,
            estimator: initial.clone(),
        });
        Retrainer {
            engine: IngestEngine::new(initial, engine),
            config,
            ring: VecDeque::with_capacity(config.window),
            window_counts: HashMap::new(),
            since_retrain: 0,
            scheme,
            pending: None,
            retired: Vec::new(),
            stats: RetrainStats::default(),
        }
    }

    /// The re-trainer's configuration.
    pub fn config(&self) -> &RetrainConfig {
        &self.config
    }

    /// The currently published scheme (shared; cheap to clone).
    pub fn scheme(&self) -> Arc<TrainedScheme> {
        Arc::clone(&self.scheme)
    }

    /// Version of the scheme currently live in the engine.
    pub fn scheme_version(&self) -> u64 {
        self.scheme.version
    }

    /// Re-training activity counters.
    pub fn retrain_stats(&self) -> RetrainStats {
        self.stats
    }

    /// The wrapped engine's conservation/robustness counters.
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Distinct elements currently in the sliding window.
    pub fn window_distinct(&self) -> usize {
        self.window_counts.len()
    }

    /// Arrivals currently in the sliding window (≤ the configured length).
    pub fn window_len(&self) -> usize {
        self.ring.len()
    }

    /// Retired backends from completed swaps (each holds every count it
    /// accumulated while live), oldest first.
    pub fn take_retired(&mut self) -> Vec<OptHash> {
        std::mem::take(&mut self.retired)
    }

    /// Ingests one arrival: updates the engine, the sliding window, and the
    /// re-training schedule (collecting a finished background solve and
    /// hot-swapping it when one is ready).
    pub fn ingest(&mut self, element: &StreamElement) -> Result<(), EngineError> {
        self.engine.ingest(element)?;
        self.observe(element);
        self.since_retrain += 1;
        self.poll()?;
        if self.since_retrain >= self.config.retrain_interval && self.pending.is_none() {
            self.since_retrain = 0;
            if self.window_counts.len() < self.config.min_distinct {
                self.stats.skipped += 1;
            } else if self.config.background {
                let incumbent = self.scheme.estimator.clone();
                let prefix = self.window_prefix();
                let racing = self.config.portfolio;
                self.pending = Some(std::thread::spawn(move || {
                    if racing {
                        incumbent.retrain_racing(&prefix)
                    } else {
                        incumbent.retrain(&prefix)
                    }
                }));
            } else {
                self.train_and_swap()?;
            }
        }
        Ok(())
    }

    /// Ingests a slice of arrivals in order.
    pub fn ingest_slice(&mut self, elements: &[StreamElement]) -> Result<(), EngineError> {
        for element in elements {
            self.ingest(element)?;
        }
        Ok(())
    }

    /// Collects a finished background training (without blocking) and
    /// hot-swaps the new scheme in. Called automatically by
    /// [`Retrainer::ingest`]; call directly to drain a solve while idle.
    pub fn poll(&mut self) -> Result<(), EngineError> {
        if self.pending.as_ref().is_some_and(|h| h.is_finished()) {
            let handle = self.pending.take().expect("checked above");
            match handle.join() {
                Ok(estimator) => {
                    self.stats.retrains += 1;
                    self.publish(estimator)?;
                }
                Err(_) => self.stats.failed += 1,
            }
        }
        Ok(())
    }

    /// Forces a synchronous re-train on the current window and hot-swaps
    /// the result, regardless of the schedule. Any in-flight background
    /// solve is awaited and published first. Returns `false` (without
    /// training) if the window holds fewer than
    /// [`RetrainConfig::min_distinct`] distinct elements.
    pub fn retrain_now(&mut self) -> Result<bool, EngineError> {
        if let Some(handle) = self.pending.take() {
            match handle.join() {
                Ok(estimator) => {
                    self.stats.retrains += 1;
                    self.publish(estimator)?;
                }
                Err(_) => self.stats.failed += 1,
            }
        }
        if self.window_counts.len() < self.config.min_distinct {
            self.stats.skipped += 1;
            return Ok(false);
        }
        self.since_retrain = 0;
        self.train_and_swap()?;
        Ok(true)
    }

    /// Queries the live engine (flushing so the answer covers every
    /// admitted arrival).
    pub fn query(&mut self, element: &StreamElement) -> Result<f64, EngineError> {
        self.engine.query_synced(element)
    }

    /// Awaits any in-flight solve, publishes it, and finishes the engine,
    /// returning the final live estimator.
    pub fn finish(mut self) -> Result<OptHash, EngineError> {
        if let Some(handle) = self.pending.take() {
            match handle.join() {
                Ok(estimator) => {
                    self.stats.retrains += 1;
                    self.publish(estimator)?;
                }
                Err(_) => self.stats.failed += 1,
            }
        }
        self.engine.finish()
    }

    /// Slides the window over one arrival.
    fn observe(&mut self, element: &StreamElement) {
        if self.ring.len() == self.config.window {
            if let Some(evicted) = self.ring.pop_front() {
                if let Some(entry) = self.window_counts.get_mut(&evicted) {
                    entry.0 -= 1;
                    if entry.0 == 0 {
                        self.window_counts.remove(&evicted);
                    }
                }
            }
        }
        self.ring.push_back(element.id);
        self.window_counts
            .entry(element.id)
            .and_modify(|entry| entry.0 += 1)
            .or_insert_with(|| (1, element.clone()));
    }

    /// The window's exact frequency vector as a training prefix.
    fn window_prefix(&self) -> StreamPrefix {
        StreamPrefix::from_counts(
            self.window_counts
                .values()
                .map(|(count, element)| (element.clone(), *count))
                .collect(),
        )
    }

    fn train_and_swap(&mut self) -> Result<(), EngineError> {
        let prefix = self.window_prefix();
        let estimator = if self.config.portfolio {
            self.scheme.estimator.retrain_racing(&prefix)
        } else {
            self.scheme.estimator.retrain(&prefix)
        };
        self.stats.retrains += 1;
        self.publish(estimator)
    }

    /// Publishes a freshly trained estimator as the next scheme version and
    /// hot-swaps it into the engine.
    fn publish(&mut self, estimator: OptHash) -> Result<(), EngineError> {
        let scheme = Arc::new(TrainedScheme {
            version: self.scheme.version + 1,
            estimator,
        });
        let retired = self.engine.swap_backend(scheme.estimator.clone())?;
        self.retired.push(retired);
        self.scheme = scheme;
        self.stats.swaps += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::IngestMode;
    use opthash::{OptHashBuilder, SolverKind};
    use opthash_stream::Stream;

    fn initial_scheme() -> OptHash {
        let arrivals: Vec<StreamElement> = (0..200u64)
            .map(|i| StreamElement::without_features(i % 8))
            .collect();
        OptHashBuilder::new(4)
            .lambda(1.0)
            .solver(SolverKind::Bcd(
                opthash::solver::BcdConfig::default().with_warm_start(),
            ))
            .train(&StreamPrefix::from_stream(Stream::from_arrivals(arrivals)))
    }

    fn drive(mode: IngestMode) {
        let mut retrainer = Retrainer::new(
            initial_scheme(),
            EngineConfig::with_shards(2).mode(mode),
            RetrainConfig {
                window: 512,
                retrain_interval: 256,
                min_distinct: 4,
                background: false,
                portfolio: false,
            },
        );
        // Phase 1: ids 0..8 hot; phase 2: ids 100..108 hot.
        for i in 0..600u64 {
            retrainer
                .ingest(&StreamElement::without_features(i % 8))
                .unwrap();
        }
        let v_after_phase1 = retrainer.scheme_version();
        assert!(v_after_phase1 >= 1, "interval retrains must have fired");
        for i in 0..600u64 {
            retrainer
                .ingest(&StreamElement::without_features(100 + i % 8))
                .unwrap();
        }
        assert!(retrainer.scheme_version() > v_after_phase1);
        let stats = retrainer.engine_stats();
        assert_eq!(stats.unaccounted_mass(), 0, "mass conserved across swaps");
        // The live scheme now stores the drifted hot set.
        let hot = retrainer
            .query(&StreamElement::without_features(100u64))
            .unwrap();
        assert!(hot > 0.0, "drifted hot element must estimate positive");
        let retired = retrainer.take_retired();
        assert_eq!(retired.len() as u64, retrainer.retrain_stats().swaps);
        let final_est = retrainer.finish().unwrap();
        assert!(final_est.stored_elements() > 0);
    }

    #[test]
    fn retrains_and_swaps_in_worker_mode() {
        drive(IngestMode::Workers);
    }

    #[test]
    fn retrains_and_swaps_in_inline_mode() {
        drive(IngestMode::Inline);
    }

    #[test]
    fn background_training_publishes_on_poll() {
        let mut retrainer = Retrainer::new(
            initial_scheme(),
            EngineConfig::with_shards(2),
            RetrainConfig {
                window: 512,
                retrain_interval: 128,
                min_distinct: 4,
                background: true,
                portfolio: false,
            },
        );
        for i in 0..4_000u64 {
            retrainer
                .ingest(&StreamElement::without_features(i % 16))
                .unwrap();
        }
        // Drain any still-pending solve deterministically.
        if retrainer.pending.is_some() {
            retrainer.retrain_now().unwrap();
        }
        assert!(retrainer.scheme_version() >= 1);
        assert_eq!(retrainer.engine_stats().unaccounted_mass(), 0);
        retrainer.finish().unwrap();
    }

    #[test]
    fn small_window_skips_scheduled_retrains() {
        let mut retrainer = Retrainer::new(
            initial_scheme(),
            EngineConfig::with_shards(1),
            RetrainConfig {
                window: 64,
                retrain_interval: 32,
                min_distinct: 1_000,
                background: false,
                portfolio: false,
            },
        );
        for i in 0..200u64 {
            retrainer
                .ingest(&StreamElement::without_features(i % 4))
                .unwrap();
        }
        assert_eq!(retrainer.scheme_version(), 0);
        assert!(retrainer.retrain_stats().skipped > 0);
        assert!(!retrainer.retrain_now().unwrap());
    }

    #[test]
    fn window_slides_and_evicts() {
        let mut retrainer = Retrainer::new(
            initial_scheme(),
            EngineConfig::with_shards(1),
            RetrainConfig {
                window: 8,
                retrain_interval: 1_000_000,
                min_distinct: 1,
                background: false,
                portfolio: false,
            },
        );
        for i in 0..32u64 {
            retrainer
                .ingest(&StreamElement::without_features(i))
                .unwrap();
        }
        assert_eq!(retrainer.window_len(), 8);
        // Only the last 8 distinct IDs survive.
        assert_eq!(retrainer.window_distinct(), 8);
        assert!(retrainer.window_counts.contains_key(&ElementId(31)));
        assert!(!retrainer.window_counts.contains_key(&ElementId(0)));
        retrainer.finish().unwrap();
    }
}
