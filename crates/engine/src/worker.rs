//! Persistent, panic-isolated shard workers.
//!
//! Each shard of a worker-mode [`crate::IngestEngine`] runs one thread that
//! drains the shard's [`ShardChannel`] for as long as the engine lives. The
//! worker owns a private *scratch* backend (always equal to the shard's
//! checkpointed snapshot plus the journaled batches replayed on top) and
//! applies every batch inside [`std::panic::catch_unwind`]:
//!
//! * a panic during batch application corrupts only the scratch state — the
//!   worker discards it, rebuilds from `snapshot ⊕ journal`, and the failed
//!   batch is retried (then quarantined after `max_batch_attempts`
//!   attempts, so a poison pill can't wedge the shard forever);
//! * a panic that escapes the loop kills the thread — the engine's
//!   supervisor detects the death, requeues any inflight batch, spawns a
//!   replacement worker of the next generation, and the replacement rebuilds
//!   the scratch state the same way, replaying the surviving queue;
//! * every `checkpoint_interval` committed batches (and at every sync
//!   barrier) the worker publishes a clone of its scratch state as the new
//!   snapshot, bounding both the journal's memory and the replay a recovery
//!   has to perform.

use crate::backend::SketchBackend;
use crate::fault::{self, FaultEvent, FaultInjector, SharedFaultLog};
use crate::queue::{BatchData, FailDisposition, ShardChannel, WorkerEvent};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Worker-side configuration, copied out of the engine config.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkerConfig {
    pub shard: usize,
    pub max_batch_attempts: u32,
    pub checkpoint_interval: u32,
}

/// The engine's handle to one shard: channel, thread, and restart
/// bookkeeping. Dropping the handle closes the channel and joins the
/// thread, so an engine can never leak workers.
#[derive(Debug)]
pub(crate) struct ShardHandle<B: SketchBackend> {
    pub cell: Arc<ShardChannel<B>>,
    pub thread: Option<JoinHandle<()>>,
    /// Generation of the current worker (0 = the original).
    pub generation: u32,
    /// Ensures `ShardPoisoned` is logged once, not per supervision pass.
    pub poison_logged: bool,
}

impl<B: SketchBackend> ShardHandle<B> {
    /// Closes the channel and joins the worker thread (idempotent).
    pub fn shutdown(&mut self) {
        self.cell.close();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl<B: SketchBackend> Drop for ShardHandle<B> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Applies every update of a batch, without failpoints — used for journal
/// replay, which re-applies batches that already succeeded once. Uses the
/// backend's (possibly row-major) bulk path.
pub(crate) fn apply_batch<B: SketchBackend>(backend: &mut B, batch: &BatchData) {
    backend.ingest_batch(&batch.updates);
}

/// Applies every update of a batch — the first-application path. With the
/// `failpoints` feature the per-update loop consults the `worker::apply`
/// failpoint before each update (so a test can panic mid-batch); without it
/// the batch goes through the backend's bulk path.
#[cfg(feature = "failpoints")]
pub(crate) fn apply_batch_injected<B: SketchBackend>(
    backend: &mut B,
    batch: &BatchData,
    faults: &FaultInjector,
    shard: usize,
) {
    for (element, count) in &batch.updates {
        faults.hit_at("worker::apply", Some(shard));
        backend.ingest(element, *count);
    }
}

/// Failpoint-free build: batch application is exactly the bulk path.
#[cfg(not(feature = "failpoints"))]
pub(crate) fn apply_batch_injected<B: SketchBackend>(
    backend: &mut B,
    batch: &BatchData,
    _faults: &FaultInjector,
    _shard: usize,
) {
    apply_batch(backend, batch);
}

/// Spawns a worker of the given generation for `cell`.
pub(crate) fn spawn_worker<B: SketchBackend + 'static>(
    cell: Arc<ShardChannel<B>>,
    log: SharedFaultLog,
    faults: FaultInjector,
    config: WorkerConfig,
    generation: u32,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("opthash-shard-{}.{generation}", config.shard))
        // Workers keep their state on the heap (scratch backend + batches);
        // a small stack makes spawning cheap enough for short-lived engines.
        .stack_size(256 * 1024)
        .spawn(move || run_worker(cell, log, faults, config))
        .expect("failed to spawn shard worker thread")
}

fn run_worker<B: SketchBackend>(
    cell: Arc<ShardChannel<B>>,
    log: SharedFaultLog,
    faults: FaultInjector,
    config: WorkerConfig,
) {
    let shard = config.shard;
    // Bootstrap (and rebuild, for a replacement worker): scratch state is
    // the last consistent snapshot plus the journal replayed in order; the
    // mass tally rides along so every published snapshot carries the
    // applied mass it accounts for.
    let Some((mut scratch, mut scratch_mass)) = rebuild_scratch(&cell) else {
        return; // shard poisoned: nothing a worker can safely do
    };
    let mut since_checkpoint = 0u32;
    loop {
        faults.hit_at("worker::poll", Some(shard));
        match cell.next_event() {
            WorkerEvent::Shutdown => {
                // Final checkpoint by move: the queue is already drained
                // (`next_event` prefers batches over shutdown), so scratch
                // covers every dispatched batch and no clone is needed.
                cell.publish_exit(scratch, scratch_mass);
                return;
            }
            WorkerEvent::Swap { version, base } => {
                // A panic here (the `worker::swap` failpoint) escapes the
                // loop and kills the worker *before* anything changed: the
                // request is still pending, so the supervisor's replacement
                // worker rebuilds the old scratch and redoes the swap.
                faults.hit_at("worker::swap", Some(shard));
                let fresh = base.fork();
                let retired = std::mem::replace(&mut scratch, fresh);
                cell.complete_swap(
                    version,
                    Arc::new(scratch.clone()),
                    Arc::new(retired),
                    scratch_mass,
                );
                scratch_mass = 0;
                since_checkpoint = 0;
            }
            WorkerEvent::Sync(epoch) => {
                let snapshot = Arc::new(scratch.clone());
                cell.checkpoint(snapshot, scratch_mass, Some(epoch), || {
                    faults.hit_at("worker::checkpoint", Some(shard));
                });
                since_checkpoint = 0;
            }
            WorkerEvent::Batch(batch) => {
                faults.hit_at("worker::batch", Some(shard));
                let applied = catch_unwind(AssertUnwindSafe(|| {
                    apply_batch_injected(&mut scratch, &batch.data, &faults, shard);
                }));
                match applied {
                    Ok(()) => {
                        // A death here (between apply and commit) leaves the
                        // batch inflight: the replacement worker's rebuilt
                        // scratch excludes it and the supervisor requeues it,
                        // so it is applied exactly once either way.
                        faults.hit_at("worker::before_commit", Some(shard));
                        let mass = batch.data.mass;
                        cell.commit(batch);
                        scratch_mass += mass;
                        since_checkpoint += 1;
                        if since_checkpoint >= config.checkpoint_interval {
                            let snapshot = Arc::new(scratch.clone());
                            cell.checkpoint(snapshot, scratch_mass, None, || {
                                faults.hit_at("worker::checkpoint", Some(shard));
                            });
                            since_checkpoint = 0;
                        }
                    }
                    Err(_) => {
                        // The scratch state is suspect (the panic may have
                        // struck mid-update): disposition the batch, then
                        // rebuild scratch from the last consistent state.
                        match cell.fail_inflight(config.max_batch_attempts) {
                            FailDisposition::Requeued { attempt, mass } => fault::record(
                                &log,
                                FaultEvent::BatchPanicked {
                                    shard,
                                    attempt,
                                    mass,
                                },
                            ),
                            FailDisposition::Quarantined { mass, updates } => fault::record(
                                &log,
                                FaultEvent::BatchQuarantined {
                                    shard,
                                    mass,
                                    updates,
                                },
                            ),
                            FailDisposition::Idle => {}
                        }
                        let Some((rebuilt, rebuilt_mass)) = rebuild_scratch(&cell) else {
                            return;
                        };
                        scratch = rebuilt;
                        scratch_mass = rebuilt_mass;
                        since_checkpoint = 0;
                    }
                }
            }
        }
    }
}

fn rebuild_scratch<B: SketchBackend>(cell: &ShardChannel<B>) -> Option<(B, u64)> {
    let (mut scratch, mut mass, journal) = cell.recovery_state()?;
    for batch in &journal {
        apply_batch(&mut scratch, batch);
        mass += batch.mass;
    }
    Some((scratch, mass))
}
