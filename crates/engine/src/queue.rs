//! Bounded per-shard work channels.
//!
//! Each shard of a worker-mode [`crate::IngestEngine`] owns one
//! [`ShardChannel`]: a bounded FIFO of pre-aggregated batches plus the
//! shard's recovery state, all guarded by a single mutex so every state
//! transition the fault-tolerance protocol relies on is atomic:
//!
//! * `queue` — batches dispatched by the engine, not yet started;
//! * `inflight` — the batch the worker is currently applying (popping a
//!   batch and marking it inflight is one critical section, so a batch can
//!   never fall between the queue and the worker when a panic strikes);
//! * `journal` — batches applied since the last checkpoint. The worker's
//!   private scratch state is `snapshot ⊕ journal`; a replacement worker
//!   rebuilds it by cloning `snapshot` and replaying `journal` in order;
//! * `snapshot` — the shard's last *consistent* accumulated delta, replaced
//!   wholesale at each checkpoint (never mutated incrementally, so a panic
//!   outside the swap can never leave it half-written);
//! * `quarantined` — poison-pill batches set aside after exhausting their
//!   application attempts, retained so their mass stays accounted.
//!
//! The engine (single producer) pushes and waits on `progress`; the worker
//! (single consumer) pops and waits on `work`. Mutex poisoning is handled
//! everywhere via [`ShardChannel::lock_always`]: a poisoned lock marks the
//! shard poisoned rather than cascading panics.

use crate::backend::SketchBackend;
use opthash_stream::StreamElement;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// A drained batch: the pre-aggregated `(element, count)` updates of one
/// shard buffer. Immutable once built; shared by `Arc` between the queue,
/// the inflight slot, and the journal, so requeue/replay never copies the
/// update data.
#[derive(Debug)]
pub(crate) struct BatchData {
    /// Pre-aggregated weighted updates, in first-seen order.
    pub updates: Vec<(StreamElement, u64)>,
    /// Total count mass of the batch (sum of the update weights).
    pub mass: u64,
}

/// A batch in the queue or inflight slot, with its application-attempt
/// count (for poison-pill quarantine).
#[derive(Debug, Clone)]
pub(crate) struct QueuedBatch {
    pub data: Arc<BatchData>,
    /// Completed application attempts (0 for a never-tried batch).
    pub attempts: u32,
}

/// Per-shard robustness counters, maintained under the channel lock.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardCounters {
    pub applied_updates: u64,
    pub applied_mass: u64,
    /// Mass sitting in the queue or inflight slot (dispatched, not yet
    /// applied or quarantined).
    pub queued_mass: u64,
    pub quarantined_updates: u64,
    pub quarantined_mass: u64,
    pub batch_failures: u64,
    pub worker_restarts: u64,
}

impl ShardCounters {
    /// Accumulates another shard's counters (for engine-wide stats).
    pub fn absorb(&mut self, other: &ShardCounters) {
        self.applied_updates += other.applied_updates;
        self.applied_mass += other.applied_mass;
        self.queued_mass += other.queued_mass;
        self.quarantined_updates += other.quarantined_updates;
        self.quarantined_mass += other.quarantined_mass;
        self.batch_failures += other.batch_failures;
        self.worker_restarts += other.worker_restarts;
    }
}

/// Everything guarded by the shard mutex.
#[derive(Debug)]
pub(crate) struct ChannelInner<B> {
    pub queue: VecDeque<QueuedBatch>,
    pub inflight: Option<QueuedBatch>,
    pub journal: Vec<Arc<BatchData>>,
    pub snapshot: B,
    pub quarantined: Vec<Arc<BatchData>>,
    pub counters: ShardCounters,
    /// Latest sync barrier requested by the engine.
    pub sync_epoch: u64,
    /// Latest sync barrier the worker has checkpointed for.
    pub acked_epoch: u64,
    /// Pending scheme hot-swap: the new base backend the worker re-forks
    /// its scratch state from once its queue is drained. Left in place until
    /// [`ShardChannel::complete_swap`], so a worker that dies mid-swap is
    /// simply redone by its replacement.
    pub swap_request: Option<Arc<B>>,
    /// The retired pre-swap shard delta published by the last completed
    /// swap, awaiting collection by the engine.
    pub retired: Option<B>,
    pub closed: bool,
    pub poisoned: bool,
}

/// What the worker should do next (see [`ShardChannel::next_event`]).
pub(crate) enum WorkerEvent<B> {
    /// Apply this batch (already marked inflight).
    Batch(QueuedBatch),
    /// Queue is drained and a scheme swap is pending: retire the scratch
    /// state and re-fork it from this base, then
    /// [`ShardChannel::complete_swap`].
    Swap(Arc<B>),
    /// Queue is drained and a sync barrier is pending: checkpoint and ack
    /// the given epoch.
    Sync(u64),
    /// The channel is closed: exit.
    Shutdown,
}

/// Outcome of failing the inflight batch (panic or worker death).
pub(crate) enum FailDisposition {
    /// Requeued at the front for another attempt.
    Requeued { attempt: u32, mass: u64 },
    /// Attempts exhausted: set aside in the quarantine.
    Quarantined { mass: u64, updates: usize },
    /// There was no inflight batch (death outside batch application).
    Idle,
}

#[derive(Debug)]
pub(crate) struct ShardChannel<B> {
    inner: Mutex<ChannelInner<B>>,
    /// Worker waits here for work / sync / close.
    work: Condvar,
    /// Engine waits here for queue space, checkpoint acks, and commits.
    progress: Condvar,
    capacity: usize,
}

impl<B: SketchBackend> ShardChannel<B> {
    pub fn new(snapshot: B, capacity: usize) -> Self {
        ShardChannel {
            inner: Mutex::new(ChannelInner {
                queue: VecDeque::new(),
                inflight: None,
                journal: Vec::new(),
                snapshot,
                quarantined: Vec::new(),
                counters: ShardCounters::default(),
                sync_epoch: 0,
                acked_epoch: 0,
                swap_request: None,
                retired: None,
                closed: false,
                poisoned: false,
            }),
            work: Condvar::new(),
            progress: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Locks the channel, recovering from mutex poisoning: a lock poisoned
    /// by a worker panic marks the shard poisoned (its snapshot may be
    /// half-written) instead of propagating the panic.
    pub fn lock_always(&self) -> MutexGuard<'_, ChannelInner<B>> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.poisoned = true;
                guard
            }
        }
    }

    // -- engine (producer) side --------------------------------------------

    /// `true` if the queue has no room for another batch.
    pub fn is_full(&self) -> bool {
        self.lock_always().queue.len() >= self.capacity
    }

    /// Enqueues a batch if there is room. The engine is the only producer,
    /// so `!is_full()` followed by `try_push` cannot race another push.
    pub fn try_push(&self, data: Arc<BatchData>) -> bool {
        let mut inner = self.lock_always();
        if inner.queue.len() >= self.capacity {
            return false;
        }
        inner.counters.queued_mass += data.mass;
        inner.queue.push_back(QueuedBatch { data, attempts: 0 });
        drop(inner);
        self.work.notify_one();
        true
    }

    /// Waits until the queue has room for another batch (or the shard is
    /// poisoned), up to `timeout`. Returns `(has_space, poisoned)`.
    ///
    /// The condition is re-checked under the same lock the wait sleeps on,
    /// so a worker's notification can never slip between the check and the
    /// sleep (no lost wake-up). The timeout exists purely so the engine can
    /// run its supervisor between waits — a dead worker never notifies.
    pub fn wait_space(&self, timeout: Duration) -> (bool, bool) {
        let mut inner = self.lock_always();
        if inner.queue.len() < self.capacity || inner.poisoned {
            return (inner.queue.len() < self.capacity, inner.poisoned);
        }
        inner = self
            .progress
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner)
            .0;
        (inner.queue.len() < self.capacity, inner.poisoned)
    }

    /// Waits until the sync barrier for `epoch` completes (or the shard is
    /// poisoned), up to `timeout`. Returns `(done, poisoned)`; see
    /// [`ShardChannel::wait_space`] for the no-lost-wake-up guarantee.
    pub fn wait_sync(&self, epoch: u64, timeout: Duration) -> (bool, bool) {
        let mut inner = self.lock_always();
        if inner.acked_epoch >= epoch || inner.poisoned {
            return (inner.acked_epoch >= epoch, inner.poisoned);
        }
        inner = self
            .progress
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner)
            .0;
        (inner.acked_epoch >= epoch, inner.poisoned)
    }

    /// Requests a sync barrier: once the worker drains its queue it will
    /// checkpoint and ack the returned epoch.
    pub fn request_sync(&self) -> u64 {
        let mut inner = self.lock_always();
        inner.sync_epoch += 1;
        let epoch = inner.sync_epoch;
        drop(inner);
        self.work.notify_one();
        epoch
    }

    /// Whether the barrier for `epoch` has completed, and whether the shard
    /// is poisoned.
    pub fn sync_state(&self, epoch: u64) -> (bool, bool) {
        let inner = self.lock_always();
        (inner.acked_epoch >= epoch, inner.poisoned)
    }

    /// Requests a scheme hot-swap: once the worker drains its queue it will
    /// retire its scratch delta and re-fork from `base`. The request stays
    /// set until the worker completes it, so a worker death mid-swap is
    /// redone by the replacement worker (exactly-once via `snapshot ⊕
    /// journal`, which the swap only clears atomically on completion).
    pub fn request_swap(&self, base: Arc<B>) {
        let mut inner = self.lock_always();
        inner.swap_request = Some(base);
        drop(inner);
        self.work.notify_one();
    }

    /// Waits until the pending swap completes (or the shard is poisoned),
    /// up to `timeout`. Returns `(done, poisoned)`; see
    /// [`ShardChannel::wait_space`] for the no-lost-wake-up guarantee.
    pub fn wait_swap(&self, timeout: Duration) -> (bool, bool) {
        let mut inner = self.lock_always();
        if inner.swap_request.is_none() || inner.poisoned {
            return (inner.swap_request.is_none(), inner.poisoned);
        }
        inner = self
            .progress
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner)
            .0;
        (inner.swap_request.is_none(), inner.poisoned)
    }

    /// Collects the retired pre-swap delta published by the last completed
    /// swap.
    pub fn take_retired(&self) -> Option<B> {
        self.lock_always().retired.take()
    }

    /// Closes the channel: the worker drains the remaining queue, publishes
    /// its scratch state via [`ShardChannel::publish_exit`], and exits.
    pub fn close(&self) {
        let mut inner = self.lock_always();
        inner.closed = true;
        drop(inner);
        self.work.notify_all();
        self.progress.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.lock_always().closed
    }

    // -- worker (consumer) side --------------------------------------------

    /// Blocks for the next worker event. Popping a batch and marking it
    /// inflight is atomic, and a sync barrier is only surfaced once the
    /// queue is empty, so a completed barrier proves the snapshot covers
    /// every batch dispatched before it.
    pub fn next_event(&self) -> WorkerEvent<B> {
        let mut inner = self.lock_always();
        loop {
            // Queued batches outrank shutdown: a closed channel is drained
            // before the worker exits, so `close` never strands admitted
            // mass (the exit publish then covers every applied batch).
            if let Some(batch) = inner.queue.pop_front() {
                inner.inflight = Some(batch.clone());
                drop(inner);
                self.progress.notify_all();
                return WorkerEvent::Batch(batch);
            }
            // A pending swap is surfaced by *peeking* — it stays requested
            // until `complete_swap`, so a worker that dies between here and
            // completion hands the still-pending swap to its replacement.
            if let Some(base) = inner.swap_request.as_ref() {
                return WorkerEvent::Swap(Arc::clone(base));
            }
            if inner.closed {
                return WorkerEvent::Shutdown;
            }
            if inner.sync_epoch > inner.acked_epoch {
                return WorkerEvent::Sync(inner.sync_epoch);
            }
            inner = self
                .work
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Records a successfully applied batch: journals it for recovery,
    /// clears the inflight slot, and credits the applied counters — one
    /// critical section, so recovery sees the batch either inflight (will
    /// replay) or journaled (already applied), never both or neither.
    pub fn commit(&self, batch: QueuedBatch) {
        let mut inner = self.lock_always();
        inner.counters.applied_updates += batch.data.updates.len() as u64;
        inner.counters.applied_mass += batch.data.mass;
        inner.counters.queued_mass -= batch.data.mass;
        inner.journal.push(batch.data);
        inner.inflight = None;
        drop(inner);
        self.progress.notify_all();
    }

    /// Fails the inflight batch (after a caught panic or a worker death):
    /// requeues it at the front for another attempt, or quarantines it once
    /// `max_attempts` attempts are exhausted.
    pub fn fail_inflight(&self, max_attempts: u32) -> FailDisposition {
        let mut inner = self.lock_always();
        let Some(batch) = inner.inflight.take() else {
            return FailDisposition::Idle;
        };
        inner.counters.batch_failures += 1;
        let attempt = batch.attempts + 1;
        let mass = batch.data.mass;
        if attempt >= max_attempts {
            let updates = batch.data.updates.len();
            inner.counters.queued_mass -= mass;
            inner.counters.quarantined_updates += updates as u64;
            inner.counters.quarantined_mass += mass;
            inner.quarantined.push(batch.data);
            drop(inner);
            self.progress.notify_all();
            FailDisposition::Quarantined { mass, updates }
        } else {
            inner.queue.push_front(QueuedBatch {
                data: batch.data,
                attempts: attempt,
            });
            drop(inner);
            self.work.notify_one();
            FailDisposition::Requeued { attempt, mass }
        }
    }

    /// Replaces the shard snapshot with a freshly cloned consistent state
    /// and clears the journal it covers; acks `epoch` if this checkpoint
    /// completes a sync barrier. `at_checkpoint` runs inside the critical
    /// section (it hosts the `worker::checkpoint` failpoint — a panic there
    /// poisons the shard, which is exactly the scenario the failpoint
    /// exists to exercise).
    pub fn checkpoint(&self, snapshot: B, epoch: Option<u64>, at_checkpoint: impl FnOnce()) {
        let mut inner = self.lock_always();
        at_checkpoint();
        inner.snapshot = snapshot;
        inner.journal.clear();
        if let Some(epoch) = epoch {
            inner.acked_epoch = epoch;
        }
        drop(inner);
        self.progress.notify_all();
    }

    /// Completes a pending scheme swap in one critical section: the shard's
    /// recovery state becomes `fresh` (the worker's new scratch, a fork of
    /// the swapped-in base) with an empty journal, the pre-swap delta is
    /// parked for the engine to collect, and the request is cleared. Until
    /// this commits, recovery still reconstructs the *old* scratch — so the
    /// swap is atomic with respect to worker death.
    pub fn complete_swap(&self, fresh: B, retired: B) {
        let mut inner = self.lock_always();
        inner.snapshot = fresh;
        inner.journal.clear();
        inner.retired = Some(retired);
        inner.swap_request = None;
        drop(inner);
        self.progress.notify_all();
    }

    /// Publishes the worker's final scratch state on clean shutdown: a
    /// checkpoint by *move* (no clone — the worker is done with it), which
    /// also acks any pending sync barrier.
    pub fn publish_exit(&self, state: B) {
        let mut inner = self.lock_always();
        inner.snapshot = state;
        inner.journal.clear();
        inner.acked_epoch = inner.sync_epoch;
        drop(inner);
        self.progress.notify_all();
    }

    /// The shard's recovery state: its last consistent snapshot plus the
    /// journal of batches applied since. `None` if the shard is poisoned.
    pub fn recovery_state(&self) -> Option<(B, Vec<Arc<BatchData>>)> {
        let inner = self.lock_always();
        if inner.poisoned {
            return None;
        }
        Some((inner.snapshot.clone(), inner.journal.clone()))
    }
}
