//! Bounded per-shard work channels: a lock-free SPSC batch ring plus a
//! small control mutex for the fault-tolerance protocol.
//!
//! Each shard of a worker-mode [`crate::IngestEngine`] owns one
//! [`ShardChannel`]. The hot path — the engine (single producer) handing
//! pre-aggregated batches to the worker (single consumer) — runs through
//! [`SpscRing`]: a cache-line-padded single-producer/single-consumer ring
//! with atomic head/tail indices and power-of-two capacity. Pushing and
//! popping a batch takes no lock; both sides use spin-then-park backoff
//! (a bounded spin on the ring's atomics, then a timed condvar park with a
//! flag-and-knock wake protocol) so saturation never degenerates into a
//! busy loop and idle never misses a wake-up for more than a backstop
//! tick.
//!
//! Everything the fault-tolerance protocol relies on stays behind one
//! small *control* mutex, held only for pointer-sized bookkeeping:
//!
//! * `retry` — batches being re-attempted after a panic (a requeued batch
//!   bypasses the ring so the worker retries it before new work, exactly
//!   like the old front-of-queue requeue);
//! * `inflight` — the batch the worker is currently applying (popping from
//!   the ring and marking inflight happens under the control lock, so a
//!   batch can never fall between the ring and the worker when a panic
//!   strikes);
//! * `journal` — batches applied since the last checkpoint. The worker's
//!   private scratch state is `snapshot ⊕ journal`; a replacement worker
//!   rebuilds it by cloning `snapshot` and replaying `journal` in order;
//! * `snapshot` — the shard's last *consistent* accumulated delta, an
//!   `Arc` replaced wholesale at each checkpoint (never mutated in place),
//!   shared with the shard's [`crate::snapshot::PublishedSlot`] so
//!   publishing a wait-free query snapshot costs one `Arc` clone;
//! * `quarantined` — poison-pill batches set aside after exhausting their
//!   application attempts, retained so their mass stays accounted.
//!
//! Dispatched-but-unapplied mass is tracked in a plain atomic
//! (`queued_mass`) rather than a locked counter: the producer credits it
//! before the ring push, and the worker debits it under the control lock
//! at commit/quarantine — so the engine-wide conservation audit
//! ([`crate::EngineStats::unaccounted_mass`]) still balances at every
//! observable instant. Mutex poisoning is handled everywhere via
//! [`ShardChannel::lock_always`]: a poisoned lock marks the shard poisoned
//! rather than cascading panics.

use crate::backend::SketchBackend;
use crate::snapshot::PublishedSlot;
use opthash_stream::StreamElement;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Bounded spin iterations before either side falls back to parking.
const SPIN_LIMIT: usize = 64;

/// Backstop for the consumer's park: even a (theoretically impossible)
/// missed knock costs at most this much latency. Kept lazy on purpose —
/// every ring push knocks a parked consumer and every control-plane signal
/// (close / sync / swap / retry) notifies under the control lock, so this
/// timer only ever fires on an *idle* shard, where frequent spurious wakes
/// would steal cycles from the ingest thread (acute on few-core hosts).
const PARK_BACKSTOP: Duration = Duration::from_millis(25);

/// Pads a value to its own cache line so the producer's tail index and the
/// consumer's head index never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// A lock-free single-producer/single-consumer ring buffer.
///
/// The classic Lamport queue: the producer owns `tail`, the consumer owns
/// `head`, each index grows monotonically (wrapping arithmetic) and maps
/// to a slot via a power-of-two mask. A slot in `[head, tail)` is
/// initialized and owned by the consumer; everything else is vacant and
/// owned by the producer.
///
/// # Safety contract
///
/// At most one thread may call [`SpscRing::push`] and at most one thread
/// may call [`SpscRing::pop`] at any time. The engine enforces this
/// structurally: the engine thread is the only producer, the shard worker
/// the only consumer, and the consumer role is only ever handed off
/// through a `thread::join` (supervision joins the dead worker before
/// spawning its replacement; `finish` joins before draining leftovers),
/// which gives the required happens-before edge.
pub(crate) struct SpscRing<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Consumer cursor: the next slot to pop.
    head: CachePadded<AtomicUsize>,
    /// Producer cursor: the next slot to fill.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring hands `T` values across threads (push on one, pop on
// another), which requires `T: Send`; the `&self` methods are safe to call
// concurrently only under the single-producer/single-consumer contract
// documented above, which the atomic head/tail protocol then makes sound.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> std::fmt::Debug for SpscRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpscRing")
            .field("capacity", &self.slots.len())
            .field("len", &self.len())
            .finish()
    }
}

impl<T> SpscRing<T> {
    /// A ring with room for at least `capacity` values (rounded up to a
    /// power of two so index-to-slot mapping is a mask, not a division).
    fn with_capacity(capacity: usize) -> Self {
        let physical = capacity.max(1).next_power_of_two();
        SpscRing {
            slots: (0..physical)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: physical - 1,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Occupied slots. Exact for the owning side; a lower/upper bound that
    /// is never torn for the other.
    fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value. **Single producer only** (see the type docs).
    /// Returns the value back if the ring is physically full.
    fn push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.0.load(Ordering::Relaxed); // producer-owned
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return Err(value);
        }
        // SAFETY: the slot at `tail` is vacant (index protocol above) and
        // no other thread writes slots (single producer). The Release
        // store below publishes the initialized slot to the consumer.
        unsafe { (*self.slots[tail & self.mask].get()).write(value) };
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Removes the oldest value. **Single consumer only** (see the type
    /// docs).
    fn pop(&self) -> Option<T> {
        let head = self.head.0.load(Ordering::Relaxed); // consumer-owned
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head != tail` under the Acquire load means the slot at
        // `head` was initialized by a push whose Release store we observed,
        // and no other thread reads slots (single consumer). The Release
        // store below returns the now-vacant slot to the producer.
        let value = unsafe { (*self.slots[head & self.mask].get()).assume_init_read() };
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // `&mut self` is exclusive, so draining via pop is race-free and
        // drops every still-queued value exactly once.
        while self.pop().is_some() {}
    }
}

/// A drained batch: the pre-aggregated `(element, count)` updates of one
/// shard buffer. Immutable once built; shared by `Arc` between the ring,
/// the inflight slot, and the journal, so requeue/replay never copies the
/// update data.
#[derive(Debug)]
pub(crate) struct BatchData {
    /// Pre-aggregated weighted updates, in first-seen order.
    pub updates: Vec<(StreamElement, u64)>,
    /// Total count mass of the batch (sum of the update weights).
    pub mass: u64,
}

/// A batch in the retry or inflight slot, with its application-attempt
/// count (for poison-pill quarantine). Batches in the ring are always at
/// attempt 0, so the ring carries bare `Arc<BatchData>`.
#[derive(Debug, Clone)]
pub(crate) struct QueuedBatch {
    pub data: Arc<BatchData>,
    /// Completed application attempts (0 for a never-tried batch).
    pub attempts: u32,
}

/// Per-shard robustness counters, maintained under the control lock.
/// (Dispatched-but-unapplied mass lives in [`ShardChannel::queued_mass`],
/// an atomic, because the lock-free producer must credit it without taking
/// the lock.)
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardCounters {
    pub applied_updates: u64,
    pub applied_mass: u64,
    pub quarantined_updates: u64,
    pub quarantined_mass: u64,
    pub batch_failures: u64,
    pub worker_restarts: u64,
}

impl ShardCounters {
    /// Accumulates another shard's counters (for engine-wide stats).
    pub fn absorb(&mut self, other: &ShardCounters) {
        self.applied_updates += other.applied_updates;
        self.applied_mass += other.applied_mass;
        self.quarantined_updates += other.quarantined_updates;
        self.quarantined_mass += other.quarantined_mass;
        self.batch_failures += other.batch_failures;
        self.worker_restarts += other.worker_restarts;
    }
}

/// Everything guarded by the control mutex.
#[derive(Debug)]
pub(crate) struct ControlInner<B> {
    /// Batches being re-attempted after a panic; drained before the ring so
    /// a requeued batch keeps its old front-of-queue priority.
    pub retry: VecDeque<QueuedBatch>,
    pub inflight: Option<QueuedBatch>,
    pub journal: Vec<Arc<BatchData>>,
    /// The shard's last consistent accumulated delta. An `Arc` so the same
    /// allocation serves recovery *and* the published query snapshot.
    pub snapshot: Arc<B>,
    /// Applied count mass `snapshot` accounts for (under the current scheme
    /// version).
    pub snapshot_mass: u64,
    pub quarantined: Vec<Arc<BatchData>>,
    pub counters: ShardCounters,
    /// Latest sync barrier requested by the engine.
    pub sync_epoch: u64,
    /// Latest sync barrier the worker has checkpointed for.
    pub acked_epoch: u64,
    /// Pending scheme hot-swap: the target scheme version and the new base
    /// backend the worker re-forks its scratch state from once its queue is
    /// drained. Left in place until [`ShardChannel::complete_swap`], so a
    /// worker that dies mid-swap is simply redone by its replacement.
    pub swap_request: Option<(u64, Arc<B>)>,
    /// The retired pre-swap shard delta published by the last completed
    /// swap, awaiting collection by the engine.
    pub retired: Option<Arc<B>>,
    pub closed: bool,
    pub poisoned: bool,
}

/// What the worker should do next (see [`ShardChannel::next_event`]).
pub(crate) enum WorkerEvent<B> {
    /// Apply this batch (already marked inflight).
    Batch(QueuedBatch),
    /// Queue is drained and a scheme swap is pending: retire the scratch
    /// state and re-fork it from this base, then
    /// [`ShardChannel::complete_swap`].
    Swap {
        /// The scheme version the swap installs.
        version: u64,
        /// The new base backend to fork the fresh scratch from.
        base: Arc<B>,
    },
    /// Queue is drained and a sync barrier is pending: checkpoint and ack
    /// the given epoch.
    Sync(u64),
    /// The channel is closed: exit.
    Shutdown,
}

/// Outcome of failing the inflight batch (panic or worker death).
pub(crate) enum FailDisposition {
    /// Requeued at the front for another attempt.
    Requeued { attempt: u32, mass: u64 },
    /// Attempts exhausted: set aside in the quarantine.
    Quarantined { mass: u64, updates: usize },
    /// There was no inflight batch (death outside batch application).
    Idle,
}

#[derive(Debug)]
pub(crate) struct ShardChannel<B> {
    /// The lock-free hot path: attempt-0 batches from engine to worker.
    ring: SpscRing<Arc<BatchData>>,
    control: Mutex<ControlInner<B>>,
    /// Worker parks here for work / sync / close.
    work: Condvar,
    /// Engine parks here for ring space, checkpoint acks, and commits.
    progress: Condvar,
    /// Set by the consumer just before parking; the producer checks it
    /// after publishing a push and knocks (lock + notify) only when set —
    /// the saturated path never touches the mutex.
    worker_parked: AtomicBool,
    /// Mass dispatched but not yet applied or quarantined: everything in
    /// the ring, the retry deque, and the inflight slot. Credited by the
    /// lock-free producer before its ring push; debited by the worker
    /// under the control lock, so a locked stats read sees a consistent
    /// ledger.
    queued_mass: AtomicU64,
    /// Lock-free mirror of [`ControlInner::poisoned`].
    poisoned: AtomicBool,
    /// Logical capacity (the configured queue depth; the ring may be
    /// physically larger after power-of-two rounding).
    capacity: usize,
    /// Where the worker publishes epoch-stamped query snapshots.
    slot: Arc<PublishedSlot<B>>,
}

impl<B: SketchBackend> ShardChannel<B> {
    pub fn new(snapshot: Arc<B>, capacity: usize, slot: Arc<PublishedSlot<B>>) -> Self {
        let capacity = capacity.max(1);
        ShardChannel {
            ring: SpscRing::with_capacity(capacity),
            control: Mutex::new(ControlInner {
                retry: VecDeque::new(),
                inflight: None,
                journal: Vec::new(),
                snapshot,
                snapshot_mass: 0,
                quarantined: Vec::new(),
                counters: ShardCounters::default(),
                sync_epoch: 0,
                acked_epoch: 0,
                swap_request: None,
                retired: None,
                closed: false,
                poisoned: false,
            }),
            work: Condvar::new(),
            progress: Condvar::new(),
            worker_parked: AtomicBool::new(false),
            queued_mass: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            capacity,
            slot,
        }
    }

    /// Locks the control state, recovering from mutex poisoning: a lock
    /// poisoned by a worker panic marks the shard poisoned (its snapshot
    /// may be half-written) instead of propagating the panic.
    pub fn lock_always(&self) -> MutexGuard<'_, ControlInner<B>> {
        match self.control.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.poisoned = true;
                self.poisoned.store(true, Ordering::Release);
                guard
            }
        }
    }

    // -- engine (producer) side --------------------------------------------

    /// `true` if the ring has no room for another batch (lock-free).
    pub fn is_full(&self) -> bool {
        self.ring.len() >= self.capacity
    }

    /// Whether the shard is poisoned (lock-free mirror).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Mass dispatched but not yet applied or quarantined.
    pub fn queued_mass(&self) -> u64 {
        self.queued_mass.load(Ordering::Acquire)
    }

    /// Debits dispatched mass settled outside the worker (the engine's
    /// shutdown catch-up applies or quarantines leftovers itself).
    pub fn debit_queued_mass(&self, mass: u64) {
        self.queued_mass.fetch_sub(mass, Ordering::AcqRel);
    }

    /// Enqueues a batch if there is room, without taking the control lock.
    /// The engine is the only producer, so the fullness check cannot race
    /// another push.
    pub fn try_push(&self, data: Arc<BatchData>) -> bool {
        if self.ring.len() >= self.capacity {
            return false;
        }
        let mass = data.mass;
        // Credit before the push: once the batch is visible to the worker
        // it may commit (and debit) at any moment, and the audit must never
        // see applied mass that was not first queued.
        self.queued_mass.fetch_add(mass, Ordering::AcqRel);
        if self.ring.push(data).is_err() {
            // Unreachable for a single producer (physical capacity >=
            // logical), but never lose mass accounting if the discipline
            // is somehow violated.
            debug_assert!(false, "SPSC ring rejected a push below capacity");
            self.queued_mass.fetch_sub(mass, Ordering::AcqRel);
            return false;
        }
        // Dekker-style handshake with the consumer's park: the fence
        // orders our tail store before the flag load, the consumer orders
        // its flag store before its ring re-check — so either we see the
        // flag and knock, or the consumer's re-check sees our batch.
        fence(Ordering::SeqCst);
        if self.worker_parked.load(Ordering::SeqCst) {
            // Taking the lock serializes the knock against the consumer's
            // park (the consumer holds the lock from flag-set until the
            // condvar wait releases it), so the notify cannot be lost.
            drop(self.lock_always());
            self.work.notify_all();
        }
        true
    }

    /// Waits until the ring has room for another batch (or the shard is
    /// poisoned), up to `timeout`. Returns `(has_space, poisoned)`.
    ///
    /// Spin-then-park: a bounded spin on the ring's atomics (the worker
    /// drains in microseconds under load), then a timed park. The park can
    /// in principle miss a pop that lands between the re-check and the
    /// sleep; the timeout bounds that miss, and the engine re-runs its
    /// supervisor between waits anyway — a dead worker never notifies.
    pub fn wait_space(&self, timeout: Duration) -> (bool, bool) {
        for _ in 0..SPIN_LIMIT {
            if self.ring.len() < self.capacity {
                return (true, self.is_poisoned());
            }
            if self.is_poisoned() {
                return (false, true);
            }
            std::hint::spin_loop();
        }
        let inner = self.lock_always();
        if self.ring.len() < self.capacity || inner.poisoned {
            return (self.ring.len() < self.capacity, inner.poisoned);
        }
        let inner = self
            .progress
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner)
            .0;
        (self.ring.len() < self.capacity, inner.poisoned)
    }

    /// Waits until the sync barrier for `epoch` completes (or the shard is
    /// poisoned), up to `timeout`. Returns `(done, poisoned)`. The
    /// condition is re-checked under the same lock the wait sleeps on and
    /// the worker acks under that lock, so a completion can never slip
    /// between the check and the sleep.
    pub fn wait_sync(&self, epoch: u64, timeout: Duration) -> (bool, bool) {
        let mut inner = self.lock_always();
        if inner.acked_epoch >= epoch || inner.poisoned {
            return (inner.acked_epoch >= epoch, inner.poisoned);
        }
        inner = self
            .progress
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner)
            .0;
        (inner.acked_epoch >= epoch, inner.poisoned)
    }

    /// Requests a sync barrier: once the worker drains its queue it will
    /// checkpoint and ack the returned epoch.
    pub fn request_sync(&self) -> u64 {
        let mut inner = self.lock_always();
        inner.sync_epoch += 1;
        let epoch = inner.sync_epoch;
        drop(inner);
        self.work.notify_all();
        epoch
    }

    /// Whether the barrier for `epoch` has completed, and whether the shard
    /// is poisoned.
    pub fn sync_state(&self, epoch: u64) -> (bool, bool) {
        let inner = self.lock_always();
        (inner.acked_epoch >= epoch, inner.poisoned)
    }

    /// Requests a scheme hot-swap to `version`: once the worker drains its
    /// queue it will retire its scratch delta and re-fork from `base`. The
    /// request stays set until the worker completes it, so a worker death
    /// mid-swap is redone by the replacement worker (exactly-once via
    /// `snapshot ⊕ journal`, which the swap only clears atomically on
    /// completion).
    pub fn request_swap(&self, version: u64, base: Arc<B>) {
        let mut inner = self.lock_always();
        inner.swap_request = Some((version, base));
        drop(inner);
        self.work.notify_all();
    }

    /// Waits until the pending swap completes (or the shard is poisoned),
    /// up to `timeout`. Returns `(done, poisoned)`.
    pub fn wait_swap(&self, timeout: Duration) -> (bool, bool) {
        let mut inner = self.lock_always();
        if inner.swap_request.is_none() || inner.poisoned {
            return (inner.swap_request.is_none(), inner.poisoned);
        }
        inner = self
            .progress
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner)
            .0;
        (inner.swap_request.is_none(), inner.poisoned)
    }

    /// Collects the retired pre-swap delta published by the last completed
    /// swap.
    pub fn take_retired(&self) -> Option<Arc<B>> {
        self.lock_always().retired.take()
    }

    /// Closes the channel: the worker drains the remaining queue, publishes
    /// its scratch state via [`ShardChannel::publish_exit`], and exits.
    pub fn close(&self) {
        let mut inner = self.lock_always();
        inner.closed = true;
        drop(inner);
        self.work.notify_all();
        self.progress.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.lock_always().closed
    }

    /// Whether any dispatched batch has not been drained by the worker.
    pub fn has_undrained(&self) -> bool {
        !self.ring.is_empty()
    }

    /// Pops a still-queued batch after the worker thread has been
    /// **joined** — the join hands the consumer role to the caller (see
    /// the [`SpscRing`] safety contract). Used by the engine's shutdown
    /// catch-up and by supervision's leftovers accounting.
    pub fn pop_after_join(&self) -> Option<Arc<BatchData>> {
        self.ring.pop()
    }

    // -- worker (consumer) side --------------------------------------------

    /// Blocks for the next worker event. Popping a batch and marking it
    /// inflight happens under the control lock, and a sync barrier is only
    /// surfaced once the queue is empty, so a completed barrier proves the
    /// snapshot covers every batch dispatched before it.
    pub fn next_event(&self) -> WorkerEvent<B> {
        let mut idle = false;
        loop {
            // Spin-then-park, spin half: after an empty pass, watch the
            // ring's atomics briefly before paying for the park protocol.
            if idle {
                for _ in 0..SPIN_LIMIT {
                    if !self.ring.is_empty() {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
            let mut inner = self.lock_always();
            // Retried batches outrank the ring: a requeued batch keeps its
            // original dispatch order ahead of anything newer.
            if let Some(batch) = inner.retry.pop_front() {
                inner.inflight = Some(batch.clone());
                drop(inner);
                self.progress.notify_all();
                return WorkerEvent::Batch(batch);
            }
            // Ring batches outrank shutdown: a closed channel is drained
            // before the worker exits, so `close` never strands admitted
            // mass (the exit publish then covers every applied batch).
            if let Some(data) = self.ring.pop() {
                let batch = QueuedBatch { data, attempts: 0 };
                inner.inflight = Some(batch.clone());
                drop(inner);
                self.progress.notify_all();
                return WorkerEvent::Batch(batch);
            }
            // A pending swap is surfaced by *peeking* — it stays requested
            // until `complete_swap`, so a worker that dies between here and
            // completion hands the still-pending swap to its replacement.
            if let Some((version, base)) = inner.swap_request.as_ref() {
                return WorkerEvent::Swap {
                    version: *version,
                    base: Arc::clone(base),
                };
            }
            if inner.closed {
                return WorkerEvent::Shutdown;
            }
            if inner.sync_epoch > inner.acked_epoch {
                return WorkerEvent::Sync(inner.sync_epoch);
            }
            // Park. Announce the flag, then re-check the ring once: the
            // producer checks the flag only *after* its tail store (with a
            // SeqCst fence between), so either the re-check sees its batch
            // or the producer sees our flag and knocks. We hold the control
            // lock from the flag store until the condvar wait releases it,
            // so the knock's notify cannot land before we sleep. The timed
            // wait is a pure backstop.
            self.worker_parked.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if !self.ring.is_empty() {
                self.worker_parked.store(false, Ordering::SeqCst);
                idle = false;
                continue;
            }
            let guard = self
                .work
                .wait_timeout(inner, PARK_BACKSTOP)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
            drop(guard);
            self.worker_parked.store(false, Ordering::SeqCst);
            idle = true;
        }
    }

    /// Records a successfully applied batch: journals it for recovery,
    /// clears the inflight slot, and credits the applied counters — one
    /// critical section, so recovery sees the batch either inflight (will
    /// replay) or journaled (already applied), never both or neither.
    pub fn commit(&self, batch: QueuedBatch) {
        let mut inner = self.lock_always();
        inner.counters.applied_updates += batch.data.updates.len() as u64;
        inner.counters.applied_mass += batch.data.mass;
        self.queued_mass
            .fetch_sub(batch.data.mass, Ordering::AcqRel);
        inner.journal.push(batch.data);
        inner.inflight = None;
        drop(inner);
        self.progress.notify_all();
    }

    /// Fails the inflight batch (after a caught panic or a worker death):
    /// requeues it at the front of the retry deque for another attempt, or
    /// quarantines it once `max_attempts` attempts are exhausted.
    pub fn fail_inflight(&self, max_attempts: u32) -> FailDisposition {
        let mut inner = self.lock_always();
        let Some(batch) = inner.inflight.take() else {
            return FailDisposition::Idle;
        };
        inner.counters.batch_failures += 1;
        let attempt = batch.attempts + 1;
        let mass = batch.data.mass;
        if attempt >= max_attempts {
            let updates = batch.data.updates.len();
            self.queued_mass.fetch_sub(mass, Ordering::AcqRel);
            inner.counters.quarantined_updates += updates as u64;
            inner.counters.quarantined_mass += mass;
            inner.quarantined.push(batch.data);
            drop(inner);
            self.progress.notify_all();
            FailDisposition::Quarantined { mass, updates }
        } else {
            inner.retry.push_front(QueuedBatch {
                data: batch.data,
                attempts: attempt,
            });
            drop(inner);
            self.work.notify_all();
            FailDisposition::Requeued { attempt, mass }
        }
    }

    /// Replaces the shard snapshot with a freshly cloned consistent state
    /// (carrying `mass` applied count mass) and clears the journal it
    /// covers; acks `epoch` if this checkpoint completes a sync barrier.
    /// `at_checkpoint` runs inside the critical section (it hosts the
    /// `worker::checkpoint` failpoint — a panic there poisons the shard,
    /// which is exactly the scenario the failpoint exists to exercise).
    ///
    /// The same `Arc` is then published to the shard's query-snapshot slot
    /// — *outside* the control section, so a slow failpoint or a contended
    /// control lock can never delay a wait-free reader, and a publication
    /// costs one `Arc` clone rather than a state copy.
    pub fn checkpoint(
        &self,
        snapshot: Arc<B>,
        mass: u64,
        epoch: Option<u64>,
        at_checkpoint: impl FnOnce(),
    ) {
        let mut inner = self.lock_always();
        at_checkpoint();
        inner.snapshot = Arc::clone(&snapshot);
        inner.snapshot_mass = mass;
        inner.journal.clear();
        if let Some(epoch) = epoch {
            inner.acked_epoch = epoch;
        }
        drop(inner);
        self.slot.publish(snapshot, mass);
        self.progress.notify_all();
    }

    /// Completes a pending scheme swap in one critical section: the shard's
    /// recovery state becomes `fresh` (the worker's new scratch, a fork of
    /// the swapped-in base) with an empty journal, the pre-swap delta
    /// (carrying `retired_mass`) is parked for the engine to collect, and
    /// the request is cleared. Until this commits, recovery still
    /// reconstructs the *old* scratch — so the swap is atomic with respect
    /// to worker death. The fresh and retired snapshots are then published
    /// to the query-snapshot slot under the new `version`.
    pub fn complete_swap(&self, version: u64, fresh: Arc<B>, retired: Arc<B>, retired_mass: u64) {
        let mut inner = self.lock_always();
        inner.snapshot = Arc::clone(&fresh);
        inner.snapshot_mass = 0;
        inner.journal.clear();
        inner.retired = Some(Arc::clone(&retired));
        inner.swap_request = None;
        drop(inner);
        self.slot
            .publish_swap(version, fresh, retired_mass, retired);
        self.progress.notify_all();
    }

    /// Publishes the worker's final scratch state on clean shutdown: a
    /// checkpoint by *move* (no clone — the worker is done with it), which
    /// also acks any pending sync barrier and refreshes the query-snapshot
    /// slot one last time.
    pub fn publish_exit(&self, state: B, mass: u64) {
        let published = Arc::new(state);
        let mut inner = self.lock_always();
        inner.snapshot = Arc::clone(&published);
        inner.snapshot_mass = mass;
        inner.journal.clear();
        inner.acked_epoch = inner.sync_epoch;
        drop(inner);
        self.slot.publish(published, mass);
        self.progress.notify_all();
    }

    /// The shard's recovery state: its last consistent snapshot (with the
    /// applied mass it carries) plus the journal of batches applied since.
    /// `None` if the shard is poisoned.
    pub fn recovery_state(&self) -> Option<(B, u64, Vec<Arc<BatchData>>)> {
        let inner = self.lock_always();
        if inner.poisoned {
            return None;
        }
        Some((
            (*inner.snapshot).clone(),
            inner.snapshot_mass,
            inner.journal.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opthash_sketch::CountMinSketch;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn ring_wraps_around_capacity_boundaries() {
        // Logical capacity 3 rounds up to a physical 4; push/pop cycles of
        // mixed lengths walk the indices far past every wrap boundary.
        let ring = SpscRing::with_capacity(3);
        let mut next = 0u64;
        let mut expect = 0u64;
        for round in 0..1_000 {
            let burst = 1 + (round % 4);
            for _ in 0..burst {
                ring.push(next).expect("ring has room for the burst");
                next += 1;
            }
            for _ in 0..burst {
                assert_eq!(ring.pop(), Some(expect), "FIFO order across wraps");
                expect += 1;
            }
        }
        assert!(ring.is_empty());
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn ring_rejects_pushes_only_when_physically_full() {
        let ring = SpscRing::with_capacity(2);
        ring.push(1u32).unwrap();
        ring.push(2u32).unwrap();
        assert_eq!(ring.push(3u32), Err(3u32), "physical capacity is 2");
        assert_eq!(ring.pop(), Some(1));
        ring.push(3u32).unwrap();
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn ring_hammer_preserves_order_through_full_and_empty_races() {
        // A tiny ring forces constant full/empty collisions between the
        // producer and consumer; the consumer asserts exact FIFO order, so
        // any torn index update or double-delivery fails loudly. The
        // busy-wait sides *yield* rather than pure-spin: on a single
        // hardware thread a pure spin can only make progress once the
        // scheduler preempts it, which turns every collision into a full
        // quantum.
        const N: u64 = 20_000;
        let ring = Arc::new(SpscRing::with_capacity(2));
        let consumer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                let mut expect = 0u64;
                while expect < N {
                    if let Some(value) = ring.pop() {
                        assert_eq!(value, expect, "values arrive in push order");
                        expect += 1;
                    } else {
                        thread::yield_now();
                    }
                }
                assert_eq!(ring.pop(), None);
            })
        };
        let mut value = 0u64;
        while value < N {
            match ring.push(value) {
                Ok(()) => value += 1,
                Err(_) => thread::yield_now(),
            }
        }
        consumer.join().expect("consumer thread panicked");
    }

    #[test]
    fn dropping_a_ring_drops_every_queued_value_once() {
        struct CountsDrops(Arc<AtomicUsize>);
        impl Drop for CountsDrops {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let ring = SpscRing::with_capacity(4);
        for _ in 0..3 {
            ring.push(CountsDrops(Arc::clone(&drops))).ok().unwrap();
        }
        // Pop one (dropped here), leave two queued for Drop to drain.
        drop(ring.pop());
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(ring);
        assert_eq!(drops.load(Ordering::SeqCst), 3, "Drop drains the ring");
    }

    fn batch(id: u64, mass: u64) -> Arc<BatchData> {
        Arc::new(BatchData {
            updates: vec![(opthash_stream::StreamElement::without_features(id), mass)],
            mass,
        })
    }

    fn channel(capacity: usize) -> ShardChannel<CountMinSketch> {
        let empty = Arc::new(CountMinSketch::new(64, 2, 1));
        let slot = Arc::new(PublishedSlot::new(Arc::clone(&empty)));
        ShardChannel::new(empty, capacity, slot)
    }

    #[test]
    fn closing_a_full_channel_still_drains_every_batch_before_shutdown() {
        // shutdown-while-full: fill the ring to capacity with no consumer,
        // close, then attach a consumer. Every batch must surface before
        // Shutdown, and the queued-mass ledger must drain to zero.
        let cell = Arc::new(channel(2));
        assert!(cell.try_push(batch(1, 10)));
        assert!(cell.try_push(batch(2, 20)));
        assert!(cell.is_full());
        assert!(!cell.try_push(batch(3, 30)), "full ring rejects the push");
        assert_eq!(cell.queued_mass(), 30);
        cell.close();

        let consumer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    match cell.next_event() {
                        WorkerEvent::Batch(b) => {
                            seen.push(b.data.mass);
                            cell.commit(b);
                        }
                        WorkerEvent::Shutdown => return seen,
                        _ => panic!("unexpected event"),
                    }
                }
            })
        };
        let seen = consumer.join().expect("consumer thread panicked");
        assert_eq!(seen, vec![10, 20], "both batches drained, in order");
        assert_eq!(cell.queued_mass(), 0);
    }

    #[test]
    fn parked_consumer_wakes_for_pushes_and_retry_outranks_the_ring() {
        let cell = Arc::new(channel(4));
        let consumer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                let mut masses = Vec::new();
                loop {
                    match cell.next_event() {
                        WorkerEvent::Batch(b) => {
                            // Fail the very first batch once so it lands in
                            // the retry deque and must come back first.
                            if masses.is_empty() && b.attempts == 0 && b.data.mass == 7 {
                                cell.fail_inflight(3);
                                continue;
                            }
                            masses.push((b.data.mass, b.attempts));
                            cell.commit(b);
                        }
                        WorkerEvent::Shutdown => return masses,
                        _ => panic!("unexpected event"),
                    }
                }
            })
        };
        // Let the consumer reach its park before pushing.
        thread::sleep(Duration::from_millis(5));
        assert!(cell.try_push(batch(1, 7)));
        assert!(cell.try_push(batch(2, 9)));
        thread::sleep(Duration::from_millis(20));
        cell.close();
        let masses = consumer.join().expect("consumer thread panicked");
        assert_eq!(
            masses,
            vec![(7, 1), (9, 0)],
            "retried batch surfaces before newer ring work"
        );
        assert_eq!(cell.queued_mass(), 0);
    }
}
