//! # opthash-engine
//!
//! An always-on, sharded, fault-isolated ingestion engine that lets every
//! frequency estimator in the workspace — the randomized baselines of
//! `opthash-sketch` *and* the learned `opt-hash` estimators of the core
//! crate — absorb heavy update traffic through one interface:
//!
//! * [`SketchBackend`] — weighted update / point query / fork / merge /
//!   space accounting, implemented by [`opthash_sketch::CountMinSketch`],
//!   [`opthash_sketch::CountSketch`], [`opthash_sketch::LearnedCountMin`],
//!   [`opthash_sketch::MisraGries`], [`opthash::OptHash`] and
//!   [`opthash::AdaptiveOptHash`];
//! * [`IngestEngine`] — hash-partitions arrivals by element ID across `N`
//!   shards, pre-aggregates each shard's batch (duplicates collapse into one
//!   weighted update — on the Zipfian streams the paper studies most
//!   arrivals are duplicates), and streams full batches through bounded
//!   queues to persistent per-shard worker threads, so application overlaps
//!   ingestion. Reads come in two flavours: wait-free epoch-stamped
//!   snapshot queries ([`IngestEngine::query`], [`SnapshotReader`]) that
//!   never touch the flush barrier, and barrier-synced queries
//!   ([`IngestEngine::query_synced`]) that flush, sync every shard to a
//!   consistent checkpoint, and merge the shard deltas.
//!
//! Sharding by ID makes the engine *exact* for the linear backends and for
//! the adaptive estimator: queries of a sharded engine equal those of the
//! same backend fed sequentially (see the [`SketchBackend`] docs for the
//! precise contract).
//!
//! ## Robustness model
//!
//! The engine treats overload and partial failure as ordinary inputs, not
//! panics, and upholds one invariant throughout: **no admitted arrival is
//! ever silently lost, and no offered arrival is ever unaccounted.**
//!
//! * **Backpressure** — when a shard's bounded queue is full, the
//!   configured [`BackpressurePolicy`] decides: block (lossless), reject
//!   with [`EngineError::Overloaded`] (every rejection is counted), or
//!   degrade into deeper pre-aggregation (mass preserved in the buffer).
//!   [`EngineStats::conserved`] checks the resulting ledger identity.
//! * **Panic isolation** — a panic inside batch application is confined to
//!   the shard worker's scratch state; the batch is retried and, after
//!   `max_batch_attempts`, quarantined as a poison pill
//!   ([`IngestEngine::quarantined`] exposes its updates).
//! * **Supervision** — a worker death is detected by the engine, which
//!   re-forks the shard from its last checkpoint, replays the recovery
//!   journal and surviving queue, and records a
//!   [`FaultEvent::WorkerRestarted`] in the [`FaultLog`].
//! * **Fault injection** — with the `failpoints` cargo feature, named
//!   failpoints along the ingest/apply/checkpoint paths can be programmed
//!   per engine ([`IngestEngine::fault_injector`]) to panic, delay, or
//!   error deterministically; see [`fault`] for the failpoint table. The
//!   feature costs nothing when disabled.
//!
//! ## Online re-training
//!
//! Backends can be replaced *while the engine runs*:
//! [`IngestEngine::swap_backend`] drains every shard, retires each shard's
//! accumulated delta through the fork/merge machinery (the retired base —
//! with every count it absorbed — is returned to the caller) and re-forks
//! every shard from the new base, without stopping a single worker thread
//! and without losing a unit of mass. [`Retrainer`] builds the full
//! re-training loop on top for [`opthash::OptHash`]: a sliding window of
//! recent arrivals, periodic warm-started re-solves (by default on a
//! background thread), and versioned [`TrainedScheme`] publication.
//!
//! ```
//! use opthash_engine::{EngineConfig, IngestEngine};
//! use opthash_sketch::CountMinSketch;
//! use opthash_stream::StreamElement;
//!
//! let mut engine = IngestEngine::new(
//!     CountMinSketch::new(1024, 4, 7),
//!     EngineConfig::with_shards(4),
//! );
//! for id in 0..1_000u64 {
//!     engine.ingest(&StreamElement::without_features(id % 10))?;
//! }
//! // Hot-swap in a wider sketch mid-stream. The old sketch comes back
//! // holding all 1_000 arrivals; the engine continues on the new one.
//! let retired = engine.swap_backend(CountMinSketch::new(4096, 4, 11))?;
//! assert_eq!(retired.query(5u64.into()), 100);
//! assert_eq!(engine.scheme_version(), 1);
//! engine.ingest(&StreamElement::without_features(5u64))?;
//! assert_eq!(engine.query_synced(&StreamElement::without_features(5u64))?, 1.0);
//! assert_eq!(engine.stats().unaccounted_mass(), 0);
//! # Ok::<(), opthash_engine::EngineError>(())
//! ```
//!
//! Wait-free reads: [`IngestEngine::query`] answers from the latest
//! published snapshot set without waiting on ingestion, stamped with the
//! per-shard epochs and mass it covers, and [`SnapshotReader`] hands that
//! capability to concurrent reader threads:
//!
//! ```
//! use opthash_engine::{EngineConfig, IngestEngine};
//! use opthash_sketch::CountMinSketch;
//! use opthash_stream::StreamElement;
//!
//! let mut engine = IngestEngine::new(
//!     CountMinSketch::new(1024, 4, 7),
//!     EngineConfig::with_shards(2),
//! );
//! for id in 0..5_000u64 {
//!     engine.ingest(&StreamElement::without_features(id % 50))?;
//! }
//! engine.flush()?;
//! // `query` needs no `&mut` and cannot block behind the flush barrier.
//! let answer = engine.query(&StreamElement::without_features(7u64));
//! assert_eq!(answer.estimate, 100.0);
//! assert_eq!(answer.stamp.scheme_version, 0);
//! assert_eq!(answer.stamp.mass_accounted, 5_000); // post-flush: everything
//! // A cloneable reader serves other threads, outliving even the engine.
//! let reader = engine.snapshot_reader();
//! let from_thread = std::thread::spawn(move || {
//!     reader.query(&StreamElement::without_features(7u64)).estimate
//! })
//! .join()
//! .unwrap();
//! assert_eq!(from_thread, 100.0);
//! # Ok::<(), opthash_engine::EngineError>(())
//! ```
//!
//! ```
//! use opthash_engine::{EngineConfig, IngestEngine};
//! use opthash_sketch::CountMinSketch;
//! use opthash_stream::StreamElement;
//!
//! let sketch = CountMinSketch::new(1024, 4, 7);
//! let mut engine = IngestEngine::new(sketch, EngineConfig::with_shards(4));
//! for id in 0..10_000u64 {
//!     engine.ingest(&StreamElement::without_features(id % 100))?;
//! }
//! let hot = engine.query_synced(&StreamElement::without_features(5u64))?;
//! assert_eq!(hot, 100.0);
//! // The engine aggregated the 100 duplicate arrivals of each ID.
//! assert!(engine.stats().aggregation_factor() > 1.0);
//! # Ok::<(), opthash_engine::EngineError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod engine;
pub mod error;
pub mod fault;
mod queue;
pub mod retrain;
pub mod snapshot;
mod worker;

pub use backend::SketchBackend;
pub use engine::{BackpressurePolicy, EngineConfig, EngineStats, IngestEngine, IngestMode};
pub use error::EngineError;
#[cfg(feature = "failpoints")]
pub use fault::{FaultAction, FaultPlan};
pub use fault::{FaultEvent, FaultInjector, FaultLog};
pub use retrain::{RetrainConfig, RetrainStats, Retrainer, TrainedScheme};
pub use snapshot::{EpochStamp, SnapshotEstimate, SnapshotReader};
