//! # opthash-engine
//!
//! A sharded, batched ingestion engine that lets every frequency estimator
//! in the workspace — the randomized baselines of `opthash-sketch` *and* the
//! learned `opt-hash` estimators of the core crate — absorb heavy update
//! traffic through one interface:
//!
//! * [`SketchBackend`] — weighted update / point query / fork / merge /
//!   space accounting, implemented by [`opthash_sketch::CountMinSketch`],
//!   [`opthash_sketch::CountSketch`], [`opthash_sketch::LearnedCountMin`],
//!   [`opthash_sketch::MisraGries`], [`opthash::OptHash`] and
//!   [`opthash::AdaptiveOptHash`];
//! * [`IngestEngine`] — hash-partitions arrivals by element ID across `N`
//!   shards, pre-aggregates each shard's batch (duplicates collapse into one
//!   weighted update — on the Zipfian streams the paper studies most
//!   arrivals are duplicates), applies full batches on scoped worker
//!   threads, and merges shard forks on query.
//!
//! Sharding by ID makes the engine *exact* for the linear backends and for
//! the adaptive estimator: queries of a sharded engine equal those of the
//! same backend fed sequentially (see the [`SketchBackend`] docs for the
//! precise contract).
//!
//! ```
//! use opthash_engine::{EngineConfig, IngestEngine};
//! use opthash_sketch::CountMinSketch;
//! use opthash_stream::StreamElement;
//!
//! let sketch = CountMinSketch::new(1024, 4, 7);
//! let mut engine = IngestEngine::new(sketch, EngineConfig::with_shards(4));
//! for id in 0..10_000u64 {
//!     engine.ingest(&StreamElement::without_features(id % 100));
//! }
//! let hot = engine.query(&StreamElement::without_features(5u64));
//! assert_eq!(hot, 100.0);
//! // The engine aggregated the 100 duplicate arrivals of each ID.
//! assert!(engine.stats().aggregation_factor() > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod engine;

pub use backend::SketchBackend;
pub use engine::{EngineConfig, EngineStats, IngestEngine};
