//! Fault handling as a first-class subsystem: the [`FaultLog`] records every
//! robustness event the engine survives (batch panics, quarantines, worker
//! restarts, shard poisonings), and — behind the `failpoints` cargo feature —
//! the [`FaultInjector`] drives *deterministic* fault injection at named
//! points on the ingest/flush/worker paths.
//!
//! # Failpoints
//!
//! With `--features failpoints`, the engine consults its injector at these
//! named points (a `@<shard>` suffix scopes a program to one shard, e.g.
//! `"worker::poll@2"`):
//!
//! | name                    | where it fires                               |
//! |-------------------------|----------------------------------------------|
//! | `engine::ingest`        | entry of every ingest call (error/delay)     |
//! | `engine::dispatch`      | before a batch is enqueued (error/delay)     |
//! | `worker::poll`          | top of the worker loop, outside batch apply  |
//! | `worker::batch`         | once per batch, before its first update      |
//! | `worker::apply`         | before every single update of a batch        |
//! | `worker::before_commit` | after a batch applied, before it is recorded |
//! | `worker::checkpoint`    | inside the snapshot-swap critical section    |
//! | `worker::swap`          | on a hot-swap request, before any mutation   |
//!
//! A panic at `worker::poll` or `worker::before_commit` kills the worker
//! thread (exercising supervisor restart + queue replay); a panic at
//! `worker::apply`/`worker::batch` is caught and exercises batch retry and
//! quarantine; a panic at `worker::checkpoint` poisons the shard
//! (exercising the typed [`crate::EngineError::ShardPoisoned`] query path);
//! a delay at `worker::batch` throttles a shard's drain rate (exercising
//! backpressure); a panic at `worker::swap` kills the worker *during a
//! scheme hot-swap* with the swap request still pending — the supervisor's
//! replacement worker rebuilds the pre-swap scratch and redoes the swap,
//! exercising the exactly-once publish protocol of
//! [`crate::IngestEngine::swap_backend`]. Without the feature every hook
//! compiles to nothing.
//!
//! The injector is **engine-scoped**, not process-global: every engine owns
//! its own registry (shared with its workers), so concurrently running
//! engines — and concurrently running tests — never interfere.

use std::sync::{Arc, Mutex};
#[cfg(feature = "failpoints")]
use std::time::Duration;

use crate::error::EngineError;

// ---------------------------------------------------------------------------
// Fault injection (failpoints feature)
// ---------------------------------------------------------------------------

/// What a programmed failpoint does when it fires.
#[cfg(feature = "failpoints")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a message naming the failpoint. On a worker path the
    /// panic is either caught (batch isolation) or kills the worker thread
    /// (supervisor restart), depending on the point.
    Panic,
    /// Sleep for the given duration, simulating a slow shard. Used to drive
    /// overload deterministically: delaying `worker::batch` pins a shard's
    /// drain rate so an offered stream exceeds it by a known factor.
    Delay(Duration),
    /// Return [`EngineError::FaultInjected`] from failpoints on fallible
    /// paths (`engine::ingest`, `engine::dispatch`). Ignored at
    /// infallible points.
    Error,
}

/// A deterministic schedule for one failpoint: *which hits* fire.
///
/// Hits are counted per failpoint name (including the `@shard` suffix if
/// one was used). The plan skips the first `skip` hits, then fires on the
/// next `times` hits, then disarms.
#[cfg(feature = "failpoints")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    action: FaultAction,
    skip: u64,
    times: u64,
}

#[cfg(feature = "failpoints")]
impl FaultPlan {
    /// A plan that panics on every hit (narrow it with [`FaultPlan::on_hit`]
    /// / [`FaultPlan::after`] / [`FaultPlan::times`]).
    pub fn panic() -> Self {
        FaultPlan {
            action: FaultAction::Panic,
            skip: 0,
            times: u64::MAX,
        }
    }

    /// A plan that delays every hit by `duration`.
    pub fn delay(duration: Duration) -> Self {
        FaultPlan {
            action: FaultAction::Delay(duration),
            skip: 0,
            times: u64::MAX,
        }
    }

    /// A plan that makes fallible failpoints return
    /// [`EngineError::FaultInjected`] on every hit.
    pub fn error() -> Self {
        FaultPlan {
            action: FaultAction::Error,
            skip: 0,
            times: u64::MAX,
        }
    }

    /// Fires exactly once, on the `k`-th hit (1-based).
    pub fn on_hit(mut self, k: u64) -> Self {
        self.skip = k.saturating_sub(1);
        self.times = 1;
        self
    }

    /// Skips the first `k` hits before the plan can fire.
    pub fn after(mut self, k: u64) -> Self {
        self.skip = k;
        self
    }

    /// Fires on at most `n` hits (after any skipped ones), then disarms.
    pub fn times(mut self, n: u64) -> Self {
        self.times = n;
        self
    }
}

#[cfg(feature = "failpoints")]
#[derive(Debug)]
struct PointState {
    plan: FaultPlan,
    hits: u64,
    fired: u64,
}

#[cfg(feature = "failpoints")]
impl PointState {
    fn poll(&mut self) -> Option<FaultAction> {
        self.hits += 1;
        if self.hits <= self.plan.skip || self.fired >= self.plan.times {
            return None;
        }
        self.fired += 1;
        Some(self.plan.action)
    }
}

#[cfg(feature = "failpoints")]
#[derive(Debug, Default)]
struct Registry {
    armed: std::sync::atomic::AtomicBool,
    points: Mutex<std::collections::HashMap<String, PointState>>,
}

/// Handle to an engine's fault-injection registry.
///
/// Cloning is cheap and every clone programs the same registry; the engine
/// hands clones to its shard workers so failpoints fire on worker threads
/// too. Without the `failpoints` cargo feature this is a zero-sized no-op:
/// hooks compile away and nothing can be programmed.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    #[cfg(feature = "failpoints")]
    registry: Arc<Registry>,
}

impl FaultInjector {
    /// Creates an empty injector (no failpoints programmed).
    pub fn new() -> Self {
        FaultInjector::default()
    }
}

#[cfg(feature = "failpoints")]
impl FaultInjector {
    /// Programs `name` with `plan`, replacing any previous program and
    /// resetting its hit counter. Scope a program to one shard by suffixing
    /// the shard index: `"worker::apply@0"`.
    ///
    /// # Example: surviving a worker death
    ///
    /// Kill one shard's worker mid-stream and watch the engine recover —
    /// the supervisor re-forks the shard from its last checkpoint, replays
    /// the surviving queue, and the answers come out as if nothing
    /// happened:
    ///
    /// ```
    /// use opthash_engine::{EngineConfig, FaultPlan, IngestEngine};
    /// use opthash_sketch::CountMinSketch;
    /// use opthash_stream::StreamElement;
    ///
    /// let mut engine = IngestEngine::new(
    ///     CountMinSketch::new(256, 4, 1),
    ///     EngineConfig::with_shards(2).batch_capacity(16),
    /// );
    /// // Shard 0's worker dies on its 5th event-loop iteration.
    /// engine
    ///     .fault_injector()
    ///     .program("worker::poll@0", FaultPlan::panic().on_hit(5));
    ///
    /// for id in 0..10_000u64 {
    ///     engine.ingest(&StreamElement::without_features(id % 50))?;
    /// }
    /// // Count-Min never under-counts: 200 arrivals of each id survived
    /// // the crash (count-min may over-count on collisions, never under).
    /// assert!(engine.query_synced(&StreamElement::without_features(7u64))? >= 200.0);
    /// // The recovery is visible, not silent.
    /// assert!(engine.fault_log().worker_restarts() >= 1);
    /// let stats = engine.stats();
    /// assert!(stats.conserved());
    /// assert_eq!(stats.unaccounted_mass(), 0);
    /// # Ok::<(), opthash_engine::EngineError>(())
    /// ```
    pub fn program(&self, name: &str, plan: FaultPlan) {
        let mut points = self.registry.points.lock().expect("failpoint registry");
        points.insert(
            name.to_owned(),
            PointState {
                plan,
                hits: 0,
                fired: 0,
            },
        );
        self.registry
            .armed
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Removes every programmed failpoint.
    pub fn clear(&self) {
        let mut points = self.registry.points.lock().expect("failpoint registry");
        points.clear();
        self.registry
            .armed
            .store(false, std::sync::atomic::Ordering::Release);
    }

    /// Number of times the failpoint `name` has been hit (programmed points
    /// only; an unprogrammed name reports 0).
    pub fn hits(&self, name: &str) -> u64 {
        let points = self.registry.points.lock().expect("failpoint registry");
        points.get(name).map_or(0, |p| p.hits)
    }

    fn fire(&self, name: &'static str, shard: Option<usize>) -> Option<FaultAction> {
        if !self
            .registry
            .armed
            .load(std::sync::atomic::Ordering::Acquire)
        {
            return None;
        }
        let mut points = self.registry.points.lock().expect("failpoint registry");
        if let Some(shard) = shard {
            let scoped = format!("{name}@{shard}");
            if let Some(state) = points.get_mut(&scoped) {
                if let Some(action) = state.poll() {
                    return Some(action);
                }
            }
        }
        points.get_mut(name).and_then(PointState::poll)
    }

    /// Consults the failpoint on an infallible path: may panic or delay.
    /// The `Error` action is ignored here.
    pub(crate) fn hit_at(&self, name: &'static str, shard: Option<usize>) {
        match self.fire(name, shard) {
            Some(FaultAction::Panic) => panic!("failpoint '{name}' fired: injected panic"),
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(FaultAction::Error) | None => {}
        }
    }

    /// Consults the failpoint on a fallible path: may panic, delay, or
    /// return [`EngineError::FaultInjected`].
    pub(crate) fn hit_result_at(
        &self,
        name: &'static str,
        shard: Option<usize>,
    ) -> Result<(), EngineError> {
        match self.fire(name, shard) {
            Some(FaultAction::Panic) => panic!("failpoint '{name}' fired: injected panic"),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(FaultAction::Error) => Err(EngineError::FaultInjected { failpoint: name }),
            None => Ok(()),
        }
    }
}

#[cfg(not(feature = "failpoints"))]
impl FaultInjector {
    #[inline(always)]
    pub(crate) fn hit_at(&self, _name: &'static str, _shard: Option<usize>) {}

    #[inline(always)]
    pub(crate) fn hit_result_at(
        &self,
        _name: &'static str,
        _shard: Option<usize>,
    ) -> Result<(), EngineError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fault log
// ---------------------------------------------------------------------------

/// One robustness event the engine survived (or, for
/// [`FaultEvent::ShardPoisoned`], detected and fenced off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultEvent {
    /// A batch panicked mid-apply; the worker discarded its scratch state,
    /// rebuilt from the last checkpoint, and requeued the batch for retry.
    BatchPanicked {
        /// Shard whose batch panicked.
        shard: usize,
        /// 1-based application attempt that failed.
        attempt: u32,
        /// Count mass carried by the batch.
        mass: u64,
    },
    /// A batch exhausted its application attempts and was quarantined — set
    /// aside, fully accounted, retrievable via
    /// [`crate::IngestEngine::quarantined`] — instead of being retried
    /// forever.
    BatchQuarantined {
        /// Shard that quarantined the batch.
        shard: usize,
        /// Count mass set aside with the batch.
        mass: u64,
        /// Number of pre-aggregated updates in the batch.
        updates: usize,
    },
    /// A shard worker thread died; the supervisor re-forked a replacement
    /// from the shard's last checkpoint and replayed its surviving queue.
    WorkerRestarted {
        /// Shard whose worker was restarted.
        shard: usize,
        /// Generation of the replacement worker (the initial worker is
        /// generation 0).
        generation: u32,
    },
    /// A panic struck inside the shard's checkpoint critical section; the
    /// snapshot may be half-written, so the shard is fenced off and queries
    /// return [`crate::EngineError::ShardPoisoned`].
    ShardPoisoned {
        /// The poisoned shard.
        shard: usize,
    },
}

/// Append-only record of the robustness events an engine has handled.
///
/// Snapshot it with [`crate::IngestEngine::fault_log`]; a healthy run has
/// an empty log, and every recovery the engine performs is visible here
/// rather than happening silently.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
}

impl FaultLog {
    /// The recorded events, oldest first.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` if no fault has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Number of worker restarts recorded.
    pub fn worker_restarts(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::WorkerRestarted { .. }))
    }

    /// Number of batch panics recorded (each failed application attempt).
    pub fn batch_panics(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::BatchPanicked { .. }))
    }

    /// Number of batches quarantined.
    pub fn quarantines(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::BatchQuarantined { .. }))
    }

    /// Number of shards fenced off as poisoned.
    pub fn poisonings(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::ShardPoisoned { .. }))
    }

    fn count(&self, pred: impl Fn(&FaultEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    pub(crate) fn record(&mut self, event: FaultEvent) {
        self.events.push(event);
    }
}

/// Fault log shared between the engine front-end and its workers.
pub(crate) type SharedFaultLog = Arc<Mutex<FaultLog>>;

pub(crate) fn record(log: &SharedFaultLog, event: FaultEvent) {
    log.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .record(event);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_log_counts_by_kind() {
        let mut log = FaultLog::default();
        assert!(log.is_empty());
        log.record(FaultEvent::BatchPanicked {
            shard: 0,
            attempt: 1,
            mass: 10,
        });
        log.record(FaultEvent::WorkerRestarted {
            shard: 0,
            generation: 1,
        });
        log.record(FaultEvent::BatchQuarantined {
            shard: 1,
            mass: 7,
            updates: 3,
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.batch_panics(), 1);
        assert_eq!(log.worker_restarts(), 1);
        assert_eq!(log.quarantines(), 1);
        assert_eq!(log.poisonings(), 0);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn plans_fire_deterministically() {
        let injector = FaultInjector::new();
        injector.program("p", FaultPlan::error().on_hit(3));
        assert!(injector.hit_result_at("p", None).is_ok());
        assert!(injector.hit_result_at("p", None).is_ok());
        assert!(injector.hit_result_at("p", None).is_err());
        assert!(injector.hit_result_at("p", None).is_ok());
        assert_eq!(injector.hits("p"), 4);

        // Shard-scoped programs outrank unscoped ones.
        injector.program("q@1", FaultPlan::error());
        assert!(injector.hit_result_at("q", Some(0)).is_ok());
        assert!(injector.hit_result_at("q", Some(1)).is_err());
        injector.clear();
        assert!(injector.hit_result_at("q", Some(1)).is_ok());
    }
}
