//! The [`SketchBackend`] trait: one interface over every frequency
//! estimator in the workspace, designed around *weighted*, *mergeable*
//! updates so the sharded ingest engine can drive any of them.

use opthash::{AdaptiveOptHash, OptHash};
use opthash_sketch::{CountMinSketch, CountSketch, LearnedCountMin, MisraGries};
use opthash_stream::{FrequencyEstimator, SpaceReport, StreamElement};

/// A frequency estimator that the [`crate::IngestEngine`] can shard.
///
/// Compared to [`opthash_stream::FrequencyEstimator`] (one arrival per call,
/// no merging), a backend must support three extra capabilities:
///
/// 1. **weighted updates** ([`SketchBackend::ingest`]) so batches of
///    identical elements collapse into one call,
/// 2. **forking** ([`SketchBackend::fork`]): producing a *delta
///    accumulator* that shares the learned/hashed structure but starts from
///    zero counts,
/// 3. **merging** ([`SketchBackend::merge`]): folding a fork's delta back
///    into a full estimator.
///
/// # Exactness contract
///
/// All statements below assume the workspace's stream data model
/// ([`StreamElement`]): an element's feature vector is identical across
/// its appearances. The batching engine relies on this — it aggregates
/// duplicate arrivals of an ID within a batch window and applies them
/// through one representative element (the first seen), so a stream that
/// presents *different* features (or a mix of featured and featureless
/// arrivals) for the same ID may be routed differently than sequential
/// per-arrival processing would route it. Only the feature-consuming
/// backends ([`OptHash`]/[`AdaptiveOptHash`] classifier routing of
/// unstored elements) can observe the difference.
///
/// For the linear backends ([`CountMinSketch`] with the standard update
/// policy, [`CountSketch`], [`LearnedCountMin`], [`OptHash`]) fork + ingest +
/// merge over *any* partition of a stream reproduces the sequentially built
/// estimator exactly. [`AdaptiveOptHash`] is exact when the partition is
/// *by element ID* (each distinct ID confined to one fork) — exactly the
/// discipline the engine's hash partitioner enforces — up to Bloom
/// false positives, which a shard may resolve differently from a
/// sequential run because it cannot see bits set concurrently by sibling
/// shards; the divergence probability is bounded by the filter's
/// false-positive rate. [`MisraGries`] and the conservative-update
/// Count-Min are order-dependent: merged results may differ from
/// sequential ones but keep their deterministic error bounds.
///
/// # Why `Clone`?
///
/// The worker engine's crash-recovery protocol checkpoints each shard by
/// *cloning* its accumulated delta (snapshot = scratch state at the last
/// consistent point; recovery = clone the snapshot and replay the journal).
/// Cloning, unlike a fresh [`SketchBackend::fork`], preserves whole-stream
/// shard state — which [`AdaptiveOptHash`]'s promotion/Bloom machinery
/// needs for the exactness statement above to survive a restart. Every
/// estimator in the workspace is a plain bundle of counters and learned
/// structure, so `Clone` is derivable and costs `O(state size)`.
///
/// `Sync` is required because a scheme hot-swap
/// ([`crate::IngestEngine::swap_backend`]) shares one immutable new base
/// across every shard's channel by `Arc` until each worker has re-forked
/// from it; plain counter bundles are `Sync` automatically.
pub trait SketchBackend: Send + Sync + Clone {
    /// Applies `count` occurrences of `element`.
    ///
    /// Complexity: `O(depth)` hash-and-increment for the sketches, `O(1)`
    /// expected for the hash-table based estimators, amortized
    /// `O(capacity)` worst case for [`MisraGries`] evictions.
    fn ingest(&mut self, element: &StreamElement, count: u64);

    /// Applies a pre-aggregated batch of weighted updates — the unit the
    /// engine's workers hand over. Semantically identical to calling
    /// [`SketchBackend::ingest`] once per entry in order; backends may
    /// override it for locality (e.g. the Count-Min grid applies a batch
    /// row by row, keeping one 64 KB counter row cache-resident instead of
    /// striding the whole grid per update), provided the resulting state is
    /// the same as the sequential loop's.
    fn ingest_batch(&mut self, updates: &[(StreamElement, u64)]) {
        for (element, count) in updates {
            self.ingest(element, *count);
        }
    }

    /// Returns the estimated frequency of `element`.
    ///
    /// Complexity: `O(depth)` for the sketches, `O(1)` expected for stored
    /// elements of the learned estimators plus one classifier evaluation
    /// (`O(tree depth)` or `O(classes · features)`) for unseen elements.
    fn query(&self, element: &StreamElement) -> f64;

    /// Creates a shard-local delta accumulator: same configuration, seeds
    /// and learned structure, zero counts.
    ///
    /// Space: a fork costs the same counter memory as its parent (counters
    /// are replicated per shard), except [`MisraGries`] whose fork starts
    /// empty. Learned structures (hash table, classifier) are cloned, not
    /// retrained.
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Folds a fork's accumulated delta into this estimator.
    ///
    /// Complexity: `O(state size)` — counters are combined element-wise;
    /// no per-update work is replayed. Merging is commutative and (for the
    /// linear backends) associative, so shards can be folded in any order.
    fn merge(&mut self, shard: &Self)
    where
        Self: Sized;

    /// Itemized memory usage under the paper's accounting model
    /// (see [`opthash_stream::space`]).
    fn space_report(&self) -> SpaceReport;

    /// Short name for reports, e.g. `count-min`.
    fn backend_name(&self) -> &'static str;
}

impl SketchBackend for CountMinSketch {
    fn ingest(&mut self, element: &StreamElement, count: u64) {
        self.add(element.id, count);
    }

    fn ingest_batch(&mut self, updates: &[(StreamElement, u64)]) {
        self.add_batch(updates.iter().map(|(element, count)| (element.id, *count)));
    }

    fn query(&self, element: &StreamElement) -> f64 {
        CountMinSketch::query(self, element.id) as f64
    }

    fn fork(&self) -> Self {
        self.clone_empty()
    }

    fn merge(&mut self, shard: &Self) {
        CountMinSketch::merge(self, shard);
    }

    fn space_report(&self) -> SpaceReport {
        CountMinSketch::space_report(self)
    }

    fn backend_name(&self) -> &'static str {
        "count-min"
    }
}

impl SketchBackend for CountSketch {
    fn ingest(&mut self, element: &StreamElement, count: u64) {
        self.add(element.id, count);
    }

    fn query(&self, element: &StreamElement) -> f64 {
        // Clamp like the FrequencyEstimator impl: a frequency is never
        // negative.
        self.query_signed(element.id).max(0.0)
    }

    fn fork(&self) -> Self {
        self.clone_empty()
    }

    fn merge(&mut self, shard: &Self) {
        CountSketch::merge(self, shard);
    }

    fn space_report(&self) -> SpaceReport {
        CountSketch::space_report(self)
    }

    fn backend_name(&self) -> &'static str {
        "count-sketch"
    }
}

impl SketchBackend for LearnedCountMin {
    fn ingest(&mut self, element: &StreamElement, count: u64) {
        self.add(element.id, count);
    }

    fn query(&self, element: &StreamElement) -> f64 {
        LearnedCountMin::query(self, element.id) as f64
    }

    fn fork(&self) -> Self {
        self.clone_empty()
    }

    fn merge(&mut self, shard: &Self) {
        LearnedCountMin::merge(self, shard);
    }

    fn space_report(&self) -> SpaceReport {
        LearnedCountMin::space_report(self)
    }

    fn backend_name(&self) -> &'static str {
        "heavy-hitter"
    }
}

impl SketchBackend for MisraGries {
    fn ingest(&mut self, element: &StreamElement, count: u64) {
        self.add(element.id, count);
    }

    fn query(&self, element: &StreamElement) -> f64 {
        MisraGries::query(self, element.id) as f64
    }

    fn fork(&self) -> Self {
        self.clone_empty()
    }

    fn merge(&mut self, shard: &Self) {
        MisraGries::merge(self, shard);
    }

    fn space_report(&self) -> SpaceReport {
        MisraGries::space_report(self)
    }

    fn backend_name(&self) -> &'static str {
        "misra-gries"
    }
}

impl SketchBackend for OptHash {
    fn ingest(&mut self, element: &StreamElement, count: u64) {
        self.add(element, count);
    }

    fn query(&self, element: &StreamElement) -> f64 {
        FrequencyEstimator::estimate(self, element)
    }

    fn fork(&self) -> Self {
        self.fork_empty()
    }

    fn merge(&mut self, shard: &Self) {
        self.merge_counts(shard);
    }

    fn space_report(&self) -> SpaceReport {
        OptHash::space_report(self)
    }

    fn backend_name(&self) -> &'static str {
        "opt-hash"
    }
}

impl SketchBackend for AdaptiveOptHash {
    fn ingest(&mut self, element: &StreamElement, count: u64) {
        self.add(element, count);
    }

    fn query(&self, element: &StreamElement) -> f64 {
        FrequencyEstimator::estimate(self, element)
    }

    fn fork(&self) -> Self {
        self.fork_empty()
    }

    fn merge(&mut self, shard: &Self) {
        self.merge_counts(shard);
    }

    fn space_report(&self) -> SpaceReport {
        AdaptiveOptHash::space_report(self)
    }

    fn backend_name(&self) -> &'static str {
        "opt-hash-adaptive"
    }
}
