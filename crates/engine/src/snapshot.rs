//! Wait-free, epoch-stamped query snapshots.
//!
//! Every shard of an [`crate::IngestEngine`] owns a `PublishedSlot`: an
//! immutable `Arc` snapshot of the shard's accumulated delta, tagged with a
//! monotonically increasing **epoch** and the scheme version it was built
//! under. Workers publish into their slot at every checkpoint, at every
//! completed scheme hot-swap, and on clean exit — always *outside* the
//! shard's control critical section, and the slot lock itself wraps nothing
//! but an `Arc` store. A reader therefore never waits behind batch
//! application, a flush barrier, or a checkpoint clone: the worst case is
//! the nanoseconds another thread spends swapping two pointers.
//!
//! [`SnapshotReader`] assembles the latest published snapshot set into a
//! merged estimator view (cached until any epoch advances) and answers
//! point queries with a [`SnapshotEstimate`]: the estimate plus an
//! [`EpochStamp`] telling the caller exactly which per-shard epochs — and
//! how much applied mass — the answer covers.
//!
//! # Consistency across hot-swaps
//!
//! A scheme hot-swap ([`crate::IngestEngine::swap_backend`]) replaces every
//! shard's delta and then the shared base, so a naive reader could merge a
//! new-scheme base with an old-scheme shard delta (or vice versa) — a torn
//! mix. Two rules prevent that:
//!
//! 1. each shard's swap publication retains the *final old-scheme delta* as
//!    `prev`, so the pre-swap view stays assemblable until the base
//!    advances;
//! 2. the engine advances the shared `BaseSlot` only after **every**
//!    shard has published its new-scheme snapshot.
//!
//! A reader that loads the base at version `v` can thus always find a
//! version-`v` snapshot for every healthy shard (current or `prev`); on a
//! mismatch — a swap racing the read — it simply reloads and retries. The
//! stamped view is therefore always *all old scheme* or *all new scheme*,
//! never a mix. (A poisoned shard that can never complete its swap is the
//! one exception: after bounded retries the reader falls back to each
//! shard's newest snapshot, which the stamp's epochs make visible.)

use crate::backend::SketchBackend;
use opthash_stream::StreamElement;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Reload attempts before a reader gives up on assembling a
/// version-consistent snapshot set and falls back to the newest published
/// snapshots (only reachable when a shard is poisoned mid-swap).
const REBUILD_RETRIES: usize = 16;

/// Which prefix of the stream a snapshot query observed: the scheme
/// version and per-shard publication epochs behind the estimate, plus the
/// applied mass those snapshots account for.
///
/// Epochs are per-shard monotone: a later stamp can never report an older
/// epoch for any shard, so two stamps are ordered by comparing them
/// pointwise. The mass lets a caller bound staleness in stream units
/// rather than wall-clock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochStamp {
    /// The scheme version ([`crate::IngestEngine::scheme_version`]) every
    /// merged shard snapshot was built under.
    pub scheme_version: u64,
    /// Each shard's publication epoch, in shard order. An epoch advances
    /// whenever the shard checkpoints, completes a swap, or exits.
    pub epoch_per_shard: Arc<[u64]>,
    /// Total count mass applied into the stamped shard snapshots under
    /// `scheme_version` — mass admitted but not yet applied (buffered,
    /// queued, or inflight), or applied but not yet checkpointed, is not
    /// included; that is exactly the staleness the stamp makes visible.
    pub mass_accounted: u64,
}

/// A wait-free point-query answer: the estimate and the [`EpochStamp`]
/// identifying the snapshot set it was computed from.
#[derive(Debug, Clone)]
pub struct SnapshotEstimate {
    /// The estimated frequency under the stamped snapshot set.
    pub estimate: f64,
    /// Which prefix of the stream the estimate observed.
    pub stamp: EpochStamp,
}

/// One shard's published snapshot state (behind the slot lock).
#[derive(Debug)]
struct ShardSnapshot<B> {
    /// Publication epoch; mirrored into [`PublishedSlot::epoch`] for
    /// lock-free staleness checks.
    epoch: u64,
    /// Scheme version `delta` was accumulated under.
    version: u64,
    /// Applied count mass `delta` accounts for.
    mass: u64,
    /// The shard's checkpointed delta (immutable, shared with the shard's
    /// recovery snapshot — publication costs one `Arc` clone, not a state
    /// copy).
    delta: Arc<B>,
    /// The final delta of the previous scheme version, retained across a
    /// swap so readers whose base has not advanced yet still assemble a
    /// consistent pre-swap view: `(version, mass, delta)`.
    prev: Option<(u64, u64, Arc<B>)>,
}

/// A shard's publication slot. The lock inside wraps only `Arc` stores and
/// clones — it is never held across batch application, checkpoint clones,
/// or barrier waits, which is what makes snapshot reads wait-free in
/// practice.
#[derive(Debug)]
pub(crate) struct PublishedSlot<B> {
    /// Lock-free mirror of the locked state's epoch: readers compare this
    /// against their cache before deciding to rebuild.
    epoch: AtomicU64,
    state: Mutex<ShardSnapshot<B>>,
}

impl<B: SketchBackend> PublishedSlot<B> {
    /// A slot holding `delta` (an empty fork at engine construction) at
    /// epoch 0, scheme version 0.
    pub fn new(delta: Arc<B>) -> Self {
        PublishedSlot {
            epoch: AtomicU64::new(0),
            state: Mutex::new(ShardSnapshot {
                epoch: 0,
                version: 0,
                mass: 0,
                delta,
                prev: None,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ShardSnapshot<B>> {
        // A poisoned slot lock (a reader or publisher panicked mid-store —
        // nothing in the critical section can, but be total) still holds a
        // fully written state: every field is assigned before the epoch.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The latest publication epoch (lock-free).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes a new checkpoint of the shard's delta under the current
    /// scheme version.
    pub fn publish(&self, delta: Arc<B>, mass: u64) {
        let mut state = self.lock();
        state.delta = delta;
        state.mass = mass;
        state.epoch += 1;
        self.epoch.store(state.epoch, Ordering::Release);
    }

    /// Publishes a completed scheme swap: `delta` is the fresh (empty)
    /// scratch under `version`, and the shard's final old-scheme delta is
    /// retained as `prev` (with its true `retired_mass`, which may exceed
    /// the last checkpointed mass) until the next swap.
    pub fn publish_swap(&self, version: u64, delta: Arc<B>, retired_mass: u64, retired: Arc<B>) {
        let mut state = self.lock();
        state.prev = Some((state.version, retired_mass, retired));
        state.version = version;
        state.mass = 0;
        state.delta = delta;
        state.epoch += 1;
        self.epoch.store(state.epoch, Ordering::Release);
    }

    /// The shard's published `(epoch, mass, delta)` under exactly
    /// `version`: the current snapshot if it matches, else the retained
    /// pre-swap delta. `None` when neither matches — the caller is racing
    /// a multi-version swap (or the shard is poisoned) and should reload
    /// the base.
    fn snapshot_for(&self, version: u64) -> Option<(u64, u64, Arc<B>)> {
        let state = self.lock();
        if state.version == version {
            return Some((state.epoch, state.mass, Arc::clone(&state.delta)));
        }
        match &state.prev {
            Some((v, mass, delta)) if *v == version => {
                Some((state.epoch, *mass, Arc::clone(delta)))
            }
            _ => None,
        }
    }

    /// The newest published snapshot regardless of version — the
    /// poisoned-shard fallback.
    fn newest(&self) -> (u64, u64, Arc<B>) {
        let state = self.lock();
        (state.epoch, state.mass, Arc::clone(&state.delta))
    }
}

/// The engine's shared base backend, versioned by completed scheme swaps.
/// Advanced only after every shard has published its new-scheme snapshot —
/// the ordering that makes torn-version reads impossible (see the module
/// docs).
#[derive(Debug)]
pub(crate) struct BaseSlot<B> {
    /// Lock-free mirror of the locked version, for staleness checks.
    version: AtomicU64,
    state: Mutex<(u64, Arc<B>)>,
}

impl<B: SketchBackend> BaseSlot<B> {
    pub fn new(base: Arc<B>) -> Self {
        BaseSlot {
            version: AtomicU64::new(0),
            state: Mutex::new((0, base)),
        }
    }

    /// The latest published scheme version (lock-free).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The current `(version, base)` pair, read consistently.
    fn load(&self) -> (u64, Arc<B>) {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        (state.0, Arc::clone(&state.1))
    }

    /// Publishes the post-swap base under its new version.
    pub fn store(&self, version: u64, base: Arc<B>) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *state = (version, base);
        self.version.store(version, Ordering::Release);
    }
}

/// Everything a reader needs: the versioned base plus one slot per shard.
#[derive(Debug)]
pub(crate) struct SnapshotHub<B> {
    pub base: BaseSlot<B>,
    pub shards: Vec<Arc<PublishedSlot<B>>>,
}

/// A reader's cached merged view, valid while no epoch advances.
struct MergedView<B> {
    version: u64,
    epochs: Vec<u64>,
    stamp: EpochStamp,
    merged: B,
}

/// A wait-free, epoch-stamped query handle over an engine's published
/// snapshots.
///
/// Obtained from [`crate::IngestEngine::snapshot_reader`]; `Clone` +
/// `Send` + `Sync`, so any number of reader threads can query concurrently
/// with ingestion — each clone keeps its own merged-view cache, so clones
/// never contend with each other. A reader remains usable after the engine
/// is finished or dropped; it then serves the last published snapshots.
///
/// A query is answered from the cached merged view when no shard has
/// published since the last rebuild (a handful of atomic loads plus one
/// backend point query); otherwise the reader re-merges the latest
/// snapshot `Arc`s — `O(shards × state)`, but never blocked behind the
/// engine's flush barrier or a worker's batch application.
pub struct SnapshotReader<B: SketchBackend> {
    hub: Arc<SnapshotHub<B>>,
    cache: Mutex<Option<MergedView<B>>>,
}

impl<B: SketchBackend> Clone for SnapshotReader<B> {
    fn clone(&self) -> Self {
        SnapshotReader {
            hub: Arc::clone(&self.hub),
            cache: Mutex::new(None),
        }
    }
}

impl<B: SketchBackend> std::fmt::Debug for SnapshotReader<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("shards", &self.hub.shards.len())
            .finish()
    }
}

impl<B: SketchBackend> SnapshotReader<B> {
    pub(crate) fn new(hub: Arc<SnapshotHub<B>>) -> Self {
        SnapshotReader {
            hub,
            cache: Mutex::new(None),
        }
    }

    /// Estimates `element`'s frequency from the latest published snapshot
    /// set, without waiting on ingestion — see the module docs for the
    /// staleness and consistency contract carried by the returned stamp.
    pub fn query(&self, element: &StreamElement) -> SnapshotEstimate {
        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        let view = self.fresh_view(&mut cache);
        SnapshotEstimate {
            estimate: view.merged.query(element),
            stamp: view.stamp.clone(),
        }
    }

    /// The stamp of the snapshot set a query issued now would observe.
    pub fn stamp(&self) -> EpochStamp {
        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        self.fresh_view(&mut cache).stamp.clone()
    }

    fn fresh_view<'a>(&self, cache: &'a mut Option<MergedView<B>>) -> &'a MergedView<B> {
        let stale = match cache.as_ref() {
            None => true,
            Some(view) => {
                self.hub.base.version() != view.version
                    || self
                        .hub
                        .shards
                        .iter()
                        .zip(&view.epochs)
                        .any(|(slot, &epoch)| slot.epoch() != epoch)
            }
        };
        if stale {
            *cache = Some(self.rebuild());
        }
        cache.as_ref().expect("cache was just rebuilt")
    }

    /// Assembles a version-consistent merged view; retries when a swap
    /// races the read, and falls back to newest-available snapshots only
    /// when a shard can never reach the base's version (poisoned mid-swap).
    fn rebuild(&self) -> MergedView<B> {
        for _ in 0..REBUILD_RETRIES {
            let (version, base) = self.hub.base.load();
            let mut epochs = Vec::with_capacity(self.hub.shards.len());
            let mut deltas = Vec::with_capacity(self.hub.shards.len());
            let mut mass = 0u64;
            let mut consistent = true;
            for slot in &self.hub.shards {
                match slot.snapshot_for(version) {
                    Some((epoch, shard_mass, delta)) => {
                        epochs.push(epoch);
                        mass += shard_mass;
                        deltas.push(delta);
                    }
                    None => {
                        consistent = false;
                        break;
                    }
                }
            }
            if consistent {
                return Self::assemble(version, base, epochs, mass, deltas);
            }
        }
        // Fallback: a shard is stuck at another version (poisoned mid-swap).
        // Serve the newest snapshot of every shard; the per-shard epochs in
        // the stamp make the inconsistency observable instead of silent.
        let (version, base) = self.hub.base.load();
        let mut epochs = Vec::with_capacity(self.hub.shards.len());
        let mut deltas = Vec::with_capacity(self.hub.shards.len());
        let mut mass = 0u64;
        for slot in &self.hub.shards {
            let (epoch, shard_mass, delta) = slot.newest();
            epochs.push(epoch);
            mass += shard_mass;
            deltas.push(delta);
        }
        Self::assemble(version, base, epochs, mass, deltas)
    }

    fn assemble(
        version: u64,
        base: Arc<B>,
        epochs: Vec<u64>,
        mass: u64,
        deltas: Vec<Arc<B>>,
    ) -> MergedView<B> {
        let mut merged = (*base).clone();
        for delta in &deltas {
            merged.merge(delta);
        }
        let stamp = EpochStamp {
            scheme_version: version,
            epoch_per_shard: epochs.clone().into(),
            mass_accounted: mass,
        };
        MergedView {
            version,
            epochs,
            stamp,
            merged,
        }
    }
}
