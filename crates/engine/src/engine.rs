//! The sharded, batched, fault-isolated [`IngestEngine`].

use crate::backend::SketchBackend;
use crate::error::EngineError;
use crate::fault::{self, FaultEvent, FaultInjector, FaultLog, SharedFaultLog};
use crate::queue::{BatchData, QueuedBatch, ShardChannel, ShardCounters};
use crate::snapshot::{
    BaseSlot, EpochStamp, PublishedSlot, SnapshotEstimate, SnapshotHub, SnapshotReader,
};
use crate::worker::{apply_batch, apply_batch_injected, spawn_worker, ShardHandle, WorkerConfig};
use opthash::MassLedger;
use opthash_stream::{SpaceReport, Stream, StreamElement};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the engine waits on a shard condvar before re-checking worker
/// health: short enough that a dead worker is re-forked promptly, long
/// enough that a healthy blocked engine costs ~no CPU.
const SUPERVISE_TICK: Duration = Duration::from_millis(2);

/// One-multiply Fibonacci mixer (xor-fold, golden-ratio multiply,
/// xor-fold): the engine's stateless router hash. The multiplier choice is
/// load-bearing: with a multiplier `C` close to `2^64` (e.g. the first
/// MurmurHash3 constant), `x * C mod 2^64 ≈ 2^64 − x·(2^64 − C)` sits in a
/// sliver just below all-ones for small dense IDs, so the high 32 bits are
/// nearly constant and dense universes route almost entirely to the last
/// shard. The golden-ratio multiplier `⌊2^64/φ⌋` advances the high bits by
/// ≈0.618·2^64 per consecutive key (Fibonacci hashing), spreading dense and
/// strided IDs evenly across shards (high bits) and batch slots (low bits);
/// the leading xor-fold propagates high key bits downward so IDs differing
/// only above bit 33 still mix.
#[inline]
fn mix64(x: u64) -> u64 {
    let z = (x ^ (x >> 33)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^ (z >> 29)
}

/// How shard batches are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// **Always-on workers** (the default): each shard owns a persistent
    /// worker thread fed by a bounded queue, so batch application overlaps
    /// ingestion and all cores stay busy between flushes. Workers are
    /// panic-isolated and supervised (see the crate docs).
    #[default]
    Workers,
    /// **Flush-time application**: batches are applied on the calling
    /// thread (or scoped threads during an explicit [`IngestEngine::flush`]).
    /// No worker threads, no queues — backpressure policies do not apply.
    /// Kept as the pre-worker baseline for benchmarking and for contexts
    /// where spawning threads is undesirable.
    Inline,
}

/// What the engine does when an arrival routes to a shard whose worker
/// queue is full (worker mode only).
///
/// Every policy upholds the same conservation invariant, checked by
/// [`EngineStats::conserved`]: offered mass = accepted + rejected +
/// degraded mass. Nothing is ever dropped silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the ingesting thread until the shard drains (lossless,
    /// unbounded latency). The default.
    #[default]
    Block,
    /// Reject the arrival with [`EngineError::Overloaded`] (bounded
    /// latency; the caller decides how to shed load). Rejections are
    /// counted in the `rejected` bucket of the engine's ledgers.
    Reject,
    /// Keep absorbing arrivals into the shard's pre-aggregating batch
    /// buffer past its normal batch size (growing it as needed) —
    /// duplicate-heavy traffic collapses in place, so mass is never lost
    /// and latency stays bounded at the cost of buffer memory and batch
    /// staleness. Arrivals admitted this way are counted in the `degraded`
    /// bucket.
    DegradeAggregate,
}

/// Configuration of an [`IngestEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of shards the key space is hash-partitioned into. Each shard
    /// owns a fork of the backend and (in worker mode) a persistent worker
    /// thread.
    pub shards: usize,
    /// Number of *distinct* elements a shard buffers before its batch is
    /// dispatched. Larger batches aggregate more duplicate arrivals (a big
    /// win on skewed streams) at the cost of staleness and buffer memory.
    pub batch_capacity: usize,
    /// Whether batches are applied by persistent workers or at flush time.
    pub mode: IngestMode,
    /// Overload behaviour when a shard's worker queue is full.
    pub backpressure: BackpressurePolicy,
    /// Bounded depth of each shard's worker queue, in batches.
    pub queue_capacity: usize,
    /// Application attempts before a panicking batch is quarantined as a
    /// poison pill instead of being retried forever.
    pub max_batch_attempts: u32,
    /// Committed batches between worker checkpoints. Smaller values bound
    /// recovery replay tighter; larger values amortize the O(state)
    /// snapshot clone over more batches.
    pub checkpoint_interval: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            batch_capacity: 8_192,
            mode: IngestMode::Workers,
            backpressure: BackpressurePolicy::Block,
            queue_capacity: 8,
            max_batch_attempts: 3,
            checkpoint_interval: 8,
        }
    }
}

impl EngineConfig {
    /// A configuration with `shards` shards and the remaining defaults.
    pub fn with_shards(shards: usize) -> Self {
        EngineConfig {
            shards,
            ..EngineConfig::default()
        }
    }

    /// Sets the per-shard batch capacity.
    pub fn batch_capacity(mut self, batch_capacity: usize) -> Self {
        self.batch_capacity = batch_capacity;
        self
    }

    /// Sets the ingest mode.
    pub fn mode(mut self, mode: IngestMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the backpressure policy (worker mode only).
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    /// Sets the per-shard worker queue depth, in batches.
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets the poison-pill quarantine threshold.
    pub fn max_batch_attempts(mut self, attempts: u32) -> Self {
        self.max_batch_attempts = attempts.max(1);
        self
    }

    /// Sets the worker checkpoint interval, in committed batches.
    pub fn checkpoint_interval(mut self, batches: u32) -> Self {
        self.checkpoint_interval = batches.max(1);
        self
    }
}

/// Counters describing what an [`IngestEngine`] has done so far — a
/// consistent snapshot assembled by [`IngestEngine::stats`].
///
/// The two [`MassLedger`]s carry the engine's conservation invariant: under
/// every [`BackpressurePolicy`], offered = accepted + rejected + degraded,
/// for arrival counts (`elements`) and weighted count mass (`mass`) alike.
/// [`EngineStats::unaccounted_mass`] additionally audits where admitted
/// mass currently sits (applied, buffered, queued, or quarantined); after a
/// [`IngestEngine::flush`] it must be exactly zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Conservation ledger over arrivals (each ingest call is one unit).
    pub elements: MassLedger,
    /// Conservation ledger over weighted count mass.
    pub mass: MassLedger,
    /// Weight-0 updates rejected at the API boundary (carry no mass, so
    /// they are excluded from the ledgers).
    pub zero_weight_rejections: u64,
    /// Flush passes performed (explicit or query-forced).
    pub flushes: u64,
    /// Weighted updates applied to shard backends. The ratio of admitted
    /// elements to applied updates is the batching win: duplicate arrivals
    /// of an element within a batch collapse into one update.
    pub applied_updates: u64,
    /// Count mass applied to shard backends.
    pub applied_mass: u64,
    /// Distinct elements currently pending in shard batch buffers.
    pub buffered_updates: u64,
    /// Count mass currently pending in shard batch buffers.
    pub buffered_mass: u64,
    /// Count mass dispatched to worker queues but not yet applied.
    pub queued_mass: u64,
    /// Pre-aggregated updates set aside in poison-pill quarantine.
    pub quarantined_updates: u64,
    /// Count mass set aside in poison-pill quarantine.
    pub quarantined_mass: u64,
    /// Batch application attempts that panicked (caught and retried or
    /// quarantined).
    pub batch_failures: u64,
    /// Shard workers re-forked by the supervisor after a death.
    pub worker_restarts: u64,
}

impl EngineStats {
    /// Arrivals admitted into the engine (accepted + degraded).
    pub fn ingested_elements(&self) -> u64 {
        self.elements.admitted()
    }

    /// Count mass admitted into the engine (accepted + degraded).
    pub fn ingested_mass(&self) -> u64 {
        self.mass.admitted()
    }

    /// Average number of arrivals collapsed into one applied update
    /// (1.0 = no aggregation; higher is better).
    pub fn aggregation_factor(&self) -> f64 {
        if self.applied_updates == 0 {
            1.0
        } else {
            self.ingested_elements() as f64 / self.applied_updates as f64
        }
    }

    /// The intake conservation invariant: every offered arrival and every
    /// unit of offered mass is accounted as accepted, rejected, or
    /// degraded.
    pub fn conserved(&self) -> bool {
        self.elements.conserved() && self.mass.conserved()
    }

    /// Admitted mass not locatable in the engine (not applied, buffered,
    /// queued, or quarantined). Zero at all times for a healthy engine;
    /// after [`IngestEngine::flush`] anything other than zero means mass
    /// was lost (negative: double-counted).
    pub fn unaccounted_mass(&self) -> i128 {
        self.mass.admitted() as i128
            - self.applied_mass as i128
            - self.buffered_mass as i128
            - self.queued_mass as i128
            - self.quarantined_mass as i128
    }
}

/// One shard's pending batch: a small open-addressing table keyed by element
/// ID that pre-aggregates duplicate arrivals into weighted updates.
///
/// Layout is chosen for the ingest hot path: the probe loop touches only a
/// flat `(id, count)` array (16 bytes per slot, one cache line per arrival
/// for the hot head of a skewed stream). Feature vectors — needed only by
/// the learned backends for elements that carry them — live in a lazily
/// allocated side table that the probe loop never reads. A slot is empty
/// iff its count is zero: weight-0 updates are rejected at the engine API
/// boundary ([`EngineError::ZeroWeight`]) precisely so that a real arrival
/// can never be mistaken for an empty slot.
///
/// The table is sized for a maximum load factor of 3/4, so an upsert probes
/// O(1) expected slots. Under [`BackpressurePolicy::DegradeAggregate`] the
/// buffer may be asked to hold more than its configured batch capacity; it
/// then grows (doubling and rehashing) to keep the load factor bounded, so
/// aggregation continues instead of mass being dropped.
#[derive(Debug)]
struct BatchBuffer {
    /// `(element id, pending count)`; `count == 0` marks an empty slot.
    /// Length is always a power of two.
    entries: Vec<(u64, u64)>,
    /// Parallel side table holding the first-seen element for IDs whose
    /// features are non-empty; allocated on first such insert.
    featured: Vec<Option<StreamElement>>,
    len: usize,
    limit: usize,
}

impl BatchBuffer {
    fn new(batch_capacity: usize) -> Self {
        let limit = batch_capacity.max(1);
        // Size for a maximum load factor of 3/4: expected probe chains stay
        // short (the table is far emptier than that for most of a window)
        // while the cache footprint per unit of batch capacity stays small.
        let slots = (limit * 4 / 3 + 1).next_power_of_two();
        BatchBuffer {
            entries: vec![(0, 0); slots],
            featured: Vec::new(),
            len: 0,
            limit,
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` once the buffer holds its configured batch capacity of
    /// distinct elements and should be dispatched before growing further.
    #[inline]
    fn is_at_limit(&self) -> bool {
        self.len >= self.limit
    }

    /// Adds `count > 0` arrivals of `element`. The element is cloned only
    /// when a *featured* element occupies a slot for the first time —
    /// duplicate arrivals (the common case on skewed streams) touch nothing
    /// but the 16-byte entry.
    ///
    /// Returns `true` when this upsert brought the buffer to its batch
    /// limit — computed on the insert branch only, so the duplicate-bump
    /// hot path pays for no limit check at all. (A buffer already past its
    /// limit — degraded mode — reports `false` for duplicate bumps; callers
    /// that care about standing fullness use [`BatchBuffer::is_at_limit`].)
    #[inline]
    fn upsert(&mut self, hash: u64, element: &StreamElement, count: u64) -> bool {
        debug_assert!(count > 0, "zero-weight updates are rejected upstream");
        let key = element.id.raw();
        // Deriving the mask from `entries.len()` (a power of two) lets the
        // compiler prove the probe index in bounds and elide the checks.
        let mask = self.entries.len() - 1;
        let mut idx = hash as usize & mask;
        loop {
            let entry = &mut self.entries[idx];
            if entry.1 != 0 {
                if entry.0 == key {
                    entry.1 += count;
                    return false;
                }
                idx = (idx + 1) & mask;
                continue;
            }
            *entry = (key, count);
            if !element.features.is_empty() {
                if self.featured.is_empty() {
                    self.featured = vec![None; self.entries.len()];
                }
                self.featured[idx] = Some(element.clone());
            }
            self.len += 1;
            // Growth is only reachable past the batch limit (degraded
            // mode): the normal dispatch path drains the buffer at `limit`,
            // well under the 3/4 load factor this check maintains. Checking
            // on insert only keeps it off the duplicate-bump hot path, and
            // growing *after* the insert is sound — the rehash carries the
            // new entry along.
            if self.len * 4 >= self.entries.len() * 3 {
                self.grow();
            }
            return self.len >= self.limit;
        }
    }

    /// Doubles the slot table and rehashes every pending entry.
    fn grow(&mut self) {
        let new_slots = self.entries.len() * 2;
        let old_entries = std::mem::replace(&mut self.entries, vec![(0, 0); new_slots]);
        let had_featured = !self.featured.is_empty();
        let mut old_featured = std::mem::replace(
            &mut self.featured,
            if had_featured {
                vec![None; new_slots]
            } else {
                Vec::new()
            },
        );
        let mask = new_slots - 1;
        for (old_idx, &(key, count)) in old_entries.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let mut idx = mix64(key) as usize & mask;
            while self.entries[idx].1 != 0 {
                idx = (idx + 1) & mask;
            }
            self.entries[idx] = (key, count);
            if had_featured {
                self.featured[idx] = old_featured[old_idx].take();
            }
        }
    }

    /// Requests the cache line of `hash`'s home slot ahead of its upsert.
    /// Issued from [`IngestEngine::ingest_batch`]'s lookahead so that cold
    /// slots are already in cache when the probe reaches them.
    #[inline]
    fn prefetch(&self, hash: u64) {
        let idx = hash as usize & (self.entries.len() - 1);
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `idx` is in bounds by the mask, and prefetching any
        // mapped address has no observable effect beyond the caches.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.entries.as_ptr().add(idx).cast::<i8>(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = idx;
    }

    /// Count mass currently pending in the buffer. Computed by scanning the
    /// slot table so the upsert hot path doesn't maintain a running total;
    /// callers are cold paths (stats snapshots).
    fn pending_mass(&self) -> u64 {
        self.entries.iter().map(|&(_, count)| count).sum()
    }

    /// Drains every pending entry into an immutable batch for dispatch.
    fn drain_to_batch(&mut self) -> BatchData {
        let mut updates = Vec::with_capacity(self.len);
        let mut mass = 0u64;
        for idx in 0..self.entries.len() {
            let (key, count) = self.entries[idx];
            if count == 0 {
                continue;
            }
            self.entries[idx] = (0, 0);
            mass += count;
            match self.featured.get_mut(idx).and_then(Option::take) {
                Some(element) => updates.push((element, count)),
                None => updates.push((StreamElement::without_features(key), count)),
            }
        }
        self.len = 0;
        BatchData { updates, mass }
    }
}

/// Mode-specific engine state.
enum ModeState<B: SketchBackend> {
    Inline {
        shards: Vec<B>,
        poisoned: Vec<bool>,
        counters: ShardCounters,
        quarantined: Vec<Arc<BatchData>>,
        /// Count mass applied into each shard backend under the current
        /// scheme version — what an inline snapshot publication stamps.
        applied_mass: Vec<u64>,
        /// Mass last published to each shard's query-snapshot slot; a flush
        /// republishes only shards whose applied mass moved, so idle shards
        /// pay no clone.
        published_mass: Vec<u64>,
    },
    Workers {
        handles: Vec<ShardHandle<B>>,
    },
}

enum DispatchOutcome {
    Dispatched,
    QueueFull,
}

/// A sharded, batched, fault-isolated ingestion front-end for any
/// [`SketchBackend`].
///
/// Arrivals are hash-partitioned by element ID across `N` shards. Each shard
/// buffers its arrivals in a pre-aggregating batch (duplicate IDs collapse
/// into one weighted update — a large win on the skewed streams the paper
/// studies). In the default [`IngestMode::Workers`], full batches are fed
/// through a bounded queue to the shard's **persistent worker thread**, so
/// application overlaps ingestion and all cores stay busy between flushes;
/// overload behaviour is governed by the configured [`BackpressurePolicy`].
///
/// # Two read paths
///
/// * [`IngestEngine::query`] is **wait-free**: it answers from the latest
///   epoch-stamped snapshot set the workers have published (see
///   [`crate::snapshot`]), never touching the flush barrier, and returns a
///   [`SnapshotEstimate`] whose [`EpochStamp`] says exactly which prefix
///   of the stream it observed. [`IngestEngine::snapshot_reader`] hands
///   the same capability to other threads.
/// * [`IngestEngine::query_synced`] is **barrier-synced**: it flushes,
///   waits for every worker to checkpoint, and merges the shard snapshots
///   (cached until the next ingest), so the answer covers every admitted
///   arrival.
///
/// After a flush with no further ingestion the two paths agree exactly.
///
/// # Robustness
///
/// Worker-mode engines treat failure as a first-class input (see the
/// crate-level docs for the full model): batch application is
/// panic-isolated, poison-pill batches are quarantined after a bounded
/// number of attempts, dead workers are re-forked from their shard's last
/// checkpoint with the surviving queue replayed, and every such event is
/// recorded in the [`FaultLog`]. The fallible operations return
/// [`EngineError`] instead of panicking, and [`EngineStats`] carries
/// conservation ledgers proving no arrival is ever silently dropped.
///
/// # Exactness
///
/// Because the partition is *by ID*, every distinct element lives in
/// exactly one shard, which makes sharding exact for all linear backends
/// **and** for [`opthash::AdaptiveOptHash`]. Exactness assumes each ID's
/// features are identical across appearances, as [`StreamElement`]
/// specifies: within a batch window duplicate arrivals are applied through
/// the ID's first-seen element (see [`SketchBackend`] for the full
/// contract).
///
/// # Memory
///
/// The engine keeps `2 × shards + 1` copies of the backend's counter state
/// in worker mode (the pristine base, plus each shard's checkpoint snapshot
/// and worker scratch copy — the published query snapshot shares the
/// checkpoint's allocation), plus up to
/// `queue_capacity + checkpoint_interval` batches per shard in flight,
/// trading memory for ingest throughput and crash recoverability. Each live
/// [`SnapshotReader`] additionally caches one merged view.
pub struct IngestEngine<B: SketchBackend> {
    base: B,
    buffers: Vec<BatchBuffer>,
    mode: ModeState<B>,
    merged: Option<B>,
    hub: Arc<SnapshotHub<B>>,
    reader: SnapshotReader<B>,
    config: EngineConfig,
    elements: MassLedger,
    mass: MassLedger,
    zero_weight_rejections: u64,
    flushes: u64,
    /// Number of completed [`IngestEngine::swap_backend`] scheme swaps.
    scheme_version: u64,
    dirty: bool,
    faults: FaultInjector,
    fault_log: SharedFaultLog,
}

impl<B: SketchBackend + 'static> IngestEngine<B> {
    /// Wraps `backend` in an engine with the given configuration. In
    /// [`IngestMode::Workers`] the per-shard worker threads start
    /// immediately and live until the engine is finished or dropped.
    ///
    /// The backend may already hold state (e.g. a trained
    /// [`opthash::OptHash`] with prefix counts); that state is preserved in
    /// the base copy and never double-counted by shard merges.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    pub fn new(backend: B, config: EngineConfig) -> Self {
        assert!(config.shards > 0, "engine needs at least one shard");
        let buffers = (0..config.shards)
            .map(|_| BatchBuffer::new(config.batch_capacity))
            .collect();
        let faults = FaultInjector::new();
        let fault_log: SharedFaultLog = Arc::new(Mutex::new(FaultLog::default()));
        // Every shard's query-snapshot slot and channel snapshot is seeded
        // with ONE shared empty fork (both only ever replace the `Arc`
        // wholesale, never write through it, so sharing is sound); the
        // hub's base starts as a copy of the (possibly pre-trained) backend
        // at scheme version 0. Sharing keeps construction at a single fork
        // regardless of shard count — engine construction sits inside
        // latency-sensitive paths like the bench's per-pass setup.
        let blank = Arc::new(backend.fork());
        let slots: Vec<Arc<PublishedSlot<B>>> = (0..config.shards)
            .map(|_| Arc::new(PublishedSlot::new(Arc::clone(&blank))))
            .collect();
        let hub = Arc::new(SnapshotHub {
            base: BaseSlot::new(Arc::new(backend.clone())),
            shards: slots.clone(),
        });
        let reader = SnapshotReader::new(Arc::clone(&hub));
        let mode = match config.mode {
            IngestMode::Inline => ModeState::Inline {
                shards: (0..config.shards).map(|_| backend.fork()).collect(),
                poisoned: vec![false; config.shards],
                counters: ShardCounters::default(),
                quarantined: Vec::new(),
                applied_mass: vec![0; config.shards],
                published_mass: vec![0; config.shards],
            },
            IngestMode::Workers => {
                let handles = (0..config.shards)
                    .map(|shard| {
                        let cell = Arc::new(ShardChannel::new(
                            Arc::clone(&blank),
                            config.queue_capacity,
                            Arc::clone(&slots[shard]),
                        ));
                        let thread = spawn_worker(
                            Arc::clone(&cell),
                            Arc::clone(&fault_log),
                            faults.clone(),
                            WorkerConfig {
                                shard,
                                max_batch_attempts: config.max_batch_attempts,
                                checkpoint_interval: config.checkpoint_interval,
                            },
                            0,
                        );
                        ShardHandle {
                            cell,
                            thread: Some(thread),
                            generation: 0,
                            poison_logged: false,
                        }
                    })
                    .collect();
                ModeState::Workers { handles }
            }
        };
        IngestEngine {
            base: backend,
            buffers,
            mode,
            merged: None,
            hub,
            reader,
            config,
            elements: MassLedger::default(),
            mass: MassLedger::default(),
            zero_weight_rejections: 0,
            flushes: 0,
            scheme_version: 0,
            dirty: false,
            faults,
            fault_log,
        }
    }

    /// Wraps `backend` with the default configuration (4 worker shards,
    /// 8 Ki distinct elements per batch, blocking backpressure).
    pub fn with_defaults(backend: B) -> Self {
        Self::new(backend, EngineConfig::default())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Handle for programming deterministic faults into this engine (only
    /// effective with the `failpoints` cargo feature; see [`crate::fault`]).
    pub fn fault_injector(&self) -> FaultInjector {
        self.faults.clone()
    }

    /// Snapshot of the robustness events this engine has handled.
    pub fn fault_log(&self) -> FaultLog {
        self.fault_log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// A consistent snapshot of the engine's counters.
    pub fn stats(&self) -> EngineStats {
        let mut counters = ShardCounters::default();
        let mut queued_mass = 0u64;
        match &self.mode {
            ModeState::Inline {
                counters: inline, ..
            } => counters.absorb(inline),
            ModeState::Workers { handles } => {
                for handle in handles {
                    let inner = handle.cell.lock_always();
                    counters.absorb(&inner.counters);
                    // Read under the control lock: the worker only debits
                    // queued mass while holding it, and the engine (the
                    // only thread crediting) is the caller — so the ledger
                    // identity holds at this instant.
                    queued_mass += handle.cell.queued_mass();
                }
            }
        }
        let mut stats = EngineStats {
            elements: self.elements,
            mass: self.mass,
            zero_weight_rejections: self.zero_weight_rejections,
            flushes: self.flushes,
            applied_updates: counters.applied_updates,
            applied_mass: counters.applied_mass,
            queued_mass,
            quarantined_updates: counters.quarantined_updates,
            quarantined_mass: counters.quarantined_mass,
            batch_failures: counters.batch_failures,
            worker_restarts: counters.worker_restarts,
            ..EngineStats::default()
        };
        for buffer in &self.buffers {
            stats.buffered_updates += buffer.len as u64;
            stats.buffered_mass += buffer.pending_mass();
        }
        stats
    }

    /// Number of distinct elements currently buffered across all shards.
    pub fn buffered(&self) -> usize {
        self.buffers.iter().map(|b| b.len).sum()
    }

    /// The pre-aggregated updates of every quarantined poison-pill batch,
    /// in shard order: the mass the engine refused to lose silently. A
    /// caller can inspect or re-apply them (e.g. to a fresh engine after
    /// fixing the underlying fault).
    pub fn quarantined(&self) -> Vec<(StreamElement, u64)> {
        let mut updates = Vec::new();
        let mut collect = |batches: &[Arc<BatchData>]| {
            for batch in batches {
                updates.extend(batch.updates.iter().cloned());
            }
        };
        match &self.mode {
            ModeState::Inline { quarantined, .. } => collect(quarantined),
            ModeState::Workers { handles } => {
                for handle in handles {
                    let inner = handle.cell.lock_always();
                    collect(&inner.quarantined);
                }
            }
        }
        updates
    }

    /// Accepts one arrival.
    #[inline]
    pub fn ingest(&mut self, element: &StreamElement) -> Result<(), EngineError> {
        self.ingest_weighted(element, 1)
    }

    /// Accepts `count` arrivals of `element` at once.
    ///
    /// # Errors
    ///
    /// * [`EngineError::ZeroWeight`] — `count == 0` (counted in
    ///   [`EngineStats::zero_weight_rejections`]).
    /// * [`EngineError::Overloaded`] — the target shard's queue is full
    ///   under [`BackpressurePolicy::Reject`]; the arrival was not admitted
    ///   and is counted in the rejected ledger buckets.
    /// * [`EngineError::ShardPoisoned`] — the target shard is fenced off.
    #[inline]
    pub fn ingest_weighted(
        &mut self,
        element: &StreamElement,
        count: u64,
    ) -> Result<(), EngineError> {
        self.faults.hit_result_at("engine::ingest", None)?;
        if count == 0 {
            self.zero_weight_rejections += 1;
            return Err(EngineError::ZeroWeight { id: element.id });
        }
        self.admit(element, count)
    }

    /// Routes, applies backpressure, and buffers one non-zero arrival.
    #[inline]
    fn admit(&mut self, element: &StreamElement, count: u64) -> Result<(), EngineError> {
        let hash = mix64(element.id.raw());
        // Multiply-shift on the high bits picks the shard; the low bits
        // index the buffer's slot table, so the two stay decorrelated.
        let shard = (((hash >> 32) * self.buffers.len() as u64) >> 32) as usize;
        let mut degraded = false;
        if self.buffers[shard].is_at_limit() {
            match self.dispatch(shard, false)? {
                DispatchOutcome::Dispatched => {}
                DispatchOutcome::QueueFull => match self.config.backpressure {
                    BackpressurePolicy::Reject => {
                        self.elements.reject(1);
                        self.mass.reject(count);
                        return Err(EngineError::Overloaded {
                            shard,
                            queue_capacity: self.config.queue_capacity,
                        });
                    }
                    BackpressurePolicy::DegradeAggregate => degraded = true,
                    // `dispatch` blocks until space under Block.
                    BackpressurePolicy::Block => unreachable!("Block never reports a full queue"),
                },
            }
        }
        if degraded {
            self.elements.degrade(1);
            self.mass.degrade(count);
        } else {
            self.elements.accept(1);
            self.mass.accept(count);
        }
        self.buffers[shard].upsert(hash, element, count);
        self.dirty = true;
        Ok(())
    }

    /// Accepts a slice of arrivals — the engine's preferred bulk path.
    ///
    /// Beyond amortizing per-call bookkeeping, each arrival's batch slot is
    /// prefetched a few elements ahead, hiding the cache-miss latency of
    /// cold (tail) elements behind the work of the hot head.
    ///
    /// Under [`BackpressurePolicy::Reject`] the bulk path does **not** stop
    /// at the first overloaded arrival: rejected arrivals are counted in
    /// the ledgers (preserving the conservation invariant) and the rest of
    /// the slice is processed. Other errors abort and propagate.
    pub fn ingest_batch(&mut self, elements: &[StreamElement]) -> Result<(), EngineError> {
        /// How many arrivals ahead to prefetch: far enough to cover an
        /// L2/L3 miss, near enough to stay in the prefetch queues. A power
        /// of two, so the hash-ring index below is a mask.
        const LOOKAHEAD: usize = 16;
        self.faults.hit_result_at("engine::ingest", None)?;
        if !matches!(self.config.backpressure, BackpressurePolicy::Block) {
            // Reject can shed and DegradeAggregate can reroute arrivals, so
            // those policies need the per-arrival ledger accounting of
            // `admit`; surfaced rejections are absorbed here (they are on
            // the ledger) to keep the bulk path total.
            for element in elements {
                match self.admit(element, 1) {
                    Ok(()) | Err(EngineError::Overloaded { .. }) => {}
                    Err(err) => return Err(err),
                }
            }
            return Ok(());
        }
        // Block admits every arrival unconditionally, so the ledger can be
        // settled once for the whole slice instead of per element — this
        // loop is the engine's hottest path. Splitting the slice at
        // `len - LOOKAHEAD` makes the prefetch unconditional in the main
        // loop (zip bounds it) and leaves a short prefetch-free tail. A
        // LOOKAHEAD-deep hash ring carries each lookahead hash forward to
        // its own arrival, so every ID is mixed exactly once: the ring slot
        // read for arrival `i` is the slot written at arrival `i - LOOKAHEAD`
        // (same slot, period LOOKAHEAD).
        let mut ring = [0u64; LOOKAHEAD];
        for (slot, element) in ring.iter_mut().zip(elements.iter()) {
            *slot = mix64(element.id.raw());
        }
        let split = elements.len().saturating_sub(LOOKAHEAD);
        let (head, tail) = elements.split_at(split);
        // `get`, not indexing: a slice shorter than LOOKAHEAD has an empty
        // `head`, and `elements[LOOKAHEAD..]` would panic before the zip
        // could bound it.
        let upcoming = elements.get(LOOKAHEAD..).unwrap_or(&[]);
        let mut position = 0usize;
        let mut result = Ok(());
        for (element, upcoming) in head.iter().zip(upcoming.iter()) {
            let hash = ring[position & (LOOKAHEAD - 1)];
            let ahead = mix64(upcoming.id.raw());
            ring[position & (LOOKAHEAD - 1)] = ahead;
            position += 1;
            let nshards = self.buffers.len() as u64;
            let shard = (((ahead >> 32) * nshards) >> 32) as usize;
            self.buffers[shard].prefetch(ahead);
            if let Err(err) = self.block_ingest_one(hash, element) {
                result = Err(err);
                break;
            }
        }
        if result.is_ok() {
            for element in tail {
                let hash = ring[position & (LOOKAHEAD - 1)];
                position += 1;
                if let Err(err) = self.block_ingest_one(hash, element) {
                    result = Err(err);
                    break;
                }
            }
        }
        // Every arrival up to and including a failing one was upserted into
        // its shard buffer before dispatch could error, so the processed
        // prefix must be admitted to the ledgers even when propagating —
        // otherwise unaccounted_mass() goes negative and, were `dirty`
        // still false, a later query would skip flushing those arrivals.
        if position > 0 {
            self.elements.accept(position as u64);
            self.mass.accept(position as u64);
            self.dirty = true;
        }
        result
    }

    /// One arrival on the Block-policy bulk path (`hash` is the arrival's
    /// precomputed `mix64`): one bounds-checked shard lookup, one probe, and
    /// the batch-limit check only on the rare insert branch inside `upsert`.
    /// The arrival that fills a buffer dispatches it. Ledger accounting is
    /// settled by the caller for the whole slice.
    #[inline(always)]
    fn block_ingest_one(&mut self, hash: u64, element: &StreamElement) -> Result<(), EngineError> {
        let shard = (((hash >> 32) * self.buffers.len() as u64) >> 32) as usize;
        if self.buffers[shard].upsert(hash, element, 1) {
            self.dispatch(shard, false)?;
        }
        Ok(())
    }

    /// Accepts a whole stream in arrival order.
    pub fn ingest_stream(&mut self, stream: &Stream) -> Result<(), EngineError> {
        self.ingest_batch(stream.as_slice())
    }

    /// Drains `shard`'s buffer and hands the batch to its worker (or
    /// applies it inline). `force_block` overrides the configured policy
    /// with blocking semantics — used by [`IngestEngine::flush`], which
    /// must never shed load.
    fn dispatch(
        &mut self,
        shard: usize,
        force_block: bool,
    ) -> Result<DispatchOutcome, EngineError> {
        if matches!(self.mode, ModeState::Inline { .. }) {
            return self.dispatch_inline(shard);
        }
        self.faults.hit_result_at("engine::dispatch", Some(shard))?;
        let cell = {
            let ModeState::Workers { handles } = &self.mode else {
                unreachable!("inline handled above")
            };
            Arc::clone(&handles[shard].cell)
        };
        let policy = if force_block {
            BackpressurePolicy::Block
        } else {
            self.config.backpressure
        };
        match policy {
            BackpressurePolicy::Block => {
                let data = Arc::new(self.buffers[shard].drain_to_batch());
                loop {
                    if cell.try_push(Arc::clone(&data)) {
                        return Ok(DispatchOutcome::Dispatched);
                    }
                    self.supervise();
                    let (_, poisoned) = cell.wait_space(SUPERVISE_TICK);
                    if poisoned {
                        return Err(EngineError::ShardPoisoned { shard });
                    }
                }
            }
            BackpressurePolicy::Reject | BackpressurePolicy::DegradeAggregate => {
                if cell.is_full() {
                    // A full queue can mean a dead worker: give the
                    // supervisor a chance to re-fork it before concluding
                    // this is genuine overload.
                    self.supervise();
                    if cell.is_full() {
                        return Ok(DispatchOutcome::QueueFull);
                    }
                }
                let (_, poisoned) = cell.sync_state(0);
                if poisoned {
                    return Err(EngineError::ShardPoisoned { shard });
                }
                let data = Arc::new(self.buffers[shard].drain_to_batch());
                let pushed = cell.try_push(data);
                debug_assert!(
                    pushed,
                    "single producer: space cannot vanish after the check"
                );
                Ok(DispatchOutcome::Dispatched)
            }
        }
    }

    /// Flush-time (inline-mode) batch application on the calling thread,
    /// panic-isolated: a panic poisons only the affected shard.
    fn dispatch_inline(&mut self, shard: usize) -> Result<DispatchOutcome, EngineError> {
        let ModeState::Inline {
            shards,
            poisoned,
            counters,
            quarantined,
            applied_mass,
            ..
        } = &mut self.mode
        else {
            unreachable!("caller checked the mode")
        };
        if poisoned[shard] {
            return Err(EngineError::ShardPoisoned { shard });
        }
        let batch = Arc::new(self.buffers[shard].drain_to_batch());
        let backend = &mut shards[shard];
        let faults = &self.faults;
        let applied = catch_unwind(AssertUnwindSafe(|| {
            apply_batch_injected(backend, &batch, faults, shard);
        }));
        match applied {
            Ok(()) => {
                counters.applied_updates += batch.updates.len() as u64;
                counters.applied_mass += batch.mass;
                applied_mass[shard] += batch.mass;
                Ok(DispatchOutcome::Dispatched)
            }
            Err(_) => {
                // The shard backend may be half-updated: fence it off and
                // set the batch aside so its mass stays accounted.
                poisoned[shard] = true;
                counters.batch_failures += 1;
                counters.quarantined_updates += batch.updates.len() as u64;
                counters.quarantined_mass += batch.mass;
                quarantined.push(batch);
                fault::record(&self.fault_log, FaultEvent::ShardPoisoned { shard });
                Err(EngineError::ShardPoisoned { shard })
            }
        }
    }

    /// Detects dead shard workers and re-forks replacements (worker mode).
    ///
    /// A replacement rebuilds the shard's state from its last checkpoint
    /// plus the recovery journal, requeues any batch that was inflight when
    /// the worker died, and replays the surviving queue — so a worker death
    /// loses nothing. The engine supervises automatically whenever it waits
    /// on a shard (dispatch under backpressure, flush barriers); calling
    /// this directly is only needed to reap a death while the engine is
    /// otherwise idle.
    pub fn supervise(&mut self) {
        let ModeState::Workers { handles } = &mut self.mode else {
            return;
        };
        for (shard, handle) in handles.iter_mut().enumerate() {
            let died = handle
                .thread
                .as_ref()
                .map_or(false, JoinHandle::is_finished)
                && !handle.cell.is_closed();
            if !died {
                continue;
            }
            if let Some(thread) = handle.thread.take() {
                let _ = thread.join();
            }
            if handle.cell.lock_always().poisoned {
                if !handle.poison_logged {
                    fault::record(&self.fault_log, FaultEvent::ShardPoisoned { shard });
                    handle.poison_logged = true;
                }
                continue;
            }
            // The death may have struck mid-batch: disposition the inflight
            // batch exactly like a caught batch panic (retry, then
            // quarantine), since the replacement's rebuilt state excludes
            // it.
            match handle.cell.fail_inflight(self.config.max_batch_attempts) {
                crate::queue::FailDisposition::Requeued { attempt, mass } => fault::record(
                    &self.fault_log,
                    FaultEvent::BatchPanicked {
                        shard,
                        attempt,
                        mass,
                    },
                ),
                crate::queue::FailDisposition::Quarantined { mass, updates } => fault::record(
                    &self.fault_log,
                    FaultEvent::BatchQuarantined {
                        shard,
                        mass,
                        updates,
                    },
                ),
                crate::queue::FailDisposition::Idle => {}
            }
            handle.generation += 1;
            handle.cell.lock_always().counters.worker_restarts += 1;
            fault::record(
                &self.fault_log,
                FaultEvent::WorkerRestarted {
                    shard,
                    generation: handle.generation,
                },
            );
            handle.thread = Some(spawn_worker(
                Arc::clone(&handle.cell),
                Arc::clone(&self.fault_log),
                self.faults.clone(),
                WorkerConfig {
                    shard,
                    max_batch_attempts: self.config.max_batch_attempts,
                    checkpoint_interval: self.config.checkpoint_interval,
                },
                handle.generation,
            ));
        }
    }

    /// Dispatches every buffered batch and synchronizes every shard to a
    /// consistent checkpoint covering all admitted arrivals.
    ///
    /// Flush never sheds load: pending batches are enqueued with blocking
    /// semantics regardless of the configured backpressure policy, and the
    /// barrier waits for every worker to drain its queue and publish a
    /// checkpoint (supervising — and if necessary restarting — workers
    /// while it waits). Called automatically before a query/merge.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardPoisoned`] if a shard's state is unrecoverable;
    /// the remaining shards are still flushed as far as possible.
    pub fn flush(&mut self) -> Result<(), EngineError> {
        if !self.dirty {
            return Ok(());
        }
        self.merged = None;
        self.flushes += 1;
        match self.config.mode {
            IngestMode::Inline => self.flush_inline()?,
            IngestMode::Workers => {
                // A poisoned shard must not stop the others from flushing:
                // record the first error but keep dispatching and keep the
                // barrier, so every healthy shard still reaches a
                // consistent checkpoint (mirrors `flush_inline`).
                let mut first_err = None;
                for shard in 0..self.buffers.len() {
                    if !self.buffers[shard].is_empty() {
                        if let Err(err) = self.dispatch(shard, true) {
                            first_err.get_or_insert(err);
                        }
                    }
                }
                if let Err(err) = self.barrier() {
                    first_err.get_or_insert(err);
                }
                if let Some(err) = first_err {
                    return Err(err);
                }
            }
        }
        self.dirty = false;
        Ok(())
    }

    /// Inline-mode flush: applies all pending batches, one scoped worker
    /// thread per non-empty shard (a single-shard engine applies on the
    /// calling thread to skip the spawn cost). This is the pre-worker
    /// engine's flush-time parallelism, kept for [`IngestMode::Inline`].
    fn flush_inline(&mut self) -> Result<(), EngineError> {
        let ModeState::Inline {
            shards,
            poisoned,
            counters,
            quarantined,
            applied_mass,
            published_mass,
        } = &mut self.mode
        else {
            unreachable!("caller checked the mode")
        };
        let mut first_err = None;
        // Drain every pending buffer up front. A poisoned shard's batch is
        // quarantined immediately (its backend must not be touched) so the
        // mass stays accounted.
        let mut batches: Vec<Option<Arc<BatchData>>> = Vec::with_capacity(shards.len());
        for (shard, buffer) in self.buffers.iter_mut().enumerate() {
            if buffer.is_empty() {
                batches.push(None);
                continue;
            }
            let batch = Arc::new(buffer.drain_to_batch());
            if poisoned[shard] {
                counters.quarantined_updates += batch.updates.len() as u64;
                counters.quarantined_mass += batch.mass;
                quarantined.push(batch);
                first_err.get_or_insert(EngineError::ShardPoisoned { shard });
                batches.push(None);
            } else {
                batches.push(Some(batch));
            }
        }
        let faults = &self.faults;
        let results: Vec<(usize, Result<(), ()>)> = std::thread::scope(|scope| {
            let mut spawned = Vec::with_capacity(shards.len());
            for (shard, (backend, batch)) in shards.iter_mut().zip(batches.iter()).enumerate() {
                let Some(batch) = batch else { continue };
                let batch = Arc::clone(batch);
                spawned.push((
                    shard,
                    scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| {
                            apply_batch_injected(backend, &batch, faults, shard);
                        }))
                        .map_err(|_| ())
                    }),
                ));
            }
            spawned
                .into_iter()
                .map(|(shard, handle)| (shard, handle.join().unwrap_or(Err(()))))
                .collect()
        });
        for (shard, result) in results {
            let batch = batches[shard]
                .take()
                .expect("threads are spawned only for drained batches");
            match result {
                Ok(()) => {
                    counters.applied_updates += batch.updates.len() as u64;
                    counters.applied_mass += batch.mass;
                    applied_mass[shard] += batch.mass;
                }
                Err(()) => {
                    poisoned[shard] = true;
                    counters.batch_failures += 1;
                    counters.quarantined_updates += batch.updates.len() as u64;
                    counters.quarantined_mass += batch.mass;
                    quarantined.push(batch);
                    fault::record(&self.fault_log, FaultEvent::ShardPoisoned { shard });
                    first_err.get_or_insert(EngineError::ShardPoisoned { shard });
                }
            }
        }
        // Inline mode has no workers to publish query snapshots, so the
        // flush is the publication point: every shard whose applied mass
        // moved (whether here or in an earlier mid-ingest dispatch) gets a
        // fresh snapshot in its slot. Poisoned shards keep their last
        // consistent publication.
        for (shard, backend) in shards.iter().enumerate() {
            if poisoned[shard] || applied_mass[shard] == published_mass[shard] {
                continue;
            }
            self.hub.shards[shard].publish(Arc::new(backend.clone()), applied_mass[shard]);
            published_mass[shard] = applied_mass[shard];
        }
        match first_err {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Worker-mode flush barrier: waits for every shard to drain and
    /// checkpoint, supervising while it waits.
    fn barrier(&mut self) -> Result<(), EngineError> {
        let requests: Vec<(usize, Arc<ShardChannel<B>>, u64)> = {
            let ModeState::Workers { handles } = &self.mode else {
                unreachable!("caller checked the mode")
            };
            handles
                .iter()
                .enumerate()
                .map(|(shard, handle)| {
                    let cell = Arc::clone(&handle.cell);
                    let epoch = cell.request_sync();
                    (shard, cell, epoch)
                })
                .collect()
        };
        let mut first_err = None;
        for (shard, cell, epoch) in requests {
            loop {
                let (done, poisoned) = cell.wait_sync(epoch, SUPERVISE_TICK);
                if poisoned {
                    // Reap the dead worker and log the poisoning, then move
                    // on: the remaining shards still get synchronized.
                    self.supervise();
                    first_err.get_or_insert(EngineError::ShardPoisoned { shard });
                    break;
                }
                if done {
                    break;
                }
                self.supervise();
            }
        }
        match first_err {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// How many scheme hot-swaps ([`IngestEngine::swap_backend`]) this
    /// engine has completed. Version 0 is the backend the engine was built
    /// with.
    pub fn scheme_version(&self) -> u64 {
        self.scheme_version
    }

    /// Atomically replaces the engine's backend with `new_base` and returns
    /// the **retired** backend holding every count admitted under the old
    /// scheme — the online re-training hot-swap.
    ///
    /// In worker mode no thread is stalled, stopped, or restarted: pending
    /// buffers are dispatched with blocking semantics (a swap never sheds
    /// load), then each shard is handed a swap request that its worker picks
    /// up as the next queue event after draining its batches. The worker
    /// retires its scratch delta — migrated out through the same
    /// [`SketchBackend::fork`]/[`SketchBackend::merge`] machinery checkpoints
    /// use — and re-forks from the new base; the retired per-shard deltas
    /// are merged into the old base, which is returned. A worker that dies
    /// mid-swap is re-forked by the supervisor and redoes the still-pending
    /// request, so the swap completes exactly once per shard.
    ///
    /// The conservation ledgers are untouched: admitted mass was either
    /// applied (it leaves inside the returned backend), quarantined, or
    /// still buffered/queued — none of which the swap changes — so
    /// [`EngineStats::unaccounted_mass`] stays 0 across every swap.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardPoisoned`] if a shard's state is unrecoverable;
    /// healthy shards still complete the swap, but the retired backend is
    /// withheld because it would under-count the poisoned shard's delta.
    pub fn swap_backend(&mut self, new_base: B) -> Result<B, EngineError> {
        self.merged = None;
        let mut first_err = None;
        match self.config.mode {
            IngestMode::Inline => {
                if let Err(err) = self.flush() {
                    first_err.get_or_insert(err);
                }
                let ModeState::Inline {
                    shards,
                    poisoned,
                    applied_mass,
                    published_mass,
                    ..
                } = &mut self.mode
                else {
                    unreachable!("mode cannot change")
                };
                let version = self.scheme_version + 1;
                let mut retired = std::mem::replace(&mut self.base, new_base);
                for (shard, backend) in shards.iter_mut().enumerate() {
                    if poisoned[shard] {
                        first_err.get_or_insert(EngineError::ShardPoisoned { shard });
                        continue;
                    }
                    let old = Arc::new(std::mem::replace(backend, self.base.fork()));
                    retired.merge(&old);
                    // Publish the swap to the query-snapshot slot: the
                    // retired delta stays readable (as `prev`) until the
                    // base below advances, so a concurrent reader always
                    // assembles one scheme version, never a mix.
                    self.hub.shards[shard].publish_swap(
                        version,
                        Arc::new(backend.clone()),
                        applied_mass[shard],
                        old,
                    );
                    applied_mass[shard] = 0;
                    published_mass[shard] = 0;
                }
                self.scheme_version = version;
                self.hub.base.store(version, Arc::new(self.base.clone()));
                match first_err {
                    Some(err) => Err(err),
                    None => Ok(retired),
                }
            }
            IngestMode::Workers => {
                for shard in 0..self.buffers.len() {
                    if !self.buffers[shard].is_empty() {
                        if let Err(err) = self.dispatch(shard, true) {
                            first_err.get_or_insert(err);
                        }
                    }
                }
                // Publish the new scheme to every shard, then wait for each
                // worker to retire its delta, supervising while waiting so
                // a worker that dies mid-swap is re-forked to redo it.
                let fresh = new_base.clone();
                let shared = Arc::new(new_base);
                let cells: Vec<Arc<ShardChannel<B>>> = {
                    let ModeState::Workers { handles } = &self.mode else {
                        unreachable!("mode cannot change")
                    };
                    handles
                        .iter()
                        .map(|handle| Arc::clone(&handle.cell))
                        .collect()
                };
                let version = self.scheme_version + 1;
                for cell in &cells {
                    cell.request_swap(version, Arc::clone(&shared));
                }
                for (shard, cell) in cells.iter().enumerate() {
                    loop {
                        let (done, poisoned) = cell.wait_swap(SUPERVISE_TICK);
                        if poisoned {
                            self.supervise();
                            first_err.get_or_insert(EngineError::ShardPoisoned { shard });
                            break;
                        }
                        if done {
                            break;
                        }
                        self.supervise();
                    }
                }
                let mut retired = std::mem::replace(&mut self.base, fresh);
                for cell in &cells {
                    if let Some(delta) = cell.take_retired() {
                        retired.merge(&delta);
                    }
                }
                self.scheme_version = version;
                // Advance the snapshot base only now, after every healthy
                // shard has published its new-scheme slot: a reader that
                // loads the old base still finds each shard's pre-swap
                // delta retained as `prev`, so no stamp ever mixes scheme
                // versions.
                self.hub.base.store(version, shared);
                // Every admitted arrival is either applied (inside the
                // retired backend), quarantined, or was just re-forked away
                // — the fresh snapshots cover all future state, so no flush
                // is pending.
                self.dirty = false;
                match first_err {
                    Some(err) => Err(err),
                    None => Ok(retired),
                }
            }
        }
    }

    /// Itemized memory usage of the *logical* estimator (one backend's
    /// state). The engine physically replicates counter state per shard;
    /// see the type-level docs for the multiplier.
    pub fn space_report(&self) -> SpaceReport {
        self.base.space_report()
    }

    /// The wrapped backend's report name.
    pub fn backend_name(&self) -> &'static str {
        self.base.backend_name()
    }

    /// Flushes all pending batches and returns the merged estimator view.
    ///
    /// The merge costs `O(shards × state size)` but is cached: repeated
    /// queries without interleaved ingestion reuse the same merged backend.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardPoisoned`] if any shard is fenced off — a merged
    /// view would silently under-count, so none is produced.
    pub fn merged(&mut self) -> Result<&B, EngineError> {
        self.flush()?;
        if self.merged.is_none() {
            let mut merged = self.base.clone();
            match &self.mode {
                ModeState::Inline {
                    shards, poisoned, ..
                } => {
                    for (shard, backend) in shards.iter().enumerate() {
                        if poisoned[shard] {
                            return Err(EngineError::ShardPoisoned { shard });
                        }
                        merged.merge(backend);
                    }
                }
                ModeState::Workers { handles } => {
                    for (shard, handle) in handles.iter().enumerate() {
                        let inner = handle.cell.lock_always();
                        if inner.poisoned {
                            return Err(EngineError::ShardPoisoned { shard });
                        }
                        merged.merge(inner.snapshot.as_ref());
                    }
                }
            }
            self.merged = Some(merged);
        }
        Ok(self.merged.as_ref().expect("merged view just built"))
    }

    /// Estimates the frequency of `element` **without waiting on
    /// ingestion**: the answer comes from the latest epoch-stamped snapshot
    /// set the shard workers have published, never from behind the flush
    /// barrier. Mass still buffered, queued, or applied-but-not-yet-
    /// checkpointed is not visible; the returned [`EpochStamp`] says
    /// exactly which prefix was (see [`crate::snapshot`] for the full
    /// contract, including why a stamp never mixes scheme versions).
    ///
    /// Infallible by design: even a poisoned shard leaves its last
    /// consistent publication in place, so a wait-free read always has
    /// something sound to answer from. Use [`IngestEngine::query_synced`]
    /// when the answer must cover every admitted arrival (it also surfaces
    /// poisoning as an error).
    pub fn query(&self, element: &StreamElement) -> SnapshotEstimate {
        self.reader.query(element)
    }

    /// Returns the estimated frequency of `element`, flushing and merging
    /// first so the answer reflects every admitted arrival. This is the
    /// barrier-synced read path: it waits for every shard worker to drain
    /// and checkpoint, trading latency for completeness — the wait-free
    /// counterpart is [`IngestEngine::query`].
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardPoisoned`] if a shard is fenced off: the engine
    /// reports the corruption instead of answering from wrong counts.
    pub fn query_synced(&mut self, element: &StreamElement) -> Result<f64, EngineError> {
        Ok(self.merged()?.query(element))
    }

    /// A cloneable, `Send + Sync` handle for issuing wait-free snapshot
    /// queries from other threads while this engine ingests. Readers stay
    /// valid (serving the last published snapshots) even after the engine
    /// is finished or dropped.
    pub fn snapshot_reader(&self) -> SnapshotReader<B> {
        self.reader.clone()
    }

    /// The [`EpochStamp`] a wait-free [`IngestEngine::query`] issued now
    /// would carry: which scheme version, per-shard epochs, and applied
    /// mass the published snapshot set currently covers.
    pub fn snapshot_stamp(&self) -> EpochStamp {
        self.reader.stamp()
    }

    /// Flushes, merges every shard into the base and returns the final
    /// estimator, consuming the engine (worker threads are joined).
    ///
    /// In worker mode this skips the flush barrier entirely: closing a
    /// channel makes its worker drain the remaining queue and publish its
    /// scratch state by move (no checkpoint clone), so the join itself is
    /// the synchronization.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardPoisoned`] if a shard's state is unrecoverable.
    pub fn finish(mut self) -> Result<B, EngineError> {
        match &self.mode {
            ModeState::Inline { .. } => {
                self.flush()?;
                let ModeState::Inline {
                    shards, poisoned, ..
                } = &self.mode
                else {
                    unreachable!("mode cannot change")
                };
                for (shard, backend) in shards.iter().enumerate() {
                    if poisoned[shard] {
                        return Err(EngineError::ShardPoisoned { shard });
                    }
                    self.base.merge(backend);
                }
            }
            ModeState::Workers { .. } => {
                // Dispatch whatever is still buffered (blocking semantics:
                // finish never sheds load), then close and join.
                for shard in 0..self.buffers.len() {
                    if !self.buffers[shard].is_empty() {
                        self.dispatch(shard, true)?;
                    }
                }
                let ModeState::Workers { handles } = &mut self.mode else {
                    unreachable!("mode cannot change")
                };
                // Close every channel before joining any thread, so all
                // workers drain their final batches concurrently instead of
                // serializing behind shard 0's join.
                for handle in handles.iter() {
                    handle.cell.close();
                }
                for handle in handles.iter_mut() {
                    handle.shutdown();
                }
                for (shard, handle) in handles.iter().enumerate() {
                    let mut inner = handle.cell.lock_always();
                    if inner.poisoned {
                        return Err(EngineError::ShardPoisoned { shard });
                    }
                    // A worker that died (rather than exiting cleanly)
                    // leaves unpublished work behind. Catch up here: replay
                    // the journal onto the snapshot, then apply whatever the
                    // worker never got to — each leftover batch on a trial
                    // clone, so one that still panics is quarantined without
                    // corrupting the rebuilt state. Draining the ring is
                    // sound: the worker thread was joined above, so the
                    // consumer role has passed to this thread.
                    if !inner.journal.is_empty()
                        || inner.inflight.is_some()
                        || !inner.retry.is_empty()
                        || handle.cell.has_undrained()
                    {
                        let mut state = (*inner.snapshot).clone();
                        for batch in inner.journal.drain(..) {
                            apply_batch(&mut state, &batch);
                        }
                        let mut leftovers: Vec<QueuedBatch> = inner
                            .inflight
                            .take()
                            .into_iter()
                            .chain(inner.retry.drain(..))
                            .collect();
                        while let Some(data) = handle.cell.pop_after_join() {
                            leftovers.push(QueuedBatch { data, attempts: 0 });
                        }
                        for batch in leftovers {
                            let mut trial = state.clone();
                            let applied = catch_unwind(AssertUnwindSafe(|| {
                                apply_batch(&mut trial, &batch.data);
                            }));
                            handle.cell.debit_queued_mass(batch.data.mass);
                            match applied {
                                Ok(()) => {
                                    state = trial;
                                    inner.counters.applied_updates +=
                                        batch.data.updates.len() as u64;
                                    inner.counters.applied_mass += batch.data.mass;
                                }
                                Err(_) => {
                                    inner.counters.batch_failures += 1;
                                    inner.counters.quarantined_updates +=
                                        batch.data.updates.len() as u64;
                                    inner.counters.quarantined_mass += batch.data.mass;
                                    fault::record(
                                        &self.fault_log,
                                        FaultEvent::BatchQuarantined {
                                            shard,
                                            mass: batch.data.mass,
                                            updates: batch.data.updates.len(),
                                        },
                                    );
                                    inner.quarantined.push(batch.data);
                                }
                            }
                        }
                        inner.snapshot = Arc::new(state);
                    }
                    self.base.merge(inner.snapshot.as_ref());
                }
            }
        }
        Ok(self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opthash_sketch::CountMinSketch;
    use opthash_stream::ElementId;

    fn element(id: u64) -> StreamElement {
        StreamElement::without_features(id)
    }

    #[test]
    fn engine_matches_sequential_count_min() {
        let backend = CountMinSketch::new(128, 4, 7);
        let mut sequential = backend.clone();
        let mut engine =
            IngestEngine::new(backend, EngineConfig::with_shards(4).batch_capacity(64));

        let mut state = 1u64;
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let id = state % 500;
            sequential.add(ElementId(id), 1);
            engine.ingest(&element(id)).unwrap();
        }
        for id in 0..600u64 {
            assert_eq!(
                engine.query_synced(&element(id)).unwrap(),
                CountMinSketch::query(&sequential, ElementId(id)) as f64,
                "mismatch for {id}"
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.ingested_elements(), 20_000);
        assert_eq!(stats.ingested_mass(), 20_000);
        assert!(stats.conserved());
        assert_eq!(stats.unaccounted_mass(), 0);
        assert!(stats.flushes > 0);
        assert!(
            stats.aggregation_factor() > 1.0,
            "500 distinct ids in batches of 64x4 must aggregate"
        );
        assert!(engine.fault_log().is_empty(), "healthy run records nothing");
    }

    #[test]
    fn inline_mode_matches_worker_mode() {
        let make = |mode| {
            IngestEngine::new(
                CountMinSketch::new(128, 4, 7),
                EngineConfig::with_shards(3).batch_capacity(32).mode(mode),
            )
        };
        let mut workers = make(IngestMode::Workers);
        let mut inline = make(IngestMode::Inline);
        let mut state = 9u64;
        for _ in 0..5_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let id = state % 200;
            workers.ingest(&element(id)).unwrap();
            inline.ingest(&element(id)).unwrap();
        }
        for id in 0..250u64 {
            assert_eq!(
                workers.query_synced(&element(id)).unwrap(),
                inline.query_synced(&element(id)).unwrap(),
                "mode mismatch for {id}"
            );
        }
        assert_eq!(inline.stats().unaccounted_mass(), 0);
        assert_eq!(workers.stats().unaccounted_mass(), 0);
    }

    #[test]
    fn finish_returns_the_merged_backend() {
        let mut engine = IngestEngine::new(
            CountMinSketch::new(64, 3, 1),
            EngineConfig::with_shards(3).batch_capacity(16),
        );
        for id in 0..100u64 {
            engine.ingest_weighted(&element(id), 5).unwrap();
        }
        let merged = engine.finish().unwrap();
        for id in 0..100u64 {
            assert!(CountMinSketch::query(&merged, ElementId(id)) >= 5);
        }
        assert_eq!(merged.total_updates(), 500);
    }

    #[test]
    fn weighted_ingest_equals_repeated_ingest() {
        let config = EngineConfig::with_shards(2).batch_capacity(8);
        let mut weighted = IngestEngine::new(CountMinSketch::new(64, 3, 2), config);
        let mut repeated = IngestEngine::new(CountMinSketch::new(64, 3, 2), config);
        for id in 0..50u64 {
            weighted.ingest_weighted(&element(id), 3).unwrap();
            for _ in 0..3 {
                repeated.ingest(&element(id)).unwrap();
            }
        }
        for id in 0..60u64 {
            assert_eq!(
                weighted.query_synced(&element(id)).unwrap(),
                repeated.query_synced(&element(id)).unwrap()
            );
        }
    }

    #[test]
    fn queries_between_ingests_stay_fresh() {
        let mut engine = IngestEngine::new(
            CountMinSketch::new(64, 3, 3),
            EngineConfig::with_shards(2).batch_capacity(1024),
        );
        engine.ingest(&element(42)).unwrap();
        assert_eq!(engine.query_synced(&element(42)).unwrap(), 1.0);
        engine.ingest(&element(42)).unwrap();
        assert_eq!(engine.query_synced(&element(42)).unwrap(), 2.0);
        assert_eq!(engine.stats().flushes, 2, "each query forces a flush");
    }

    #[test]
    fn buffered_counts_pending_distinct_elements() {
        let mut engine = IngestEngine::new(
            CountMinSketch::new(64, 3, 3),
            EngineConfig::with_shards(2).batch_capacity(1024),
        );
        for id in 0..10u64 {
            engine.ingest(&element(id)).unwrap();
            engine.ingest(&element(id)).unwrap();
        }
        assert_eq!(engine.buffered(), 10);
        let stats = engine.stats();
        assert_eq!(stats.buffered_updates, 10);
        assert_eq!(stats.buffered_mass, 20);
        engine.flush().unwrap();
        assert_eq!(engine.buffered(), 0);
        assert_eq!(engine.stats().unaccounted_mass(), 0);
    }

    #[test]
    fn zero_weight_updates_are_rejected_and_counted() {
        let mut engine =
            IngestEngine::new(CountMinSketch::new(64, 3, 3), EngineConfig::with_shards(2));
        engine.ingest_weighted(&element(7), 2).unwrap();
        let err = engine.ingest_weighted(&element(7), 0).unwrap_err();
        assert_eq!(err, EngineError::ZeroWeight { id: ElementId(7) });
        let stats = engine.stats();
        assert_eq!(stats.zero_weight_rejections, 1);
        // Zero-weight updates carry no mass: the ledgers never saw them.
        assert_eq!(stats.mass.offered, 2);
        assert!(stats.conserved());
        assert_eq!(engine.query_synced(&element(7)).unwrap(), 2.0);
    }

    #[test]
    fn degrade_policy_grows_the_buffer_without_losing_mass() {
        // One shard, tiny batches, a depth-1 queue: all-distinct arrivals
        // fill batches as fast as possible, so some dispatches find the
        // queue full and degrade into the growing buffer.
        let backend = CountMinSketch::new(256, 4, 5);
        let mut sequential = backend.clone();
        let mut engine = IngestEngine::new(
            backend,
            EngineConfig {
                shards: 1,
                batch_capacity: 4,
                queue_capacity: 1,
                backpressure: BackpressurePolicy::DegradeAggregate,
                ..EngineConfig::default()
            },
        );
        for id in 0..2_000u64 {
            sequential.add(ElementId(id), 1);
            engine.ingest(&element(id)).unwrap();
        }
        let stats = engine.stats();
        assert!(stats.conserved());
        assert_eq!(stats.ingested_elements(), 2_000);
        assert_eq!(stats.unaccounted_mass(), 0);
        for id in (0..2_000u64).step_by(97) {
            assert_eq!(
                engine.query_synced(&element(id)).unwrap(),
                CountMinSketch::query(&sequential, ElementId(id)) as f64
            );
        }
    }

    #[test]
    fn snapshot_query_agrees_with_synced_query_after_flush() {
        for mode in [IngestMode::Workers, IngestMode::Inline] {
            let mut engine = IngestEngine::new(
                CountMinSketch::new(128, 4, 7),
                EngineConfig::with_shards(3).batch_capacity(32).mode(mode),
            );
            for id in 0..2_000u64 {
                engine.ingest(&element(id % 150)).unwrap();
            }
            engine.flush().unwrap();
            for id in 0..200u64 {
                let snapshot = engine.query(&element(id));
                let synced = engine.query_synced(&element(id)).unwrap();
                assert_eq!(snapshot.estimate, synced, "post-flush agreement for {id}");
            }
            let stamp = engine.snapshot_stamp();
            assert_eq!(stamp.scheme_version, 0);
            assert_eq!(stamp.epoch_per_shard.len(), 3);
            assert_eq!(
                stamp.mass_accounted, 2_000,
                "a flushed stamp covers all mass"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = IngestEngine::new(CountMinSketch::new(8, 1, 1), EngineConfig::with_shards(0));
    }
}
