//! The sharded, batched [`IngestEngine`].

use crate::backend::SketchBackend;
use opthash_stream::{SpaceReport, Stream, StreamElement};

/// One-multiply mixer (xor-fold, multiply, xor-fold — the cheap half of the
/// MurmurHash3/SplitMix finalizers): the engine's stateless router hash.
/// One multiply keeps it off the ingest hot path's critical latency, while
/// the xor-folds spread entropy into both the low bits (batch slot index)
/// and the high bits (shard selector) even for dense or strided IDs.
#[inline]
fn mix64(x: u64) -> u64 {
    let mut z = x ^ (x >> 33);
    z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z ^ (z >> 29)
}

/// Configuration of an [`IngestEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of shards the key space is hash-partitioned into. Each shard
    /// owns a fork of the backend and is applied by its own worker thread
    /// during a flush.
    pub shards: usize,
    /// Number of *distinct* elements a shard buffers before a flush is
    /// triggered. Larger batches aggregate more duplicate arrivals (a big
    /// win on skewed streams) at the cost of staleness and buffer memory.
    pub batch_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            batch_capacity: 8_192,
        }
    }
}

impl EngineConfig {
    /// A configuration with `shards` shards and the default batch capacity.
    pub fn with_shards(shards: usize) -> Self {
        EngineConfig {
            shards,
            ..EngineConfig::default()
        }
    }

    /// Sets the per-shard batch capacity.
    pub fn batch_capacity(mut self, batch_capacity: usize) -> Self {
        self.batch_capacity = batch_capacity;
        self
    }
}

/// Counters describing what an [`IngestEngine`] has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Arrivals accepted (one per [`IngestEngine::ingest`] call).
    pub ingested_elements: u64,
    /// Total count mass accepted (≥ `ingested_elements` for weighted
    /// ingestion).
    pub ingested_mass: u64,
    /// Number of flushes performed.
    pub flushes: u64,
    /// Weighted updates actually applied to shard backends. The ratio
    /// `ingested_elements / applied_updates` is the batching win: duplicate
    /// arrivals of an element within a batch collapse into one update.
    pub applied_updates: u64,
}

impl EngineStats {
    /// Average number of arrivals collapsed into one applied update
    /// (1.0 = no aggregation; higher is better).
    pub fn aggregation_factor(&self) -> f64 {
        if self.applied_updates == 0 {
            1.0
        } else {
            self.ingested_elements as f64 / self.applied_updates as f64
        }
    }
}

/// One shard's pending batch: a small open-addressing table keyed by element
/// ID that pre-aggregates duplicate arrivals into weighted updates.
///
/// Layout is chosen for the ingest hot path: the probe loop touches only a
/// flat `(id, count)` array (16 bytes per slot, one cache line per arrival
/// for the hot head of a skewed stream). Feature vectors — needed only by
/// the learned backends for elements that carry them — live in a lazily
/// allocated side table that the probe loop never reads. A slot is empty
/// iff its count is zero (the engine never buffers zero-count updates).
///
/// The table is sized for a maximum load factor of 3/4, so an upsert
/// probes O(1) expected slots.
#[derive(Debug)]
struct BatchBuffer {
    /// `(element id, pending count)`; `count == 0` marks an empty slot.
    /// Length is always a power of two.
    entries: Vec<(u64, u64)>,
    /// Parallel side table holding the first-seen element for IDs whose
    /// features are non-empty; allocated on first such insert.
    featured: Vec<Option<StreamElement>>,
    len: usize,
    limit: usize,
}

impl BatchBuffer {
    fn new(batch_capacity: usize) -> Self {
        let limit = batch_capacity.max(1);
        // Size for a maximum load factor of 3/4: expected probe chains stay
        // short (the table is far emptier than that for most of a window)
        // while the cache footprint per unit of batch capacity stays small.
        let slots = (limit * 4 / 3 + 1).next_power_of_two();
        BatchBuffer {
            entries: vec![(0, 0); slots],
            featured: Vec::new(),
            len: 0,
            limit,
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `count > 0` arrivals of `element`; returns `true` once the
    /// buffer has reached its distinct-element limit and should be flushed.
    /// The element is cloned only when a *featured* element occupies a slot
    /// for the first time — duplicate arrivals (the common case on skewed
    /// streams) touch nothing but the 16-byte entry.
    #[inline]
    fn upsert(&mut self, hash: u64, element: &StreamElement, count: u64) -> bool {
        let key = element.id.raw();
        // Deriving the mask from `entries.len()` (a power of two) lets the
        // compiler prove the probe index in bounds and elide the checks.
        let mask = self.entries.len() - 1;
        let mut idx = hash as usize & mask;
        loop {
            let entry = &mut self.entries[idx];
            if entry.1 != 0 {
                if entry.0 == key {
                    entry.1 += count;
                    return false;
                }
                idx = (idx + 1) & mask;
                continue;
            }
            *entry = (key, count);
            if !element.features.is_empty() {
                if self.featured.is_empty() {
                    self.featured = vec![None; self.entries.len()];
                }
                self.featured[idx] = Some(element.clone());
            }
            self.len += 1;
            return self.len >= self.limit;
        }
    }

    /// Requests the cache line of `hash`'s home slot ahead of its upsert.
    /// Issued from [`IngestEngine::ingest_batch`]'s lookahead so that cold
    /// slots are already in cache when the probe reaches them.
    #[inline]
    fn prefetch(&self, hash: u64) {
        let idx = hash as usize & (self.entries.len() - 1);
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `idx` is in bounds by the mask, and prefetching any
        // mapped address has no observable effect beyond the caches.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.entries.as_ptr().add(idx).cast::<i8>(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = idx;
    }

    /// Applies and clears every pending entry; returns the number of
    /// weighted updates applied.
    fn drain_into<B: SketchBackend>(&mut self, backend: &mut B) -> u64 {
        let mut applied = 0u64;
        for idx in 0..self.entries.len() {
            let (key, count) = self.entries[idx];
            if count == 0 {
                continue;
            }
            self.entries[idx] = (0, 0);
            match self.featured.get_mut(idx).and_then(Option::take) {
                Some(element) => backend.ingest(&element, count),
                None => backend.ingest(&StreamElement::without_features(key), count),
            }
            applied += 1;
        }
        self.len = 0;
        applied
    }
}

/// A sharded, batched ingestion front-end for any [`SketchBackend`].
///
/// Arrivals are hash-partitioned by element ID across `N` shards. Each shard
/// buffers its arrivals in a pre-aggregating batch (duplicate IDs collapse
/// into one weighted update — a large win on the skewed streams the paper
/// studies); full batches are applied to per-shard backend forks by worker
/// threads spawned with [`std::thread::scope`]. Queries merge the shard
/// forks back into a single estimator (cached until the next ingest).
///
/// Because the partition is *by ID*, every distinct element lives in exactly
/// one shard, which makes sharding exact for all linear backends **and** for
/// [`opthash::AdaptiveOptHash`]. Exactness assumes each ID's features are
/// identical across appearances, as [`StreamElement`] specifies: within a
/// batch window duplicate arrivals are applied through the ID's first-seen
/// element (see [`SketchBackend`] for the full contract).
///
/// Memory: the engine keeps `shards + 1` copies of the backend's counter
/// state (the pristine base plus one fork per shard) plus
/// `2 × batch_capacity` buffered elements per shard, trading memory for
/// ingest throughput.
#[derive(Debug)]
pub struct IngestEngine<B: SketchBackend> {
    base: B,
    shards: Vec<B>,
    buffers: Vec<BatchBuffer>,
    merged: Option<B>,
    config: EngineConfig,
    stats: EngineStats,
}

impl<B: SketchBackend> IngestEngine<B> {
    /// Wraps `backend` in an engine with the given configuration.
    ///
    /// The backend may already hold state (e.g. a trained
    /// [`opthash::OptHash`] with prefix counts); that state is preserved in
    /// the base copy and never double-counted by shard merges.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    pub fn new(backend: B, config: EngineConfig) -> Self {
        assert!(config.shards > 0, "engine needs at least one shard");
        let shards: Vec<B> = (0..config.shards).map(|_| backend.fork()).collect();
        let buffers = (0..config.shards)
            .map(|_| BatchBuffer::new(config.batch_capacity))
            .collect();
        IngestEngine {
            base: backend,
            shards,
            buffers,
            merged: None,
            config,
            stats: EngineStats::default(),
        }
    }

    /// Wraps `backend` with the default configuration (4 shards, 8 Ki
    /// distinct elements per batch).
    pub fn with_defaults(backend: B) -> Self {
        Self::new(backend, EngineConfig::default())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Ingestion counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of distinct elements currently buffered across all shards.
    pub fn buffered(&self) -> usize {
        self.buffers.iter().map(|b| b.len).sum()
    }

    /// Accepts one arrival.
    #[inline]
    pub fn ingest(&mut self, element: &StreamElement) {
        self.ingest_weighted(element, 1);
    }

    /// Accepts `count` arrivals of `element` at once (`count == 0` is a
    /// no-op, matching the backends' `add` semantics).
    #[inline]
    pub fn ingest_weighted(&mut self, element: &StreamElement, count: u64) {
        if count == 0 {
            return;
        }
        // No `merged` invalidation here: the arrival lands in a buffer, and
        // both paths that could expose it (auto-drain below, `flush` before
        // any query/merge) invalidate the cache themselves.
        self.stats.ingested_elements += 1;
        self.stats.ingested_mass += count;
        let hash = mix64(element.id.raw());
        // Multiply-shift on the high bits picks the shard; the low bits
        // index the buffer's slot table, so the two stay decorrelated.
        let shard = (((hash >> 32) * self.shards.len() as u64) >> 32) as usize;
        if self.buffers[shard].upsert(hash, element, count) {
            // Drain only the full shard: its siblings keep aggregating
            // their half-filled batches (flushing everything here would
            // waste their remaining deduplication window).
            self.merged = None;
            self.stats.flushes += 1;
            self.stats.applied_updates += self.buffers[shard].drain_into(&mut self.shards[shard]);
        }
    }

    /// Accepts a slice of arrivals — the engine's preferred bulk path.
    ///
    /// Beyond amortizing per-call bookkeeping (the stats counters are
    /// maintained in registers across the loop), each arrival's batch slot
    /// is prefetched a few elements ahead, hiding the cache-miss latency of
    /// cold (tail) elements behind the work of the hot head.
    pub fn ingest_batch(&mut self, elements: &[StreamElement]) {
        /// How many arrivals ahead to prefetch: far enough to cover an
        /// L2/L3 miss, near enough to stay in the prefetch queues.
        const LOOKAHEAD: usize = 12;
        let nshards = self.shards.len() as u64;
        for (position, element) in elements.iter().enumerate() {
            if let Some(upcoming) = elements.get(position + LOOKAHEAD) {
                let hash = mix64(upcoming.id.raw());
                let shard = (((hash >> 32) * nshards) >> 32) as usize;
                self.buffers[shard].prefetch(hash);
            }
            let hash = mix64(element.id.raw());
            let shard = (((hash >> 32) * nshards) >> 32) as usize;
            if self.buffers[shard].upsert(hash, element, 1) {
                self.merged = None;
                self.stats.flushes += 1;
                self.stats.applied_updates +=
                    self.buffers[shard].drain_into(&mut self.shards[shard]);
            }
        }
        self.stats.ingested_elements += elements.len() as u64;
        self.stats.ingested_mass += elements.len() as u64;
    }

    /// Accepts a whole stream in arrival order.
    pub fn ingest_stream(&mut self, stream: &Stream) {
        self.ingest_batch(stream.as_slice());
    }

    /// Applies every buffered batch to its shard's backend fork.
    ///
    /// With more than one shard the batches are applied concurrently, one
    /// scoped worker thread per non-empty shard ([`std::thread::scope`]);
    /// a single-shard engine applies inline to skip the spawn cost.
    ///
    /// Called automatically before a query/merge; during ingestion a shard
    /// whose batch fills up is drained individually instead (inline, so its
    /// siblings keep their deduplication windows).
    pub fn flush(&mut self) {
        if self.buffers.iter().all(|b| b.is_empty()) {
            return;
        }
        self.merged = None;
        self.stats.flushes += 1;
        let applied: u64 = if self.shards.len() == 1 {
            self.buffers[0].drain_into(&mut self.shards[0])
        } else {
            std::thread::scope(|scope| {
                let mut workers = Vec::with_capacity(self.shards.len());
                for (shard, buffer) in self.shards.iter_mut().zip(self.buffers.iter_mut()) {
                    if buffer.is_empty() {
                        continue;
                    }
                    workers.push(scope.spawn(move || buffer.drain_into(shard)));
                }
                workers
                    .into_iter()
                    .map(|w| w.join().expect("shard worker panicked"))
                    .sum()
            })
        };
        self.stats.applied_updates += applied;
    }

    /// Itemized memory usage of the *logical* estimator (one backend's
    /// state). The engine physically replicates counter state
    /// `shards + 1` times; multiply accordingly for resident memory.
    pub fn space_report(&self) -> SpaceReport {
        self.base.space_report()
    }

    /// The wrapped backend's report name.
    pub fn backend_name(&self) -> &'static str {
        self.base.backend_name()
    }

    /// Flushes, merges every shard into the base and returns the final
    /// estimator, consuming the engine.
    pub fn finish(mut self) -> B {
        self.flush();
        let mut merged = self.base;
        for shard in &self.shards {
            merged.merge(shard);
        }
        merged
    }
}

impl<B: SketchBackend + Clone> IngestEngine<B> {
    /// Flushes all pending batches and returns the merged estimator view.
    ///
    /// The merge costs `O(shards × state size)` but is cached: repeated
    /// queries without interleaved ingestion reuse the same merged backend.
    pub fn merged(&mut self) -> &B {
        self.flush();
        if self.merged.is_none() {
            let mut merged = self.base.clone();
            for shard in &self.shards {
                merged.merge(shard);
            }
            self.merged = Some(merged);
        }
        self.merged.as_ref().expect("merged view just built")
    }

    /// Returns the estimated frequency of `element`, flushing and merging
    /// first so the answer reflects every accepted arrival.
    pub fn query(&mut self, element: &StreamElement) -> f64 {
        self.merged().query(element)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opthash_sketch::CountMinSketch;
    use opthash_stream::ElementId;

    fn element(id: u64) -> StreamElement {
        StreamElement::without_features(id)
    }

    #[test]
    fn engine_matches_sequential_count_min() {
        let backend = CountMinSketch::new(128, 4, 7);
        let mut sequential = backend.clone();
        let mut engine =
            IngestEngine::new(backend, EngineConfig::with_shards(4).batch_capacity(64));

        let mut state = 1u64;
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let id = state % 500;
            sequential.add(ElementId(id), 1);
            engine.ingest(&element(id));
        }
        for id in 0..600u64 {
            assert_eq!(
                engine.query(&element(id)),
                CountMinSketch::query(&sequential, ElementId(id)) as f64,
                "mismatch for {id}"
            );
        }
        assert_eq!(engine.stats().ingested_elements, 20_000);
        assert!(engine.stats().flushes > 0);
        assert!(
            engine.stats().aggregation_factor() > 1.0,
            "500 distinct ids in batches of 64x4 must aggregate"
        );
    }

    #[test]
    fn finish_returns_the_merged_backend() {
        let mut engine = IngestEngine::new(
            CountMinSketch::new(64, 3, 1),
            EngineConfig::with_shards(3).batch_capacity(16),
        );
        for id in 0..100u64 {
            engine.ingest_weighted(&element(id), 5);
        }
        let merged = engine.finish();
        for id in 0..100u64 {
            assert!(CountMinSketch::query(&merged, ElementId(id)) >= 5);
        }
        assert_eq!(merged.total_updates(), 500);
    }

    #[test]
    fn weighted_ingest_equals_repeated_ingest() {
        let config = EngineConfig::with_shards(2).batch_capacity(8);
        let mut weighted = IngestEngine::new(CountMinSketch::new(64, 3, 2), config);
        let mut repeated = IngestEngine::new(CountMinSketch::new(64, 3, 2), config);
        for id in 0..50u64 {
            weighted.ingest_weighted(&element(id), 3);
            for _ in 0..3 {
                repeated.ingest(&element(id));
            }
        }
        for id in 0..60u64 {
            assert_eq!(weighted.query(&element(id)), repeated.query(&element(id)));
        }
    }

    #[test]
    fn queries_between_ingests_stay_fresh() {
        let mut engine = IngestEngine::new(
            CountMinSketch::new(64, 3, 3),
            EngineConfig::with_shards(2).batch_capacity(1024),
        );
        engine.ingest(&element(42));
        assert_eq!(engine.query(&element(42)), 1.0);
        engine.ingest(&element(42));
        assert_eq!(engine.query(&element(42)), 2.0);
        assert_eq!(engine.stats().flushes, 2, "each query forces a flush");
    }

    #[test]
    fn buffered_counts_pending_distinct_elements() {
        let mut engine = IngestEngine::new(
            CountMinSketch::new(64, 3, 3),
            EngineConfig::with_shards(2).batch_capacity(1024),
        );
        for id in 0..10u64 {
            engine.ingest(&element(id));
            engine.ingest(&element(id));
        }
        assert_eq!(engine.buffered(), 10);
        engine.flush();
        assert_eq!(engine.buffered(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = IngestEngine::new(CountMinSketch::new(8, 1, 1), EngineConfig::with_shards(0));
    }
}
