//! Root helper crate for the `opthash` reproduction workspace.
//!
//! This crate exists so that the repository-level `examples/` and `tests/`
//! directories can exercise the public API of every workspace crate from a
//! single place. It re-exports the crates so examples can write
//! `use opthash_repro::prelude::*;`.
//!
//! ```
//! use opthash_repro::prelude::*;
//!
//! // A baseline sketch behind the sharded ingest engine.
//! let sketch = CountMinSketch::new(256, 4, 1);
//! let mut engine = IngestEngine::new(sketch, EngineConfig::with_shards(2));
//! for id in 0..1_000u64 {
//!     engine.ingest(&StreamElement::without_features(id % 10))?;
//! }
//! assert_eq!(engine.query_synced(&StreamElement::without_features(3u64))?, 100.0);
//! # Ok::<(), EngineError>(())
//! ```

pub use opthash;
pub use opthash_datagen as datagen;
pub use opthash_engine as engine;
pub use opthash_ml as ml;
pub use opthash_registry as registry;
pub use opthash_sketch as sketch;
pub use opthash_solver as solver;
pub use opthash_stream as stream;

/// Convenience re-exports of the most commonly used types across the
/// workspace, mirroring what a downstream user of the published crates would
/// import.
pub mod prelude {
    pub use opthash::{
        AdaptiveOptHash, EstimatorStats, OptHash, OptHashBuilder, OptHashConfig, SolverKind,
    };
    pub use opthash_datagen::drift::{DriftConfig, DriftingWorkload};
    pub use opthash_datagen::groups::{GroupConfig, GroupDataset};
    pub use opthash_datagen::querylog::{QueryLogConfig, QueryLogDataset};
    pub use opthash_engine::{
        BackpressurePolicy, EngineConfig, EngineError, EngineStats, EpochStamp, FaultEvent,
        FaultInjector, FaultLog, IngestEngine, IngestMode, RetrainConfig, RetrainStats, Retrainer,
        SketchBackend, SnapshotEstimate, SnapshotReader, TrainedScheme,
    };
    #[cfg(feature = "failpoints")]
    pub use opthash_engine::{FaultAction, FaultPlan};
    pub use opthash_ml::ClassifierKind;
    pub use opthash_registry::{
        BackendSpec, GovernorOutcome, RegistryConfig, RegistryError, RegistryStats, SketchRegistry,
        SketchServer, TenantId, TenantReport,
    };
    pub use opthash_sketch::{
        BloomFilter, CountMinSketch, CountSketch, LearnedCountMin, MisraGries,
    };
    pub use opthash_solver::{
        BcdConfig, BcdSolver, ExactConfig, HashingProblem, HashingSolution, PortfolioConfig,
        PortfolioSolver, SolverStats,
    };
    pub use opthash_stream::{
        ElementId, ErrorMetrics, Features, FrequencyEstimator, FrequencyVector, SpaceBudget,
        Stream, StreamElement, StreamPrefix,
    };
}
