//! End-to-end drift suite for the online re-training engine.
//!
//! Acceptance contract exercised here:
//!
//! * on a rotating-Zipf drifting workload, the retraining engine's
//!   sliding-window estimation error is at least 25% below a statically
//!   trained `OptHash`'s from the first post-drift epoch on, and never
//!   worse than a plain Count-Min sketch fed the same arrivals;
//! * a hot-swap in the middle of a live stream is **bit-safe**: queries
//!   before and after the swap answer exactly the incumbent and the fresh
//!   scheme respectively, the retired backend equals a sequential replay of
//!   the pre-swap arrivals, and nothing panics or stalls;
//! * `unaccounted_mass()` is 0 across every hot-swap, in both ingest modes.

use opthash_repro::prelude::*;
use std::collections::{HashMap, VecDeque};

fn drift_workload() -> DriftingWorkload {
    DriftingWorkload::new(DriftConfig {
        universe: 500,
        exponent: 1.1,
        epoch_len: 4_000,
        epochs: 3,
        rotation: 150,
        seed: 9,
    })
}

fn bcd_warm() -> SolverKind {
    SolverKind::Bcd(BcdConfig::default().with_warm_start())
}

/// Mean absolute error against the exact counts of the arrivals in `tail`,
/// probed at every distinct element of the window.
fn window_mae(
    tail: &VecDeque<StreamElement>,
    mut estimate: impl FnMut(&StreamElement) -> f64,
) -> f64 {
    let mut truth: HashMap<ElementId, (u64, StreamElement)> = HashMap::new();
    for element in tail {
        truth
            .entry(element.id)
            .and_modify(|entry| entry.0 += 1)
            .or_insert_with(|| (1, element.clone()));
    }
    let total: f64 = truth
        .values()
        .map(|(count, element)| (estimate(element) - *count as f64).abs())
        .sum();
    total / truth.len().max(1) as f64
}

/// The headline drift claim: retraining beats the static scheme by ≥ 25%
/// after the first rotation and tracks (or beats) plain Count-Min, while
/// conserving mass across every hot-swap.
#[test]
fn retraining_engine_tracks_drift_better_than_static_schemes() {
    let workload = drift_workload();
    let window = 2_000usize;

    let epoch0 = workload.epoch_arrivals(0);
    let boot = StreamPrefix::from_stream(Stream::from_arrivals(epoch0[..window].to_vec()));
    let initial = OptHashBuilder::new(32)
        .lambda(1.0)
        .solver(bcd_warm())
        .train(&boot);

    let mut retrainer = Retrainer::new(
        initial.clone(),
        EngineConfig::with_shards(3),
        RetrainConfig {
            window,
            retrain_interval: 900,
            min_distinct: 16,
            background: false,
            portfolio: false,
        },
    );
    let mut static_opthash = initial;
    let mut count_min = CountMinSketch::new(32, 4, 9);

    let mut tail: VecDeque<StreamElement> = VecDeque::with_capacity(window + 1);
    for epoch in 0..workload.config().epochs {
        for element in &workload.epoch_arrivals(epoch) {
            retrainer.ingest(element).expect("retrainer ingest");
            static_opthash.add(element, 1);
            count_min.add(element.id, 1);
            if tail.len() == window {
                tail.pop_front();
            }
            tail.push_back(element.clone());
        }

        let mae_retrain = {
            let r = &mut retrainer;
            window_mae(&tail, |e| r.query(e).expect("retrainer query"))
        };
        let mae_static = window_mae(&tail, |e| FrequencyEstimator::estimate(&static_opthash, e));
        let mae_cms = window_mae(&tail, |e| count_min.query(e.id) as f64);

        assert_eq!(
            retrainer.engine_stats().unaccounted_mass(),
            0,
            "hot-swaps must conserve mass through epoch {epoch}"
        );
        assert!(
            mae_retrain <= mae_cms,
            "epoch {epoch}: retraining engine ({mae_retrain:.2}) must track or beat \
             plain count-min ({mae_cms:.2})"
        );
        if epoch >= 1 {
            assert!(
                mae_retrain <= 0.75 * mae_static,
                "epoch {epoch}: retraining engine ({mae_retrain:.2}) must cut ≥ 25% of \
                 the static scheme's window error ({mae_static:.2})"
            );
        }
    }

    let stats = retrainer.retrain_stats();
    assert!(stats.swaps >= 2, "the schedule must have hot-swapped");
    assert_eq!(stats.failed, 0);
    assert!(
        retrainer.scheme().solver_stats().warm_started,
        "scheduled re-solves must warm-start from the incumbent"
    );
    assert_eq!(retrainer.take_retired().len() as u64, stats.swaps);
    retrainer.finish().expect("clean finish");
}

/// Bit-safety of a mid-stream swap, per ingest mode: the retired backend is
/// exactly the sequential pre-swap replay, and post-swap queries are exactly
/// the fresh scheme plus the post-swap arrivals.
fn check_swap_is_bit_safe(mode: IngestMode) {
    let phase1: Vec<StreamElement> = (0..2_000u64)
        .map(|i| StreamElement::without_features(i % 50))
        .collect();
    let phase2: Vec<StreamElement> = (0..2_000u64)
        .map(|i| StreamElement::without_features(100 + i % 50))
        .collect();
    let train = |arrivals: &[StreamElement]| {
        OptHashBuilder::new(16)
            .lambda(1.0)
            .solver(bcd_warm())
            .train(&StreamPrefix::from_stream(Stream::from_arrivals(
                arrivals.to_vec(),
            )))
    };
    let scheme_a = train(&phase1);
    let scheme_b = train(&phase2);

    let mut engine = IngestEngine::new(scheme_a.clone(), EngineConfig::with_shards(3).mode(mode));
    for element in &phase1 {
        engine.ingest(element).expect("phase-1 ingest");
    }
    let probe = StreamElement::without_features(7u64);
    let before = engine.query_synced(&probe).expect("query before swap");

    // Swap mid-stream: no panic, no stall, version bump, zero unaccounted.
    let retired = engine.swap_backend(scheme_b.clone()).expect("hot swap");
    assert_eq!(engine.scheme_version(), 1);
    assert_eq!(engine.stats().unaccounted_mass(), 0);

    // The retired backend is bit-identical to a sequential replay of the
    // pre-swap arrivals into the incumbent (OptHash is a linear backend).
    let mut reference_a = scheme_a;
    for element in &phase1 {
        reference_a.add(element, 1);
    }
    for id in 0..200u64 {
        let e = StreamElement::without_features(id);
        assert_eq!(
            SketchBackend::query(&retired, &e),
            SketchBackend::query(&reference_a, &e),
            "retired scheme diverged from sequential replay at id {id} ({mode:?})"
        );
    }
    assert_eq!(before, SketchBackend::query(&reference_a, &probe));

    // The engine keeps ingesting on the fresh scheme; queries equal the
    // fresh scheme plus exactly the post-swap arrivals.
    for element in &phase2 {
        engine.ingest(element).expect("phase-2 ingest");
    }
    let mut reference_b = scheme_b;
    for element in &phase2 {
        reference_b.add(element, 1);
    }
    for id in 0..200u64 {
        let e = StreamElement::without_features(id);
        assert_eq!(
            engine.query_synced(&e).expect("query after swap"),
            SketchBackend::query(&reference_b, &e),
            "post-swap engine diverged from the fresh scheme at id {id} ({mode:?})"
        );
    }
    assert_eq!(engine.stats().unaccounted_mass(), 0);
    engine.finish().expect("clean finish");
}

#[test]
fn hot_swap_mid_stream_is_bit_safe_in_worker_mode() {
    check_swap_is_bit_safe(IngestMode::Workers);
}

#[test]
fn hot_swap_mid_stream_is_bit_safe_in_inline_mode() {
    check_swap_is_bit_safe(IngestMode::Inline);
}

/// Background training publishes without stalling ingest: drive arrivals
/// until the background solve lands, bounded by the arrival count (no
/// sleeps, no unbounded wait).
#[test]
fn background_retraining_publishes_without_stalling() {
    let workload = drift_workload();
    let epoch0 = workload.epoch_arrivals(0);
    let boot = StreamPrefix::from_stream(Stream::from_arrivals(epoch0[..1_000].to_vec()));
    let initial = OptHashBuilder::new(32)
        .lambda(1.0)
        .solver(bcd_warm())
        .train(&boot);
    let mut retrainer = Retrainer::new(
        initial,
        EngineConfig::with_shards(2),
        RetrainConfig {
            window: 1_000,
            retrain_interval: 500,
            min_distinct: 16,
            background: true,
            portfolio: false,
        },
    );
    for epoch in 0..workload.config().epochs {
        for element in &workload.epoch_arrivals(epoch) {
            retrainer.ingest(element).expect("background ingest");
        }
    }
    // Deterministically drain whatever solve is still in flight.
    retrainer.retrain_now().expect("final synchronous retrain");
    assert!(retrainer.scheme_version() >= 1, "a swap must have landed");
    assert_eq!(retrainer.retrain_stats().failed, 0);
    assert_eq!(retrainer.engine_stats().unaccounted_mass(), 0);
    retrainer.finish().expect("clean finish");
}
