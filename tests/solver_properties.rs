//! Property-based tests of the optimization layer: the relationships between
//! the dp / bcd / exact solvers that the paper relies on (optimality of the
//! DP for λ = 1, BCD never worse than its initialization, the exact solver
//! matching brute force) must hold on arbitrary inputs, not just the
//! hand-picked examples of the unit tests.

use opthash_solver::{
    brute_force, kmedian, BcdConfig, BcdSolver, ExactConfig, ExactSolver, HashingProblem,
    IncrementalObjective, PortfolioConfig, PortfolioSolver,
};
use opthash_stream::{assignment_errors, Features};
use proptest::prelude::*;

/// Strategy for small frequency vectors with positive entries.
fn frequencies(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1u32..500u32, 2..max_len)
        .prop_map(|v| v.into_iter().map(f64::from).collect())
}

/// Deterministic 2-D features derived from the frequencies, so similarity
/// structure exists without needing a second random input.
fn features_for(freqs: &[f64]) -> Vec<Features> {
    freqs
        .iter()
        .enumerate()
        .map(|(i, &f)| Features::new(vec![(f % 37.0) - 18.0, ((i * 7) % 23) as f64 - 11.0]))
        .collect()
}

/// A drifted copy of `freqs`: every entry scaled by a deterministic ±5%,
/// modelling the between-retrain drift the online engine re-solves under.
fn perturb(freqs: &[f64]) -> Vec<f64> {
    freqs
        .iter()
        .enumerate()
        .map(|(i, &f)| (f * (0.95 + ((i * 13) % 11) as f64 / 100.0)).max(0.5))
        .collect()
}

/// Regression: on a drifted two-cluster instance, warm-starting from the
/// incumbent must reach a cost no worse than a cold solve **in strictly
/// fewer sweeps**, visible through the repaired [`opthash_solver::SolverStats`]
/// (before this fix `BcdSolver::solve` left `iterations`/`restarts`
/// unpopulated, so this speedup was unobservable).
#[test]
fn warm_start_beats_cold_start_on_drifted_instance() {
    let freqs: Vec<f64> = (0..24)
        .map(|i| {
            if i % 2 == 0 {
                400.0 + i as f64
            } else {
                10.0 + i as f64
            }
        })
        .collect();
    let buckets = 4;
    let solver = BcdSolver::new(BcdConfig {
        restarts: 1,
        seed: 7,
        ..BcdConfig::default()
    });
    // The incumbent comes from a thorough multi-restart bootstrap solve —
    // exactly what the online retrainer starts from.
    let incumbent = BcdSolver::new(BcdConfig {
        restarts: 6,
        seed: 7,
        ..BcdConfig::default()
    })
    .solve(&HashingProblem::frequency_only(freqs.clone(), buckets));
    let drifted = HashingProblem::frequency_only(perturb(&freqs), buckets);

    let cold = solver.solve(&drifted);
    let warm = solver.solve_warm(&drifted, &incumbent);

    assert!(warm.stats.warm_started && !cold.stats.warm_started);
    assert!(
        warm.objective <= cold.objective + 1e-9,
        "warm {} must not lose to cold {}",
        warm.objective,
        cold.objective
    );
    assert!(
        warm.stats.iterations < cold.stats.iterations,
        "warm start must converge in strictly fewer sweeps ({} vs {})",
        warm.stats.iterations,
        cold.stats.iterations
    );
    assert_eq!(warm.stats.restarts, 1);
    assert_eq!(
        warm.stats.cost_trajectory.len(),
        warm.stats.iterations + 1,
        "trajectory records the start plus one entry per sweep"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The λ = 1 DP is optimal over contiguous partitions of the sorted
    /// frequencies: in particular it can never lose to the sorted-split
    /// initialization (which is contiguous), and a BCD run warm-started from
    /// the DP solution can only keep or improve the objective (the descent
    /// property of Algorithm 1).
    #[test]
    fn dp_dominates_sorted_split_and_warm_started_bcd_descends(
        freqs in frequencies(24),
        buckets in 1usize..6,
        seed in 0u64..100,
    ) {
        let problem = HashingProblem::frequency_only(freqs.clone(), buckets);
        let dp = kmedian::solve_frequency_only(&problem);

        // Sorted-split: contiguous chunks of the frequency-sorted elements.
        let solver = BcdSolver::new(BcdConfig {
            init: opthash_solver::InitStrategy::SortedSplit,
            seed,
            ..BcdConfig::default()
        });
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let sorted_split = solver.initial_assignment(&problem, &mut rng);
        let sorted_split_error =
            assignment_errors(&freqs, &[], &sorted_split, buckets, 1.0).estimation_error;
        prop_assert!(dp.estimation_error <= sorted_split_error + 1e-6,
            "dp {} should not exceed the contiguous sorted split {}",
            dp.estimation_error, sorted_split_error);

        // Warm-starting BCD from the DP solution never degrades it.
        let warm = BcdSolver::new(BcdConfig {
            init: opthash_solver::InitStrategy::DpWarmStart,
            seed,
            ..BcdConfig::default()
        })
        .solve(&problem);
        prop_assert!(warm.objective <= dp.objective + 1e-6,
            "warm-started bcd {} should not exceed dp {}", warm.objective, dp.objective);
    }

    /// Every solver returns a complete, in-range assignment whose recomputed
    /// objective matches the one it reports.
    #[test]
    fn solvers_report_consistent_objectives(
        freqs in frequencies(16),
        buckets in 1usize..5,
        lambda_percent in 0u8..=100,
    ) {
        let lambda = f64::from(lambda_percent) / 100.0;
        let n = freqs.len();
        let problem = HashingProblem::new(freqs.clone(), Vec::new(), buckets, lambda);
        let bcd = BcdSolver::with_defaults().solve(&problem);
        prop_assert_eq!(bcd.assignment.len(), n);
        prop_assert!(bcd.assignment.iter().all(|&j| j < buckets));
        let recomputed = assignment_errors(&freqs, &[], &bcd.assignment, buckets, lambda);
        prop_assert!((recomputed.overall_error() - bcd.objective).abs() < 1e-6);
    }

    /// On tiny instances the branch-and-bound solver matches brute force for
    /// any λ, which is exactly the "solves Problem (2) to optimality" claim.
    #[test]
    fn exact_matches_brute_force(
        freqs in frequencies(7),
        lambda_percent in prop::sample::select(vec![0u8, 25, 50, 75, 100]),
        seed in 0u64..20,
    ) {
        let lambda = f64::from(lambda_percent) / 100.0;
        let features = features_for(&freqs);
        let problem = HashingProblem::new(freqs, features, 3, lambda);
        let exact = ExactSolver::new(ExactConfig { seed, ..ExactConfig::default() }).solve(&problem);
        let brute = brute_force(&problem);
        prop_assert!((exact.objective - brute.objective).abs() < 1e-6,
            "exact {} vs brute {}", exact.objective, brute.objective);
        prop_assert!(exact.stats.proven_optimal);
    }

    /// k-median DP invariants: cost is non-negative, non-increasing in the
    /// number of clusters, and zero when every element gets its own cluster.
    #[test]
    fn kmedian_cost_is_monotone_in_cluster_count(values in frequencies(20)) {
        let n = values.len();
        let mut previous = f64::INFINITY;
        for k in 1..=n {
            let result = kmedian::kmedian_dp(&values, k);
            prop_assert!(result.cost >= -1e-9);
            prop_assert!(result.cost <= previous + 1e-9,
                "cost increased from {previous} to {} at k={k}", result.cost);
            previous = result.cost;
        }
        prop_assert!(kmedian::kmedian_dp(&values, n).cost.abs() < 1e-9);
    }

    /// Warm-starting BCD from an incumbent solved on a *perturbed* problem
    /// is still a descent: the result never costs more than the incumbent
    /// assignment re-costed on the new instance, and [`SolverStats`] records
    /// the provenance (warm flag, initial objective, non-increasing cost
    /// trajectory, one trajectory entry per sweep).
    #[test]
    fn warm_started_bcd_descends_from_the_incumbent_on_perturbed_problems(
        freqs in frequencies(20),
        buckets in 2usize..5,
        seed in 0u64..50,
    ) {
        let solver = BcdSolver::new(BcdConfig { restarts: 1, seed, ..BcdConfig::default() });
        let incumbent = solver.solve(&HashingProblem::frequency_only(freqs.clone(), buckets));
        prop_assert!(!incumbent.stats.warm_started);

        let drifted = perturb(&freqs);
        let warm = solver.solve_warm(
            &HashingProblem::frequency_only(drifted.clone(), buckets),
            &incumbent,
        );
        prop_assert!(warm.stats.warm_started);

        // The trajectory starts exactly at the incumbent assignment's cost
        // on the drifted instance and never rises.
        let start =
            assignment_errors(&drifted, &[], &incumbent.assignment, buckets, 1.0).estimation_error;
        prop_assert!((warm.stats.initial_objective - start).abs() < 1e-6,
            "initial objective {} must be the incumbent re-costed {}",
            warm.stats.initial_objective, start);
        prop_assert!(warm.objective <= start + 1e-6,
            "warm descent went uphill: {} from {}", warm.objective, start);
        let trajectory = &warm.stats.cost_trajectory;
        prop_assert_eq!(trajectory.len(), warm.stats.iterations + 1,
            "one trajectory entry per sweep plus the start");
        prop_assert!(trajectory.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "cost trajectory must be non-increasing: {:?}", trajectory);
        prop_assert!((trajectory[trajectory.len() - 1] - warm.objective).abs() < 1e-9);
    }

    /// The incrementally maintained objective of the BCD descent's
    /// sufficient statistics equals a from-scratch recompute after an
    /// arbitrary sequence of committed moves — the invariant the whole
    /// incremental-cost rewrite stands on.
    #[test]
    fn incremental_objective_matches_recompute_after_arbitrary_moves(
        freqs in frequencies(20),
        buckets in 2usize..5,
        lambda_percent in prop::sample::select(vec![0u8, 30, 100]),
        moves in prop::collection::vec(0usize..10_000, 1..60),
    ) {
        let lambda = f64::from(lambda_percent) / 100.0;
        let n = freqs.len();
        let features = if lambda < 1.0 { features_for(&freqs) } else { Vec::new() };
        let problem = HashingProblem::new(freqs, features, buckets, lambda);
        let mut inc = IncrementalObjective::new(&problem, vec![0; n]);
        for &packed in &moves {
            // Each generated integer encodes one (element, bucket) move.
            let (i, j) = (packed % n, (packed / n) % buckets);
            let before = inc.objective();
            let predicted = inc.eval_move(i, j);
            inc.commit(i, j);
            let actual = inc.objective() - before;
            prop_assert!((predicted - actual).abs() < 1e-6,
                "move {i}->{j}: predicted delta {predicted} vs actual {actual}");
            let truth = inc.recomputed_objective();
            prop_assert!((inc.objective() - truth).abs() < 1e-6 * truth.abs().max(1.0),
                "maintained {} drifted from recompute {truth}", inc.objective());
        }
    }

    /// The racing portfolio runs (at least) the same restarts as a
    /// sequential no-abort BCD with the same budget, so its result can never
    /// be worse — racers only add candidates.
    #[test]
    fn portfolio_never_loses_to_sequential_bcd(
        freqs in frequencies(16),
        buckets in 2usize..5,
        seed in 0u64..20,
        lambda_percent in prop::sample::select(vec![50u8, 100]),
    ) {
        let lambda = f64::from(lambda_percent) / 100.0;
        let features = if lambda < 1.0 { features_for(&freqs) } else { Vec::new() };
        let problem = HashingProblem::new(freqs, features, buckets, lambda);
        let config = BcdConfig { restarts: 2, seed, ..BcdConfig::default() }.without_aborts();
        let sequential = BcdSolver::new(config).solve(&problem);
        let portfolio = PortfolioSolver::new(PortfolioConfig {
            bcd: config,
            ..PortfolioConfig::default()
        })
        .solve(&problem);
        prop_assert!(portfolio.objective <= sequential.objective + 1e-9,
            "portfolio {} lost to sequential bcd {}",
            portfolio.objective, sequential.objective);
    }

    /// The non-racing path stays deterministic: the same seed produces the
    /// same assignment, objective, and sweep count run-over-run (hot-swap
    /// reproducibility of the online engine depends on this).
    #[test]
    fn bcd_is_deterministic_given_a_seed(
        freqs in frequencies(16),
        buckets in 2usize..5,
        seed in 0u64..50,
    ) {
        let problem = HashingProblem::frequency_only(freqs, buckets);
        let solver = BcdSolver::new(BcdConfig { restarts: 3, seed, ..BcdConfig::default() });
        let a = solver.solve(&problem);
        let b = solver.solve(&problem);
        prop_assert_eq!(a.assignment, b.assignment);
        prop_assert_eq!(a.objective, b.objective);
        prop_assert_eq!(a.stats.iterations, b.stats.iterations);
        prop_assert_eq!(a.stats.moves_evaluated, b.stats.moves_evaluated);
        prop_assert_eq!(a.stats.restarts_aborted, b.stats.restarts_aborted);
    }

    /// The similarity term never goes negative and vanishes when λ = 1.
    #[test]
    fn objective_terms_are_non_negative(
        freqs in frequencies(12),
        lambda_percent in 0u8..=100,
        buckets in 1usize..4,
    ) {
        let lambda = f64::from(lambda_percent) / 100.0;
        let features = features_for(&freqs);
        let problem = HashingProblem::new(freqs, features, buckets, lambda);
        let solution = BcdSolver::with_defaults().solve(&problem);
        prop_assert!(solution.estimation_error >= 0.0);
        prop_assert!(solution.similarity_error >= 0.0);
        prop_assert!(solution.objective >= 0.0);
        if (lambda - 1.0).abs() < f64::EPSILON {
            prop_assert!((solution.objective - solution.estimation_error).abs() < 1e-9);
        }
    }
}
