//! Property-based tests of the multi-tenant registry: routing stability
//! under interleaved create/drop churn, and mass conservation when the
//! memory-budget governor is forced to degrade tenants mid-stream.

use opthash_repro::prelude::*;
use proptest::prelude::*;

/// Churn operations applied around a pinned tenant.
#[derive(Debug, Clone)]
enum ChurnOp {
    /// Create (or re-create) side tenant `n`.
    CreateSide(u8),
    /// Drop side tenant `n` if it exists.
    DropSide(u8),
    /// Ingest element `id` into the pinned tenant.
    IngestPinned(u8),
}

/// The vendored proptest has no tuple/oneof strategies, so an op is drawn
/// from one flat integer range and decoded: 0..12 create, 12..24 drop,
/// 24..56 ingest.
fn churn_ops(max_len: usize) -> impl Strategy<Value = Vec<ChurnOp>> {
    prop::collection::vec(
        (0u8..56).prop_map(|v| match v {
            0..=11 => ChurnOp::CreateSide(v),
            12..=23 => ChurnOp::DropSide(v - 12),
            _ => ChurnOp::IngestPinned(v - 24),
        }),
        1..max_len,
    )
}

proptest! {
    /// Routing stability: a tenant's handle and accumulated counts survive
    /// arbitrary interleaved creation and destruction of *other* tenants —
    /// the registry never silently re-routes a name to a different
    /// estimator.
    #[test]
    fn routing_is_stable_under_churn(ops in churn_ops(120)) {
        let mut registry = SketchRegistry::unbounded();
        let pinned_id = registry
            .create("pinned", BackendSpec::CountMin { width: 1024, depth: 4 })
            .expect("create pinned tenant");
        let mut truth = [0u64; 32];
        for op in &ops {
            match op {
                ChurnOp::CreateSide(n) => {
                    // Duplicate creates must fail without disturbing routing.
                    let _ = registry.create(
                        &format!("side-{n}"),
                        BackendSpec::MisraGries { capacity: 16 },
                    );
                }
                ChurnOp::DropSide(n) => {
                    let _ = registry.drop_tenant(&format!("side-{n}"));
                }
                ChurnOp::IngestPinned(id) => {
                    registry
                        .ingest("pinned", &StreamElement::without_features(u64::from(*id)))
                        .expect("pinned tenant always exists");
                    truth[*id as usize] += 1;
                }
            }
            // The handle is stable after every single operation.
            prop_assert_eq!(registry.tenant_id("pinned"), Some(pinned_id));
        }
        let total: u64 = truth.iter().sum();
        let report = registry.tenant_report("pinned").expect("pinned is live");
        prop_assert_eq!(report.id, pinned_id);
        prop_assert_eq!(report.mass, total);
        // The counts are the pinned tenant's own: estimates bracket the
        // truth (Count-Min never under-counts; over-counts only from the
        // tenant's own mass, never from side-tenant traffic).
        for (id, &count) in truth.iter().enumerate() {
            let estimate = registry
                .query("pinned", &StreamElement::without_features(id as u64))
                .expect("pinned is live");
            prop_assert!(estimate >= count as f64);
            prop_assert!(estimate <= total as f64);
        }
        prop_assert_eq!(registry.stats().unaccounted_mass(), 0);
    }

    /// Conservation under pressure: with a budget sized so the fleet cannot
    /// fit at full width, the governor must degrade — and afterwards every
    /// unit of admitted mass is still held by a live tenant or attributed
    /// to an eviction, and surviving Count-Min tenants never under-count.
    #[test]
    fn governor_degradation_conserves_mass(
        // One flat draw per update, decoded as (tenant 0..4, id 0..24,
        // weight 1..=3): again because the vendored proptest has no tuple
        // strategies.
        updates in prop::collection::vec(
            (0u64..4 * 24 * 3).prop_map(|v| {
                ((v / 72) as u8, ((v / 3) % 24) as u8, v % 3 + 1)
            }),
            32..400,
        ),
    ) {
        // Four tenants at 512x4 (8 KB each) under a 1.5-grid budget: the
        // second creation already exceeds it, so degradation is guaranteed
        // before any update flows.
        let mut registry = SketchRegistry::new(
            RegistryConfig::default()
                .budget(SpaceBudget::from_bytes(12 * 1024))
                .min_width(64)
                .govern_interval(16),
        );
        let spec = BackendSpec::CountMin { width: 512, depth: 4 };
        for t in 0..4 {
            registry.create(&format!("t{t}"), spec).expect("create tenant");
        }
        let mut truth = [[0u64; 24]; 4];
        let mut expected_mass = 0u64;
        for &(tenant, id, weight) in &updates {
            let name = format!("t{tenant}");
            let element = StreamElement::without_features(u64::from(id));
            match registry.ingest_weighted(&name, &element, weight) {
                Ok(()) => {
                    truth[tenant as usize][id as usize] += weight;
                    expected_mass += weight;
                }
                // The governor may have evicted this tenant; the arrival
                // bounces, which must not disturb the ledger.
                Err(RegistryError::UnknownTenant { .. }) => {}
                Err(other) => prop_assert!(false, "unexpected error: {other}"),
            }
        }
        let stats = registry.stats();
        prop_assert!(
            stats.degradations >= 1,
            "a 12 KB budget cannot hold four 8 KB tenants at full width"
        );
        prop_assert_eq!(stats.ingested_mass, expected_mass);
        prop_assert_eq!(
            stats.unaccounted_mass(),
            0,
            "degradation folds must conserve every counted unit"
        );
        // Surviving tenants answer with Count-Min's one-sided guarantee
        // intact, folds notwithstanding.
        for (tenant, counts) in truth.iter().enumerate() {
            let name = format!("t{tenant}");
            if !registry.contains(&name) {
                continue;
            }
            let tenant_total: u64 = counts.iter().sum();
            for (id, &count) in counts.iter().enumerate() {
                let estimate = registry
                    .query(&name, &StreamElement::without_features(id as u64))
                    .expect("tenant is live");
                prop_assert!(
                    estimate >= count as f64,
                    "folded tenant under-counted: {} < {}",
                    estimate,
                    count
                );
                prop_assert!(estimate <= tenant_total as f64);
            }
        }
    }
}
