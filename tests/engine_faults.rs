//! Fault-injection and overload suites for the worker engine, driven by the
//! deterministic failpoint harness (`--features failpoints`).
//!
//! Acceptance contract exercised here:
//!
//! * killing any single shard worker mid-stream yields **bit-identical**
//!   queries vs the sequential reference for linear backends, with zero
//!   unaccounted mass and the supervisor restart visible in the
//!   [`FaultLog`];
//! * a poison-pill batch is quarantined after `max_batch_attempts`
//!   attempts, its mass stays accounted, and re-applying the quarantined
//!   updates reproduces the sequential reference exactly;
//! * a panic inside the checkpoint critical section fences the shard off
//!   with the typed [`EngineError::ShardPoisoned`] instead of wrong counts;
//! * under deterministic overload (delayed batch application), Block loses
//!   nothing, Reject accounts every rejection, and DegradeAggregate
//!   preserves total mass.

#![cfg(feature = "failpoints")]

use opthash_repro::prelude::*;
use std::sync::Once;
use std::time::Duration;

/// Silences the panic messages of *injected* panics (they are expected and
/// would otherwise flood the test output), while leaving every other panic
/// loudly visible.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("failpoint"))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains("failpoint"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn element(id: u64) -> StreamElement {
    StreamElement::without_features(id)
}

/// Deterministic pseudo-Zipf arrival sequence (xorshift over a skewed map).
fn arrivals(n: usize, universe: u64, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Heavy head: rank k drawn with weight ~1/(k+1).
            (universe / (state % universe + 1)).min(universe - 1)
        })
        .collect()
}

/// Like [`arrivals`], but with a genuine uniform tail: half the draws are
/// heavy-head ranks, half are uniform over the universe. The head exercises
/// pre-aggregation; the tail keeps each shard's batch buffer filling (and
/// dispatching) *throughout* the stream, which the worker-death tests need —
/// a fully head-dominated stream collapses into so few distinct ids that
/// every shard sees a single batch at flush and per-batch failpoints never
/// reach their trigger hit.
fn mixed_arrivals(n: usize, universe: u64, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state & 1 == 0 {
                (universe / (state % universe + 1)).min(universe - 1)
            } else {
                (state >> 1) % universe
            }
        })
        .collect()
}

fn sequential_reference(ids: &[u64]) -> CountMinSketch {
    let mut cms = CountMinSketch::new(512, 4, 9);
    for &id in ids {
        SketchBackend::ingest(&mut cms, &element(id), 1);
    }
    cms
}

fn assert_bit_identical(
    engine: &mut IngestEngine<CountMinSketch>,
    reference: &CountMinSketch,
    universe: u64,
    label: &str,
) {
    for id in 0..universe + 20 {
        assert_eq!(
            engine
                .query_synced(&element(id))
                .expect("query after recovery"),
            SketchBackend::query(reference, &element(id)),
            "{label}: diverged from sequential reference at id {id}"
        );
    }
}

// ---------------------------------------------------------------------------
// Worker death / recovery
// ---------------------------------------------------------------------------

/// Killing any single shard's worker mid-stream must be invisible in the
/// answers: the supervisor re-forks the shard from its last checkpoint and
/// replays the journal and surviving queue.
#[test]
fn killing_any_worker_mid_stream_is_bit_identical() {
    quiet_injected_panics();
    let ids = mixed_arrivals(50_000, 2_000, 42);
    let reference = sequential_reference(&ids);
    for victim in 0..4usize {
        let mut engine = IngestEngine::new(
            CountMinSketch::new(512, 4, 9),
            EngineConfig::with_shards(4)
                .batch_capacity(64)
                .checkpoint_interval(4),
        );
        // Die on the victim's 5th event-loop iteration: several batches in,
        // several batches still to come.
        engine.fault_injector().program(
            &format!("worker::poll@{victim}"),
            FaultPlan::panic().on_hit(5),
        );
        for &id in &ids {
            engine.ingest(&element(id)).unwrap();
        }
        engine
            .flush()
            .expect("flush must recover through the death");
        let stats = engine.stats();
        assert!(stats.conserved(), "victim {victim}: ledger must balance");
        assert_eq!(
            stats.unaccounted_mass(),
            0,
            "victim {victim}: zero unaccounted mass after recovery"
        );
        assert_eq!(stats.quarantined_mass, 0, "death is not a poison pill");
        let log = engine.fault_log();
        assert!(
            log.worker_restarts() >= 1,
            "victim {victim}: supervisor restart must be visible in the FaultLog, got {log:?}"
        );
        assert_eq!(stats.worker_restarts, log.worker_restarts() as u64);
        assert_bit_identical(&mut engine, &reference, 2_000, "worker death");
    }
}

/// A death in the window *between* applying a batch and committing it must
/// not double-apply: the replacement's rebuilt state excludes the batch and
/// the supervisor requeues it — exactly-once either way.
#[test]
fn death_between_apply_and_commit_applies_exactly_once() {
    quiet_injected_panics();
    let ids = mixed_arrivals(30_000, 1_000, 77);
    let reference = sequential_reference(&ids);
    let mut engine = IngestEngine::new(
        CountMinSketch::new(512, 4, 9),
        EngineConfig::with_shards(2).batch_capacity(64),
    );
    engine
        .fault_injector()
        .program("worker::before_commit@0", FaultPlan::panic().on_hit(3));
    for &id in &ids {
        engine.ingest(&element(id)).unwrap();
    }
    engine.flush().expect("recovery flush");
    let log = engine.fault_log();
    assert_eq!(log.worker_restarts(), 1);
    assert!(log.batch_panics() >= 1, "the uncommitted batch is requeued");
    let stats = engine.stats();
    assert!(stats.conserved());
    assert_eq!(stats.unaccounted_mass(), 0);
    assert_bit_identical(&mut engine, &reference, 1_000, "pre-commit death");
}

// ---------------------------------------------------------------------------
// Poison pills
// ---------------------------------------------------------------------------

/// A batch that panics on every application attempt is quarantined after
/// `max_batch_attempts`, fully accounted; re-applying the quarantined
/// updates reproduces the sequential reference exactly.
#[test]
fn poison_pill_batch_is_quarantined_and_reapplyable() {
    quiet_injected_panics();
    let ids = arrivals(20_000, 1_500, 11);
    let reference = sequential_reference(&ids);
    let mut engine = IngestEngine::new(
        CountMinSketch::new(512, 4, 9),
        EngineConfig::with_shards(3)
            .batch_capacity(64)
            .max_batch_attempts(3),
    );
    // Panic on the first update of shard 1's inflight batch, three times in
    // a row: one batch exhausts all three of its attempts.
    engine
        .fault_injector()
        .program("worker::apply@1", FaultPlan::panic().times(3));
    for &id in &ids {
        engine.ingest(&element(id)).unwrap();
    }
    engine.flush().expect("quarantine must not fail the flush");
    let stats = engine.stats();
    let log = engine.fault_log();
    assert_eq!(log.quarantines(), 1, "exactly one poison pill: {log:?}");
    assert_eq!(log.batch_panics(), 2, "two retries before quarantine");
    assert!(stats.quarantined_mass > 0);
    assert!(stats.conserved());
    assert_eq!(
        stats.unaccounted_mass(),
        0,
        "quarantined mass must stay accounted"
    );

    // The quarantined updates are retrievable and complete: re-applying
    // them closes the gap to the sequential reference bit-for-bit.
    let quarantined = engine.quarantined();
    assert_eq!(
        quarantined.iter().map(|(_, c)| c).sum::<u64>(),
        stats.quarantined_mass
    );
    let mut repaired = engine.finish().expect("finish with a quarantine");
    for (element, count) in &quarantined {
        SketchBackend::ingest(&mut repaired, element, *count);
    }
    for id in 0..1_520u64 {
        assert_eq!(
            SketchBackend::query(&repaired, &element(id)),
            SketchBackend::query(&reference, &element(id)),
            "re-applied quarantine diverged at id {id}"
        );
    }
}

// ---------------------------------------------------------------------------
// Shard poisoning
// ---------------------------------------------------------------------------

/// A panic inside the checkpoint critical section may leave the snapshot
/// half-written: the shard must be fenced off and queries must fail with
/// the typed error instead of answering from corrupt state.
#[test]
fn checkpoint_panic_poisons_the_shard() {
    quiet_injected_panics();
    let mut engine = IngestEngine::new(
        CountMinSketch::new(512, 4, 9),
        EngineConfig::with_shards(2).batch_capacity(16),
    );
    engine
        .fault_injector()
        .program("worker::checkpoint@0", FaultPlan::panic().on_hit(1));
    for &id in &arrivals(5_000, 400, 5) {
        engine.ingest(&element(id)).unwrap();
    }
    let err = engine
        .flush()
        .expect_err("poisoned shard must fail the flush");
    assert_eq!(err, EngineError::ShardPoisoned { shard: 0 });
    assert_eq!(
        engine
            .query_synced(&element(3))
            .expect_err("queries must refuse"),
        EngineError::ShardPoisoned { shard: 0 }
    );
    // The poisoning is reported (the dead worker may need one supervision
    // pass to be reaped once its thread has fully exited).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while engine.fault_log().poisonings() == 0 && std::time::Instant::now() < deadline {
        engine.supervise();
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(engine.fault_log().poisonings(), 1);
    assert_eq!(
        engine.finish().expect_err("finish must refuse"),
        EngineError::ShardPoisoned { shard: 0 }
    );
}

/// The `Error` action surfaces the typed [`EngineError::FaultInjected`] on
/// fallible paths — the cheap way to test caller-side error handling.
#[test]
fn error_action_surfaces_typed_error() {
    let mut engine = IngestEngine::new(CountMinSketch::new(64, 2, 1), EngineConfig::with_shards(1));
    engine
        .fault_injector()
        .program("engine::ingest", FaultPlan::error().on_hit(3));
    assert!(engine.ingest(&element(1)).is_ok());
    assert!(engine.ingest(&element(2)).is_ok());
    assert_eq!(
        engine.ingest(&element(3)).unwrap_err(),
        EngineError::FaultInjected {
            failpoint: "engine::ingest"
        }
    );
    assert!(engine.ingest(&element(4)).is_ok());
}

// ---------------------------------------------------------------------------
// Overload suite: deterministic backpressure via delayed batch application
// ---------------------------------------------------------------------------

/// Overload fixture: one shard whose worker sleeps on every batch, so the
/// offered rate exceeds the drain rate by construction.
fn overloaded_engine(policy: BackpressurePolicy) -> IngestEngine<CountMinSketch> {
    let engine = IngestEngine::new(
        CountMinSketch::new(512, 4, 9),
        EngineConfig::with_shards(1)
            .batch_capacity(64)
            .queue_capacity(2)
            .backpressure(policy),
    );
    engine
        .fault_injector()
        .program("worker::batch", FaultPlan::delay(Duration::from_millis(2)));
    engine
}

/// Block: every arrival is admitted (the producer stalls instead), so the
/// result equals the sequential reference and nothing is rejected.
#[test]
fn block_policy_loses_nothing_under_overload() {
    let ids = arrivals(20_000, 3_000, 21);
    let reference = sequential_reference(&ids);
    let mut engine = overloaded_engine(BackpressurePolicy::Block);
    for &id in &ids {
        engine.ingest(&element(id)).unwrap();
    }
    engine.flush().unwrap();
    let stats = engine.stats();
    assert_eq!(stats.mass.rejected, 0, "Block never sheds load");
    assert_eq!(stats.mass.degraded, 0, "Block never degrades");
    assert_eq!(stats.ingested_mass(), ids.len() as u64);
    assert!(stats.conserved());
    assert_eq!(stats.unaccounted_mass(), 0);
    assert_bit_identical(&mut engine, &reference, 3_000, "Block overload");
}

/// Reject: overloaded arrivals fail with the typed error; the ledger counts
/// exactly the surfaced rejections, and the admitted arrivals alone
/// reproduce the sequential reference.
#[test]
fn reject_policy_accounts_every_rejection_under_overload() {
    let ids = arrivals(20_000, 3_000, 22);
    let mut engine = overloaded_engine(BackpressurePolicy::Reject);
    let mut admitted = Vec::new();
    let mut rejections = 0u64;
    for &id in &ids {
        match engine.ingest(&element(id)) {
            Ok(()) => admitted.push(id),
            Err(EngineError::Overloaded { shard, .. }) => {
                assert_eq!(shard, 0);
                rejections += 1;
            }
            Err(other) => panic!("unexpected error under Reject: {other}"),
        }
    }
    assert!(
        rejections > 0,
        "the overload fixture must actually overload"
    );
    engine.flush().unwrap();
    let stats = engine.stats();
    assert_eq!(stats.mass.offered, ids.len() as u64);
    assert_eq!(
        stats.mass.rejected, rejections,
        "ledger must count exactly the surfaced rejections"
    );
    assert_eq!(stats.ingested_mass(), admitted.len() as u64);
    assert!(stats.conserved());
    assert_eq!(stats.unaccounted_mass(), 0);
    let reference = sequential_reference(&admitted);
    assert_bit_identical(&mut engine, &reference, 3_000, "Reject overload");
}

/// DegradeAggregate: overloaded arrivals collapse into the growing shard
/// buffer instead of being shed — total mass is preserved and the final
/// result is exactly the sequential one.
#[test]
fn degrade_policy_preserves_total_mass_under_overload() {
    let ids = arrivals(20_000, 3_000, 23);
    let reference = sequential_reference(&ids);
    let mut engine = overloaded_engine(BackpressurePolicy::DegradeAggregate);
    for &id in &ids {
        engine.ingest(&element(id)).unwrap();
    }
    let mid_stats = engine.stats();
    assert!(
        mid_stats.mass.degraded > 0,
        "the overload fixture must actually degrade"
    );
    engine.flush().unwrap();
    let stats = engine.stats();
    assert_eq!(stats.mass.rejected, 0, "DegradeAggregate never sheds load");
    assert_eq!(stats.ingested_mass(), ids.len() as u64);
    assert!(stats.conserved());
    assert_eq!(stats.unaccounted_mass(), 0);
    assert_bit_identical(&mut engine, &reference, 3_000, "Degrade overload");
}

// ---------------------------------------------------------------------------
// Hot-swap publish panic
// ---------------------------------------------------------------------------

/// A panic during a swap publish (`worker::swap`) kills the victim worker
/// with the swap request still pending — nothing was mutated yet — so the
/// supervisor's replacement worker rebuilds the pre-swap scratch and redoes
/// the swap exactly once. The retired backend still equals the sequential
/// pre-swap replay, the engine continues bit-identically on the new base,
/// and not one unit of mass goes unaccounted.
#[test]
fn swap_publish_panic_recovers_and_redoes_the_swap() {
    quiet_injected_panics();
    let pre = mixed_arrivals(30_000, 1_500, 7);
    let post = mixed_arrivals(30_000, 1_500, 11);
    let reference_pre = sequential_reference(&pre);
    let reference_post = sequential_reference(&post);
    for victim in 0..3usize {
        let base = CountMinSketch::new(512, 4, 9);
        let mut engine = IngestEngine::new(
            base.clone(),
            EngineConfig::with_shards(3)
                .batch_capacity(64)
                .checkpoint_interval(4),
        );
        engine.fault_injector().program(
            &format!("worker::swap@{victim}"),
            FaultPlan::panic().on_hit(1),
        );
        for &id in &pre {
            engine.ingest(&element(id)).unwrap();
        }
        let retired = engine
            .swap_backend(base.clone())
            .expect("the swap must survive the publish panic");
        assert_eq!(engine.scheme_version(), 1);
        let log = engine.fault_log();
        assert!(
            log.worker_restarts() >= 1,
            "victim {victim}: the publish panic must be visible as a restart, got {log:?}"
        );
        for id in 0..1_520u64 {
            assert_eq!(
                SketchBackend::query(&retired, &element(id)),
                SketchBackend::query(&reference_pre, &element(id)),
                "victim {victim}: retired counts diverged at id {id}"
            );
        }
        let stats = engine.stats();
        assert!(stats.conserved(), "victim {victim}: ledger must balance");
        assert_eq!(stats.unaccounted_mass(), 0);
        for &id in &post {
            engine.ingest(&element(id)).unwrap();
        }
        assert_bit_identical(&mut engine, &reference_post, 1_500, "post-swap stream");
        let stats = engine.stats();
        assert!(stats.conserved());
        assert_eq!(stats.unaccounted_mass(), 0);
        assert_eq!(
            stats.quarantined_mass, 0,
            "a swap panic is not a poison pill"
        );
    }
}
