//! Determinism of the sharded ingest engine: for every exact backend,
//! sharded + batched + merged processing of a Zipf stream must answer point
//! queries *identically* to the same backend fed one arrival at a time.

use opthash_repro::opthash::{AdaptiveOptHash, OptHash, OptHashBuilder, SolverKind};
use opthash_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A Zipf stream over `universe` ranked elements: the id *is* the rank, and
/// features encode the rank so the learned estimators can route unseen
/// elements.
fn zipf_stream(universe: usize, arrivals: usize, exponent: f64, seed: u64) -> Stream {
    let sampler = opthash_repro::datagen::ZipfSampler::new(universe, exponent);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..arrivals)
        .map(|_| {
            let rank = sampler.sample(&mut rng);
            element(rank as u64)
        })
        .collect()
}

fn element(id: u64) -> StreamElement {
    StreamElement::new(id, vec![(id as f64).ln_1p(), (id % 17) as f64])
}

/// Queries used for the equality check: the whole universe plus a band of
/// never-seen IDs.
fn probes(universe: usize) -> impl Iterator<Item = StreamElement> {
    (0..universe as u64 + 50).map(element)
}

fn assert_engine_matches_sequential<B>(backend: B, stream: &Stream, universe: usize, label: &str)
where
    B: SketchBackend + 'static,
{
    let mut sequential = backend.clone();
    for arrival in stream.iter() {
        sequential.ingest(arrival, 1);
    }
    for mode in [IngestMode::Workers, IngestMode::Inline] {
        for shards in [1usize, 2, 4, 8] {
            let mut engine = IngestEngine::new(
                backend.clone(),
                EngineConfig::with_shards(shards)
                    .batch_capacity(512)
                    .mode(mode),
            );
            engine.ingest_stream(stream).unwrap();
            for probe in probes(universe) {
                let sharded = engine.query_synced(&probe).unwrap();
                let expected = sequential.query(&probe);
                assert!(
                    (sharded - expected).abs() < 1e-12,
                    "{label} diverged at {shards} shards ({mode:?}) for {}: \
                     sharded {sharded} vs sequential {expected}",
                    probe.id
                );
            }
            let stats = engine.stats();
            assert!(
                stats.aggregation_factor() >= 1.0,
                "{label}: aggregation factor must never drop below 1"
            );
            assert!(stats.conserved(), "{label}: intake ledger must balance");
            assert_eq!(
                stats.unaccounted_mass(),
                0,
                "{label}: every admitted unit of mass must be locatable"
            );
        }
    }
}

#[test]
fn count_min_sharded_equals_sequential() {
    let stream = zipf_stream(2_000, 50_000, 1.1, 42);
    assert_engine_matches_sequential(CountMinSketch::new(256, 4, 7), &stream, 2_000, "count-min");
}

/// Regression: `ingest_batch` must accept slices shorter than its prefetch
/// lookahead (16) — the split-at-lookahead fast path used to slice
/// `elements[16..]` unconditionally and panic on 0..16 elements.
#[test]
fn ingest_batch_accepts_short_slices() {
    for policy in [
        BackpressurePolicy::Block,
        BackpressurePolicy::Reject,
        BackpressurePolicy::DegradeAggregate,
    ] {
        for mode in [IngestMode::Workers, IngestMode::Inline] {
            for len in 0..=17usize {
                let arrivals: Vec<StreamElement> = (0..len as u64).map(element).collect();
                let mut sequential = CountMinSketch::new(64, 3, 11);
                for arrival in &arrivals {
                    sequential.ingest(arrival, 1);
                }
                let mut engine = IngestEngine::new(
                    CountMinSketch::new(64, 3, 11),
                    EngineConfig::with_shards(4)
                        .batch_capacity(8)
                        .mode(mode)
                        .backpressure(policy),
                );
                engine
                    .ingest_batch(&arrivals)
                    .unwrap_or_else(|err| panic!("len {len} ({mode:?}, {policy:?}): {err}"));
                for probe in (0..len as u64 + 4).map(element) {
                    let got = engine.query_synced(&probe).unwrap();
                    let expected = SketchBackend::query(&sequential, &probe);
                    assert!(
                        (got - expected).abs() < 1e-12,
                        "len {len} ({mode:?}, {policy:?}) diverged for {}: {got} vs {expected}",
                        probe.id
                    );
                }
                let stats = engine.stats();
                assert!(stats.conserved(), "len {len}: intake ledger must balance");
                assert_eq!(stats.unaccounted_mass(), 0, "len {len}: mass unaccounted");
            }
        }
    }
}

/// The SPSC ring swap must not disturb the PR 2 invariant at the queue's
/// hardest boundaries: depth-1/2/3 rings (physical sizes 1/2/4 after
/// power-of-two rounding) with single-element batches wrap the ring indices
/// constantly and collide full-against-empty on every dispatch.
#[test]
fn ring_boundary_configs_match_sequential() {
    let stream = zipf_stream(300, 8_000, 1.1, 50);
    let mut sequential = CountMinSketch::new(256, 4, 7);
    for arrival in stream.iter() {
        sequential.ingest(arrival, 1);
    }
    for queue_capacity in [1usize, 2, 3] {
        for batch_capacity in [1usize, 2, 7] {
            let mut engine = IngestEngine::new(
                CountMinSketch::new(256, 4, 7),
                EngineConfig::with_shards(4)
                    .batch_capacity(batch_capacity)
                    .queue_capacity(queue_capacity)
                    .checkpoint_interval(2),
            );
            engine.ingest_stream(&stream).unwrap();
            for probe in probes(300) {
                let got = engine.query_synced(&probe).unwrap();
                let expected = SketchBackend::query(&sequential, &probe);
                assert!(
                    (got - expected).abs() < 1e-12,
                    "queue {queue_capacity} batch {batch_capacity} diverged for {}",
                    probe.id
                );
            }
            let stats = engine.stats();
            assert!(stats.conserved());
            assert_eq!(stats.unaccounted_mass(), 0);
        }
    }
}

/// Cross-thread hammer: tiny rings saturate while snapshot readers pound
/// the published state from other threads. The readers assert epoch
/// monotonicity per shard; the main thread then asserts the engine still
/// answers bit-identically to the sequential replay — concurrency must not
/// perturb a linear backend's results.
#[test]
fn ring_hammer_under_concurrent_readers_matches_sequential() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let stream = zipf_stream(500, 30_000, 1.2, 51);
    let mut sequential = CountMinSketch::new(256, 4, 7);
    for arrival in stream.iter() {
        sequential.ingest(arrival, 1);
    }
    let mut engine = IngestEngine::new(
        CountMinSketch::new(256, 4, 7),
        EngineConfig::with_shards(4)
            .batch_capacity(16)
            .queue_capacity(2)
            .checkpoint_interval(1),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|r| {
            let reader = engine.snapshot_reader();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_epochs: Vec<u64> = Vec::new();
                let mut last_version = 0u64;
                let mut iterations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let answer = reader.query(&element(r * 31 + 1));
                    assert!(answer.estimate >= 0.0);
                    let stamp = answer.stamp;
                    assert!(stamp.scheme_version >= last_version, "version regressed");
                    last_version = stamp.scheme_version;
                    if last_epochs.is_empty() {
                        last_epochs = stamp.epoch_per_shard.to_vec();
                    } else {
                        for (shard, (&now, &before)) in
                            stamp.epoch_per_shard.iter().zip(&last_epochs).enumerate()
                        {
                            assert!(now >= before, "shard {shard} epoch regressed");
                        }
                        last_epochs = stamp.epoch_per_shard.to_vec();
                    }
                    iterations += 1;
                    // Leave the (possibly single) core to the ingest side
                    // between queries; the test is about interference, not
                    // about starving the engine of CPU.
                    std::thread::yield_now();
                }
                iterations
            })
        })
        .collect();
    engine.ingest_stream(&stream).unwrap();
    stop.store(true, Ordering::Relaxed);
    for handle in readers {
        let iterations = handle.join().expect("reader thread panicked");
        assert!(iterations > 0, "readers must have made progress");
    }
    for probe in probes(500) {
        let got = engine.query_synced(&probe).unwrap();
        let expected = SketchBackend::query(&sequential, &probe);
        assert!(
            (got - expected).abs() < 1e-12,
            "hammered engine diverged for {}",
            probe.id
        );
    }
    let stats = engine.stats();
    assert!(stats.conserved());
    assert_eq!(stats.unaccounted_mass(), 0);
}

#[test]
fn count_sketch_sharded_equals_sequential() {
    let stream = zipf_stream(2_000, 50_000, 1.1, 43);
    assert_engine_matches_sequential(CountSketch::new(256, 5, 7), &stream, 2_000, "count-sketch");
}

#[test]
fn learned_count_min_sharded_equals_sequential() {
    let stream = zipf_stream(2_000, 50_000, 1.1, 44);
    let truth = FrequencyVector::from_stream(&stream);
    let heavy: Vec<ElementId> = truth.ids_by_rank().into_iter().take(64).collect();
    assert_engine_matches_sequential(
        LearnedCountMin::new(heavy, 512, 2, 7),
        &stream,
        2_000,
        "heavy-hitter",
    );
}

#[test]
fn opt_hash_sharded_equals_sequential() {
    let prefix_stream = zipf_stream(500, 5_000, 1.1, 45);
    let continuation = zipf_stream(500, 50_000, 1.1, 46);
    let prefix = StreamPrefix::from_stream(prefix_stream);
    let trained: OptHash = OptHashBuilder::new(16)
        .lambda(1.0)
        .solver(SolverKind::Dp)
        .train(&prefix);
    assert_engine_matches_sequential(trained, &continuation, 500, "opt-hash");
}

#[test]
fn adaptive_opt_hash_sharded_equals_sequential() {
    // The adaptive estimator is the strictest case: per-bucket distinct
    // counts and the Bloom filter are only mergeable because the engine
    // partitions by element ID. Sharded processing is exact up to Bloom
    // false positives, so the filter is sized generously (2^20 bits for
    // ~1.6k distinct elements puts the divergence probability below 1e-5,
    // i.e. zero for these fixed seeds).
    let prefix_stream = zipf_stream(400, 5_000, 1.1, 47);
    let continuation = zipf_stream(1_200, 50_000, 1.1, 48);
    let prefix = StreamPrefix::from_stream(prefix_stream);
    let trained: AdaptiveOptHash = OptHashBuilder::new(16)
        .lambda(0.5)
        .classifier(ClassifierKind::Cart)
        .train_adaptive(&prefix, 1 << 20);
    assert_engine_matches_sequential(trained, &continuation, 1_200, "opt-hash-adaptive");
}

#[test]
fn engine_preserves_count_min_guarantees_end_to_end() {
    // Not just self-consistency: the merged sharded sketch keeps the
    // structural Count-Min guarantee on the true frequencies.
    let stream = zipf_stream(3_000, 80_000, 1.2, 49);
    let truth = FrequencyVector::from_stream(&stream);
    let mut engine = IngestEngine::new(
        CountMinSketch::new(512, 4, 3),
        EngineConfig::with_shards(4).batch_capacity(1_024),
    );
    engine.ingest_stream(&stream).unwrap();
    let merged = engine.finish().unwrap();
    assert_eq!(merged.total_updates(), 80_000);
    for (id, f) in truth.iter() {
        assert!(
            merged.query(id) >= f,
            "sharded Count-Min under-estimated {id}"
        );
    }
}
